"""Heterogeneous networks: residual imbalance and deviation vs s_max.

The paper's deviation bounds grow with ``log s_max`` (Theorems 4/9).  This
bench sweeps the maximum speed in a two-class cluster and reports the
measured residual (relative to speed-proportional targets) and the measured
deviation from the continuous process, checking the ``log s_max`` shape
(doubling s_max must not double the deviation).
"""

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    run_paired,
    second_largest_eigenvalue,
    target_loads,
    torus_2d,
    two_class_speeds,
)
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

S_MAX_VALUES = [1.0, 4.0, 16.0]


def _sweep(side=16, rounds=600):
    topo = torus_2d(side, side)
    out = {}
    for s_max in S_MAX_VALUES:
        rng = np.random.default_rng(3)
        if s_max == 1.0:
            speeds = np.ones(topo.n)
        else:
            speeds = two_class_speeds(
                topo.n, fast_fraction=0.2, fast_speed=s_max, rng=rng
            )
        lam = second_largest_eigenvalue(topo, speeds)
        beta = beta_opt(lam)
        load = point_load(topo, 1000 * topo.n)
        targets = target_loads(float(load.sum()), speeds)
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta, speeds=speeds),
            rounding="randomized-excess",
            rng=rng,
        )
        result = Simulator(proc, targets=targets).run(load, rounds)
        paired = run_paired(proc, load, rounds=min(rounds, 250))
        out[f"smax{s_max:g}"] = {
            "lambda": lam,
            "beta": beta,
            "final_max_excess": result.records[-1].max_minus_avg,
            "max_deviation": float(paired.max_deviation_series().max()),
        }
    return out


def test_hetero_speeds(benchmark, archive):
    results = run_once(benchmark, _sweep)
    archive(ExperimentRecord(name="hetero_speeds", summary=results))

    print()
    print(
        format_table(
            ["s_max", "lambda", "beta", "final excess", "deviation"],
            [
                [k, v["lambda"], v["beta"], v["final_max_excess"],
                 v["max_deviation"]]
                for k, v in results.items()
            ],
            title="heterogeneous speed sweep (16x16 torus)",
        )
    )

    # Every configuration balances to within a few dozen tokens of target.
    for v in results.values():
        assert v["final_max_excess"] < 60.0
    # log(smax) shape: deviation grows sub-linearly in s_max.
    d1 = results["smax1"]["max_deviation"]
    d16 = results["smax16"]["max_deviation"]
    assert d16 < 16.0 * max(d1, 1.0)
