"""Figure 14: random geometric graph.

Paper shape: "the behavior of FOS and SOS in these graphs is very similar
to the behavior in the torus graphs" — a clear SOS advantage (the RGG has a
small spectral gap like the torus), a plateau, and a further drop when
switching to FOS.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig14(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig14_rgg, scale=bench_scale)
    archive(record)

    s = record.summary
    assert s["sos_round_below_10"] is not None
    # Torus-like: a real SOS advantage, unlike the CM graph/hypercube.
    if s["fos_round_below_10"] is not None and s["measured_speedup"] is not None:
        assert s["measured_speedup"] > 1.3
    else:
        # FOS did not even converge within the horizon.
        assert s["fos_round_below_10"] is None
    assert s["hybrid_final"] <= s["sos_plateau"] + 2.0
