"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os

import numpy as np

#: Repository root — machine-readable bench outputs land here as
#: ``BENCH_<name>.json`` so every PR leaves a perf trajectory.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The figure drivers are full experiments (seconds to minutes); repeating
    them for statistical timing would multiply the harness runtime without
    adding information, so every bench uses a single timed iteration.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into plain JSON values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        value = value.item()
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return str(value)  # JSON has no NaN/Inf
    return value


def write_bench_json(name: str, payload: dict) -> str:
    """Write one machine-readable bench summary to ``BENCH_<name>.json``.

    Every bench routes its summary through this helper so downstream PRs
    (and the CI artifact upload) get a uniform perf trajectory at the repo
    root instead of scraping stdout.  Returns the path written.
    """
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
