"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The figure drivers are full experiments (seconds to minutes); repeating
    them for statistical timing would multiply the harness runtime without
    adding information, so every bench uses a single timed iteration.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
