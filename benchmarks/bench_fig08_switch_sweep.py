"""Figure 8: sweep of the SOS->FOS switch round on the 100x100 torus.

Paper shape: independent of where the switch happens (300/500/700/900),
a significant drop of the maximum load follows; all switched runs end below
the pure-SOS residual.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig08(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig08_switch_sweep, scale=bench_scale)
    archive(record)

    s = record.summary
    sos_final = s["sos_only_final"]
    finals = [
        s[f"fos{switch}_final"] for switch in record.params["switch_rounds"]
    ]
    for final in finals:
        assert final <= sos_final + 1.0
    # The late switches perform as well as the early ones (paper: "there is
    # no difference in the behavior ... when switching in some consecutive
    # round r >= R").
    assert max(finals) - min(finals) < 6.0
