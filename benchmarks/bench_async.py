"""Async engine: convergence degradation versus neighbour-state staleness.

The event-driven :class:`~repro.network.async_engine.AsyncNetwork` lets
every link carry a latency, so nodes balance against *stale* neighbour
loads.  This bench sweeps a ladder of uniform link latencies on the
paper's 32x32 torus and records, for FOS and for SOS at the torus
``beta_opt``:

* the measured **mean staleness** (rounds of age of the neighbour loads
  each compute used — ``ceil(latency)`` once the pipeline fills),
* the **max-minus-avg trajectory** and its final value,
* the **degradation ratio** against the zero-latency (synchronous) run.

Two structural facts are asserted:

* **parity** — at zero latency the async engine replays the synchronous
  :class:`~repro.network.engine.SyncNetwork` bit for bit;
* **FOS robustness** — first-order diffusion stays convergent at every
  latency level (it only slows down), while SOS momentum acting on stale
  state is a delayed second-order feedback loop that loses stability for
  ``beta`` well above 1 — the recorded SOS curves document exactly how
  fast it blows up, which is the reason the paper's scheme needs its
  synchronous rounds.

Summary lands in ``BENCH_async.json`` (committed at the repo root).
"""

import os

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.experiments import format_table
from repro.io import ExperimentRecord
from repro.network import AsyncNetwork, SyncNetwork

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

SIDE = {"tiny": 8, "ci": 32, "paper": 32}[SCALE]
ROUNDS = {"tiny": 30, "ci": 150, "paper": 400}[SCALE]
#: Uniform link latency ladder, in rounds (0.0 is the synchronous regime).
LATENCIES = [0.0, 0.5, 1.5, 3.5]
CURVE_EVERY = {"tiny": 2, "ci": 5, "paper": 10}[SCALE]
ROUNDING = "randomized-excess"
SEED = 0


def _run_level(topo, load, scheme, beta, latency):
    net = AsyncNetwork(
        topo, load, scheme=scheme, beta=beta, rounding=ROUNDING, seed=SEED,
        link_latency=latency if latency > 0.0 else None,
    )
    avg = load.sum() / topo.n
    curve = []
    for r in range(ROUNDS):
        net.step()
        if r % CURVE_EVERY == 0 or r == ROUNDS - 1:
            loads = net.loads()
            curve.append([r + 1, float(loads.max() - avg)])
    loads = net.loads()
    return net, {
        "scheme": scheme,
        "latency": latency,
        "mean_staleness": net.mean_staleness,
        "max_staleness": net.max_staleness,
        "final_max_minus_avg": float(loads.max() - avg),
        "total_load_with_in_flight": net.total_load,
        "curve_max_minus_avg": curve,
    }


def _run_staleness_ladder():
    topo = torus_2d(SIDE, SIDE)
    load = point_load(topo, 1000 * topo.n)
    beta = beta_opt(torus_lambda((SIDE, SIDE)))

    # Parity gate: zero latency must replay the synchronous engine.
    sync = SyncNetwork(
        topo, load, scheme="sos", beta=beta, rounding=ROUNDING, seed=SEED
    )
    sync.run(min(ROUNDS, 30))
    async_net = AsyncNetwork(
        topo, load, scheme="sos", beta=beta, rounding=ROUNDING, seed=SEED
    )
    async_net.run(min(ROUNDS, 30))
    parity = bool(np.array_equal(async_net.loads(), sync.loads()))

    levels = []
    for scheme in ("fos", "sos"):
        b = beta if scheme == "sos" else 1.0
        for latency in LATENCIES:
            _, level = _run_level(topo, load, scheme, b, latency)
            base = next(
                (
                    lv["final_max_minus_avg"]
                    for lv in levels
                    if lv["scheme"] == scheme and lv["latency"] == 0.0
                ),
                None,
            )
            level["degradation_vs_sync"] = (
                level["final_max_minus_avg"] / base if base else None
            )
            levels.append(level)

    return {
        "n": topo.n,
        "rounds": ROUNDS,
        "rounding": ROUNDING,
        "beta_sos": beta,
        "latencies": LATENCIES,
        "parity_zero_latency_bit_identical": parity,
        "levels": levels,
    }


def test_async_staleness_ladder(benchmark, archive):
    s = run_once(benchmark, _run_staleness_ladder)
    archive(
        ExperimentRecord(
            name="async",
            params={
                "n": s["n"], "rounds": s["rounds"],
                "rounding": s["rounding"], "latencies": s["latencies"],
            },
            summary=s,
        )
    )
    print()
    print(
        format_table(
            ["scheme", "latency", "mean staleness", "final max-avg",
             "vs sync"],
            [
                [
                    lv["scheme"],
                    f"{lv['latency']:.1f}",
                    f"{lv['mean_staleness']:.2f}",
                    f"{lv['final_max_minus_avg']:.4g}",
                    "1.00x" if lv["latency"] == 0.0
                    else f"{lv['degradation_vs_sync']:.3g}x",
                ]
                for lv in s["levels"]
            ],
            title=(
                f"convergence vs staleness ({s['n']} nodes x "
                f"{s['rounds']} rounds, {s['rounding']})"
            ),
        )
    )
    assert s["parity_zero_latency_bit_identical"], (
        "zero-latency async diverged from the synchronous engine"
    )
    fos = [lv for lv in s["levels"] if lv["scheme"] == "fos"]
    # staleness tracks the latency ladder
    stales = [lv["mean_staleness"] for lv in fos]
    assert all(a <= b + 1e-9 for a, b in zip(stales, stales[1:])), stales
    # Load (including in-flight tokens) is conserved at every level — to
    # float cancellation accuracy once a diverged SOS run pushes loads past
    # 2^53, where integer token arithmetic stops being exact.
    expected = 1000.0 * s["n"]
    for lv in s["levels"]:
        scale = max(expected, abs(lv["final_max_minus_avg"]))
        err = abs(lv["total_load_with_in_flight"] - expected)
        assert err <= 1e-9 * scale, lv
    # FOS stays convergent under staleness: bounded well below the point
    # load it started from, at every latency level.
    if SCALE != "tiny":
        for lv in fos:
            assert lv["final_max_minus_avg"] < 0.05 * 1000 * s["n"], lv
