"""Extension bench: steady-state imbalance and throughput under arrivals.

Not a paper figure — the dynamic-workload extension motivated by the
paper's introduction.  Two things are measured and archived:

* **steady state** — under steady Poisson churn the SOS balancer holds the
  imbalance at a small constant independent of how long the system runs,
  and it recovers from bursts within the static convergence time;
* **batched dynamic throughput** — a B=128 dynamic ensemble through
  ``BatchedVectorEngine.run_dynamic`` must beat 128 sequential
  ``DynamicSimulator.run`` calls by >= 8x on the burst workload.  Arrival
  counts are drawn per replica from independent spawned streams — the price
  of bit-exactness with the reference engine — so a per-node-Poisson model
  pays the full ``B x n`` variate-generation cost on *both* sides and its
  speedup saturates around the sampling share (~3x, reported
  informationally); burst arrivals draw one integer per replica per period
  and get the full batched win, since clamping, application, and every
  balancing kernel are vectorised across the whole batch.

The sequential dynamic baseline is measured over ``min(B, 8)`` replicas and
scaled linearly (per-replica cost is constant), flagged in the record.
"""

import os
import time

import numpy as np

from repro import (
    BurstArrivals,
    DynamicSimulator,
    LoadBalancingProcess,
    PoissonArrivals,
    SecondOrderScheme,
    arrival_stream,
    beta_opt,
    torus_2d,
    torus_lambda,
    uniform_load,
)
from repro.engines import EngineConfig, make_engine
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

THROUGHPUT_SIDE = {"tiny": 12, "ci": 24, "paper": 32}[SCALE]
THROUGHPUT_ROUNDS = {"tiny": 40, "ci": 250, "paper": 500}[SCALE]
THROUGHPUT_BATCH = {"tiny": 16, "ci": 128, "paper": 128}[SCALE]
#: max replicas actually run for the sequential baseline; beyond this the
#: baseline is extrapolated linearly (and marked in the record).
SEQ_MEASURE_CAP = 8


def _dynamic_experiment(side=24, rounds=800):
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    base = uniform_load(topo, 100)

    def run(model):
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        return DynamicSimulator(proc, model, rng=np.random.default_rng(1)).run(
            base, rounds
        )

    churn = run(PoissonArrivals(rate=5.0, departure_rate=5.0))
    burst = run(BurstArrivals(burst=20_000, period=200))
    burst_series = burst.series("max_minus_avg")

    # Recovery time after the burst at round 200.
    post = burst_series[201:]
    recovered = np.nonzero(post < 30.0)[0]
    recovery = int(recovered[0]) if recovered.size else None

    return {
        "churn_steady_state": churn.steady_state_imbalance(),
        "churn_first_half": float(
            churn.series("max_minus_avg")[: rounds // 2].mean()
        ),
        "burst_peak": float(burst_series[195:215].max()),
        "burst_recovery_rounds": recovery,
    }


def test_dynamic(benchmark, archive):
    s = run_once(benchmark, _dynamic_experiment)
    archive(ExperimentRecord(name="dynamic", summary=s))

    print()
    print(
        format_table(
            ["quantity", "value"],
            [[k, v] for k, v in s.items()],
            title="dynamic workloads (SOS, 24x24 torus)",
        )
    )

    # Bounded steady state: the tail is no worse than the early phase.
    assert s["churn_steady_state"] < 60.0
    assert s["churn_steady_state"] < 2.0 * s["churn_first_half"] + 10.0
    # Bursts are absorbed quickly.
    assert s["burst_recovery_rounds"] is not None
    assert s["burst_recovery_rounds"] < 150


# ----------------------------------------------------------------------
_SEQ_BASELINE_CACHE = {}


def _measure_model(topo, beta, base, model, rounds, B, rounding, precision,
                   seed=0, sampling="stream"):
    """Sequential vs batched wall time of one dynamic workload.

    The sequential baseline is always float64 (the scalar simulator has no
    precision mode), measured over ``min(B, SEQ_MEASURE_CAP)`` replicas and
    scaled linearly; baselines are cached per (workload, rounding) so the
    stream/batch sampling rows share one measurement.
    """
    measure = min(B, SEQ_MEASURE_CAP)
    # repr() keys are stable across model lifetimes (id() could alias a
    # freed object's address and silently serve a stale baseline).
    cache_key = (repr(model), rounding, rounds, B)
    if cache_key not in _SEQ_BASELINE_CACHE:
        t0 = time.perf_counter()
        for b in range(measure):
            # Engine RNG stream layout: rounding seed+b, arrivals spawn-key b.
            process = LoadBalancingProcess(
                SecondOrderScheme(topo, beta=beta),
                rounding=rounding,
                rng=np.random.default_rng(seed + b),
            )
            DynamicSimulator(process, model, rng=arrival_stream(seed, b)).run(
                base, rounds
            )
        _SEQ_BASELINE_CACHE[cache_key] = (
            (time.perf_counter() - t0) * (B / measure)
        )
    seq_seconds = _SEQ_BASELINE_CACHE[cache_key]

    config = EngineConfig(
        scheme="sos",
        beta=beta,
        rounding=rounding,
        rounds=rounds,
        seed=seed,
        precision=precision,
        arrivals=model,
        arrival_sampling=sampling,
    )
    loads = np.tile(base, (B, 1))
    engine = make_engine("batched")
    t0 = time.perf_counter()
    results = engine.run_dynamic(topo, config, loads)
    bat_seconds = time.perf_counter() - t0
    assert len(results) == B

    # Exact token accounting in every replica: the recorded totals must
    # replay from initial + arrivals - departures with no drift (token
    # counts stay integral, so this holds exactly even in float32 mode).
    base_total = float(base.sum())
    for result in results:
        replay = base_total + np.cumsum(
            result.series("arrived") - result.series("departed")
        )
        assert np.array_equal(result.series("total_load"), replay)

    return {
        "sequential_seconds": seq_seconds,
        "batched_seconds": bat_seconds,
        "replicas_per_sec": B / bat_seconds,
        "speedup_vs_sequential": seq_seconds / bat_seconds,
        "seq_measured_replicas": measure,
        "steady_state_replica0": results[0].steady_state_imbalance(),
    }


#: (key, workload, rounding, precision, sampling) rows measured by the
#: throughput bench.  The headline is burst + nearest + float32 — the same
#: ensemble mode bench_engines asserts on.  The stream-sampled Poisson row
#: is the bit-exactness contract's price (per-node counts drawn replica by
#: replica, a cost both sides pay equally, so its speedup tracks the
#: non-sampling share — the ~3x ceiling ROADMAP notes); the batch-sampled
#: row draws the whole (n, B) count plane in one vectorised call and is the
#: documented opt-out that lifts it.
THROUGHPUT_ROWS = (
    ("burst_f32", "burst", "nearest", "float32", "stream"),
    ("burst_excess", "burst", "randomized-excess", "float64", "stream"),
    ("poisson_excess", "poisson", "randomized-excess", "float64", "stream"),
    ("poisson_excess_batch", "poisson", "randomized-excess", "float64", "batch"),
)


def _dynamic_throughput():
    side, rounds, B = THROUGHPUT_SIDE, THROUGHPUT_ROUNDS, THROUGHPUT_BATCH
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    base = uniform_load(topo, 100)
    workloads = {
        "burst": BurstArrivals(burst=50 * topo.n, period=50),
        "poisson": PoissonArrivals(rate=3.0, departure_rate=1.0),
    }

    summary = {"n": topo.n, "rounds": rounds, "batch": B}
    for key, workload, rounding, precision, sampling in THROUGHPUT_ROWS:
        stats = _measure_model(
            topo, beta, base, workloads[workload], rounds, B, rounding,
            precision, sampling=sampling,
        )
        for name, value in stats.items():
            summary[f"{key}_{name}"] = value
    summary["poisson_batch_vs_stream"] = (
        summary["poisson_excess_batch_speedup_vs_sequential"]
        / summary["poisson_excess_speedup_vs_sequential"]
    )
    return summary


def test_batched_dynamic_throughput(benchmark, archive):
    s = run_once(benchmark, _dynamic_throughput)
    archive(ExperimentRecord(name="dynamic_throughput", summary=s))

    print()
    print(
        format_table(
            ["workload", "rounding", "precision", "sampling", "sequential s",
             "batched s", "replicas/sec", "speedup"],
            [
                [
                    workload,
                    rounding,
                    precision,
                    sampling,
                    f"{s[f'{key}_sequential_seconds']:.2f}",
                    f"{s[f'{key}_batched_seconds']:.2f}",
                    f"{s[f'{key}_replicas_per_sec']:.1f}",
                    f"{s[f'{key}_speedup_vs_sequential']:.1f}x",
                ]
                for key, workload, rounding, precision, sampling in THROUGHPUT_ROWS
            ],
            title=(
                f"batched dynamic ensemble ({s['n']} nodes x {s['rounds']} "
                f"rounds, B={s['batch']}, baseline scaled from "
                f"{SEQ_MEASURE_CAP} sequential replicas)"
            ),
        )
    )
    if SCALE != "tiny":
        # Acceptance: B=128 dynamic ensembles beat sequential
        # DynamicSimulator.run by >= 8x (burst workload, float32 ensemble
        # mode — the same headline mode as bench_engines).
        assert s["burst_f32_speedup_vs_sequential"] >= 8.0, s[
            "burst_f32_speedup_vs_sequential"
        ]
        # The paper's randomized-excess rounding must still win clearly.
        assert s["burst_excess_speedup_vs_sequential"] >= 2.0, s[
            "burst_excess_speedup_vs_sequential"
        ]
        assert s["poisson_excess_speedup_vs_sequential"] >= 1.5, s[
            "poisson_excess_speedup_vs_sequential"
        ]
        # Batch-wide sampling exists to lift the per-replica sampling
        # ceiling: one inverse-CDF draw per (node, replica) from the cached
        # net-delta table cuts the sampling share by ~60%, lifting the
        # Poisson-churn speedup from ~2.9x to ~3.7x (ratio ~1.28 measured;
        # 1.15 asserted as the robust floor).
        assert s["poisson_batch_vs_stream"] >= 1.15, s["poisson_batch_vs_stream"]
