"""Extension bench: steady-state imbalance under online arrivals.

Not a paper figure — the dynamic-workload extension motivated by the
paper's introduction.  Expected: under steady Poisson churn the SOS
balancer holds the imbalance at a small constant independent of how long
the system runs, and it recovers from bursts within the static
convergence time.
"""

import numpy as np

from repro import (
    BurstArrivals,
    DynamicSimulator,
    LoadBalancingProcess,
    PoissonArrivals,
    SecondOrderScheme,
    beta_opt,
    torus_2d,
    torus_lambda,
    uniform_load,
)
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once


def _dynamic_experiment(side=24, rounds=800):
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    base = uniform_load(topo, 100)

    def run(model):
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        return DynamicSimulator(proc, model, rng=np.random.default_rng(1)).run(
            base, rounds
        )

    churn = run(PoissonArrivals(rate=5.0, departure_rate=5.0))
    burst = run(BurstArrivals(burst=20_000, period=200))
    burst_series = burst.series("max_minus_avg")

    # Recovery time after the burst at round 200.
    post = burst_series[201:]
    recovered = np.nonzero(post < 30.0)[0]
    recovery = int(recovered[0]) if recovered.size else None

    return {
        "churn_steady_state": churn.steady_state_imbalance(),
        "churn_first_half": float(
            churn.series("max_minus_avg")[: rounds // 2].mean()
        ),
        "burst_peak": float(burst_series[195:215].max()),
        "burst_recovery_rounds": recovery,
    }


def test_dynamic(benchmark, archive):
    s = run_once(benchmark, _dynamic_experiment)
    archive(ExperimentRecord(name="dynamic", summary=s))

    print()
    print(
        format_table(
            ["quantity", "value"],
            [[k, v] for k, v in s.items()],
            title="dynamic workloads (SOS, 24x24 torus)",
        )
    )

    # Bounded steady state: the tail is no worse than the early phase.
    assert s["churn_steady_state"] < 60.0
    assert s["churn_steady_state"] < 2.0 * s["churn_first_half"] + 10.0
    # Bursts are absorbed quickly.
    assert s["burst_recovery_rounds"] is not None
    assert s["burst_recovery_rounds"] < 150
