"""Theory validation bench: the paper's Results I-III, measured.

Checks (on exactly solvable instances):

* Lemma 2 holds as an exact identity for randomized SOS,
* Theorem 4 / Theorem 9: measured Upsilon and deviation against the bound
  shapes for FOS and SOS,
* Observation 5 / Theorems 10-11: measured transient minima within the
  explicit negative-load bounds.
"""

import numpy as np

from repro import (
    LoadBalancingProcess,
    FirstOrderScheme,
    SecondOrderScheme,
    beta_opt,
    contribution_matrices,
    initial_delta,
    lemma2_rhs,
    point_load,
    refined_local_divergence,
    run_paired,
    theorem10_bound,
    theorem11_bound,
    theory,
    torus_2d,
    torus_lambda,
    Simulator,
)
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once


def _theory_experiment():
    side = 8
    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    beta = beta_opt(lam)
    d = topo.max_degree
    load = point_load(topo, 1000 * topo.n)
    rng = np.random.default_rng(0)

    # Lemma 2 exactness for randomized SOS.
    sos = SecondOrderScheme(topo, beta=beta)
    proc = LoadBalancingProcess(sos, rounding="randomized-excess", rng=rng)
    paired = run_paired(proc, load, rounds=30)
    mats = contribution_matrices(sos, 30)
    lemma2_err = float(
        np.abs(paired.deviation(30) - lemma2_rhs(topo, mats, paired.errors, 30)).max()
    )

    # Upsilon measurements vs bound shapes.
    ups_fos = refined_local_divergence(FirstOrderScheme(topo))
    ups_sos = refined_local_divergence(sos)
    bound_fos = theory.theorem4_upsilon(d, 1.0, lam)
    bound_sos = theory.theorem9_upsilon(d, 1.0, lam)

    # Measured deviation vs Theorem 9 envelope.
    measured_dev = float(paired.max_deviation_series().max())
    dev_bound = theory.theorem9_deviation(d, topo.n, 1.0, lam)

    # Negative load: continuous (Thm 10) and discrete (Thm 11).
    delta0 = initial_delta(load)
    cont = Simulator(LoadBalancingProcess(SecondOrderScheme(topo, beta=beta))).run(
        load, 200
    )
    disc = Simulator(
        LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(1),
        )
    ).run(load, 200)

    return {
        "lambda": lam,
        "beta": beta,
        "lemma2_max_error": lemma2_err,
        "upsilon_fos": ups_fos,
        "upsilon_fos_bound_shape": bound_fos,
        "upsilon_sos": ups_sos,
        "upsilon_sos_bound_shape": bound_sos,
        "measured_sos_deviation": measured_dev,
        "theorem9_deviation_shape": dev_bound,
        "cont_min_transient": cont.min_transient_overall,
        "theorem10_bound": theorem10_bound(topo.n, delta0, lam),
        "disc_min_transient": disc.min_transient_overall,
        "theorem11_bound": theorem11_bound(topo.n, delta0, lam, d),
    }


def test_theory_bounds(benchmark, archive):
    s = run_once(benchmark, _theory_experiment)
    archive(ExperimentRecord(name="theory_bounds", summary=s))

    print()
    print(
        format_table(
            ["quantity", "measured", "bound / shape"],
            [
                ["Lemma 2 max |lhs-rhs|", s["lemma2_max_error"], 0.0],
                ["Upsilon FOS", s["upsilon_fos"], s["upsilon_fos_bound_shape"]],
                ["Upsilon SOS", s["upsilon_sos"], s["upsilon_sos_bound_shape"]],
                ["SOS deviation", s["measured_sos_deviation"],
                 s["theorem9_deviation_shape"]],
                ["min transient (cont)", s["cont_min_transient"],
                 s["theorem10_bound"]],
                ["min transient (disc)", s["disc_min_transient"],
                 s["theorem11_bound"]],
            ],
            title="Theory validation (8x8 torus)",
        )
    )

    assert s["lemma2_max_error"] < 1e-8
    # Upsilon within a small constant of the bound shapes.
    assert s["upsilon_fos"] <= 4.0 * s["upsilon_fos_bound_shape"]
    assert s["upsilon_sos"] <= 6.0 * s["upsilon_sos_bound_shape"]
    # Deviation within a constant of the Theorem 9 shape.
    assert s["measured_sos_deviation"] <= 4.0 * s["theorem9_deviation_shape"]
    # Negative-load bounds hold outright (they carry explicit constants).
    assert s["cont_min_transient"] >= s["theorem10_bound"]
    assert s["disc_min_transient"] >= s["theorem11_bound"]
