"""Topology churn under fire: convergence and conservation vs churn rate.

Sweeps a ladder of random churn rates (expected topology events per
round — node crashes with recovery, edge failures, edge revivals) on the
paper's 32x32 torus and records, for FOS and for SOS at the torus
``beta_opt``:

* the **final masked imbalance** (max-minus-avg over live nodes),
* the **degradation ratio** against the churn-free run,
* the **event count** the accepted random schedule actually contains,
* **exact token conservation** at every rung (``sum(loads) == m`` row by
  row — crashed nodes hand their tokens to live neighbours, so the
  ledger never moves).

Two structural facts are asserted:

* **parity** — the engine fleet (reference / batched / network) produces
  bit-identical traces under the same churn plan for floor rounding;
* **conservation** — every rung's total-load column is exactly flat.

Summary lands in ``BENCH_churn.json`` (committed at the repo root).
"""

import os
import time

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.core.churn import random_churn_schedule
from repro.engines import EngineConfig, make_engine
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

SIDE = {"tiny": 8, "ci": 32, "paper": 32}[SCALE]
ROUNDS = {"tiny": 20, "ci": 120, "paper": 300}[SCALE]
#: Expected churn events per round (0.0 is the static-topology regime).
RATES = {"tiny": [0.0, 0.5], "ci": [0.0, 0.25, 0.5, 1.0],
         "paper": [0.0, 0.25, 0.5, 1.0]}[SCALE]
PARITY_ROUNDS = min(ROUNDS, 25)
ROUNDING = "randomized-excess"
SEED = 0


def _run_rung(topo, load, schedule, scheme, beta, rate):
    config = EngineConfig(
        rounds=ROUNDS, scheme=scheme, beta=beta, rounding=ROUNDING,
        seed=SEED, churn=schedule,
    )
    t0 = time.perf_counter()
    result = make_engine("batched").run(topo, config, load[None, :])[0]
    elapsed = time.perf_counter() - t0
    totals = result.table.column("total_load")
    return {
        "scheme": scheme,
        "rate": rate,
        "events": len(schedule.events),
        "final_max_minus_avg": float(result.table.column("max_minus_avg")[-1]),
        "conserved": bool((totals == load.sum()).all()),
        "seconds": elapsed,
    }


def _fleet_parity(topo, load, schedule):
    """Reference / batched / network bit-identity under the churn plan."""
    config = EngineConfig(
        rounds=PARITY_ROUNDS, scheme="sos",
        beta=beta_opt(torus_lambda((SIDE, SIDE))), rounding="floor",
        seed=SEED, churn=schedule,
    )
    traces = {
        name: make_engine(name).run(topo, config, load[None, :])[0]
        for name in ("reference", "batched", "network")
    }
    ref = traces["reference"]
    for name in ("batched", "network"):
        for field in ("max_minus_avg", "total_load", "min_transient",
                      "round_traffic"):
            if not np.array_equal(
                traces[name].table.column(field), ref.table.column(field)
            ):
                return False
        if not np.array_equal(
            traces[name].final_state.load, ref.final_state.load
        ):
            return False
    return True


def _run_churn_ladder():
    topo = torus_2d(SIDE, SIDE)
    load = point_load(topo, 1000 * topo.n)
    beta = beta_opt(torus_lambda((SIDE, SIDE)))

    # One schedule per rate, shared by both schemes (and by the parity
    # gate), so every run balances under the identical event sequence.
    schedules = {
        rate: random_churn_schedule(topo, rate, ROUNDS, seed=SEED)
        for rate in RATES
    }
    parity = _fleet_parity(
        topo, load, schedules[RATES[-1] if len(RATES) > 1 else RATES[0]]
    )

    rungs = []
    for scheme in ("fos", "sos"):
        b = beta if scheme == "sos" else 1.0
        for rate in RATES:
            rung = _run_rung(topo, load, schedules[rate], scheme, b, rate)
            base = next(
                (
                    r["final_max_minus_avg"]
                    for r in rungs
                    if r["scheme"] == scheme and r["rate"] == 0.0
                ),
                None,
            )
            rung["degradation_vs_static"] = (
                rung["final_max_minus_avg"] / base if base else None
            )
            rungs.append(rung)

    return {
        "n": topo.n,
        "rounds": ROUNDS,
        "rounding": ROUNDING,
        "beta_sos": beta,
        "rates": RATES,
        "parity_fleet_bit_identical": parity,
        "rungs": rungs,
    }


def test_churn_ladder(benchmark, archive):
    s = run_once(benchmark, _run_churn_ladder)
    archive(
        ExperimentRecord(
            name="churn",
            params={
                "n": s["n"], "rounds": s["rounds"],
                "rounding": s["rounding"], "rates": s["rates"],
            },
            summary=s,
        )
    )
    print()
    print(
        format_table(
            ["scheme", "rate", "events", "final max-avg", "vs static",
             "conserved"],
            [
                [
                    r["scheme"],
                    f"{r['rate']:.2f}",
                    str(r["events"]),
                    f"{r['final_max_minus_avg']:.4g}",
                    "1.00x" if r["rate"] == 0.0
                    else f"{r['degradation_vs_static']:.3g}x",
                    "yes" if r["conserved"] else "NO",
                ]
                for r in s["rungs"]
            ],
            title=(
                f"balancing under churn ({s['n']} nodes x "
                f"{s['rounds']} rounds, {s['rounding']})"
            ),
        )
    )
    assert s["parity_fleet_bit_identical"], (
        "engine fleet diverged under the shared churn plan"
    )
    for r in s["rungs"]:
        assert r["conserved"], f"conservation broke at rung {r}"
