"""Persistent-pool throughput: repeated sharded calls with warm workers.

Two things are measured and archived to ``BENCH_pool.json``:

* **parity** — every pooled call's merged traces are bit-identical to a
  per-call sharded run (and therefore to the single-process batched run),
  checked on the measured workload itself;
* **calls/sec over a K-call ladder** — the same ensemble submitted K
  times in a row, once through per-call sharded execution (spawn workers,
  prepare operators, run, tear down — every call) and once through one
  :class:`~repro.engines.pool.ShardedWorkerPool` (workers persist, the
  prepared topology operators are cached per worker, record columns come
  back through shared memory zero-copy).

Acceptance (the ISSUE's repeat-call floor): with **>= 4 usable cores** at
ci/paper scale the pooled ladder must finish **>= 2x** faster than the
per-call ladder at K >= 8 calls.  On smaller machines the bench still
runs and archives the measured ladder, but the floor is recorded as
``asserted: false`` instead of failing on hardware the contract does not
cover.
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.engines import EngineConfig, ShardedWorkerPool, make_engine, resolve_workers
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

SIDE = {"tiny": 12, "ci": 32, "paper": 48}[SCALE]
ROUNDS = {"tiny": 30, "ci": 200, "paper": 400}[SCALE]
BATCH = {"tiny": 8, "ci": 64, "paper": 64}[SCALE]
CALLS = {"tiny": 3, "ci": 8, "paper": 8}[SCALE]
RECORD_EVERY = 10
#: the asserted floor: pooled ladder >= 2x the per-call sharded ladder ...
SPEEDUP_FLOOR = 2.0
#: ... on machines with at least this many usable cores.
MIN_CORES = 4


def _usable_cores() -> int:
    return resolve_workers("auto", 1 << 30)


def _results_identical(a_results, b_results) -> bool:
    return all(
        np.array_equal(a.final_state.load, b.final_state.load)
        and np.array_equal(
            np.asarray(a.series("max_minus_avg")),
            np.asarray(b.series("max_minus_avg")),
        )
        and np.array_equal(
            np.asarray(a.series("round_traffic")),
            np.asarray(b.series("round_traffic")),
        )
        for a, b in zip(a_results, b_results)
    )


def _run_pool_throughput():
    topo = torus_2d(SIDE, SIDE)
    beta = beta_opt(torus_lambda((SIDE, SIDE)))
    loads = np.tile(point_load(topo, 1000 * topo.n), (BATCH, 1))
    cores = _usable_cores()
    config = EngineConfig(
        scheme="sos",
        beta=beta,
        rounding="randomized-excess",
        rounds=ROUNDS,
        record_every=RECORD_EVERY,
        seed=0,
        workers=cores,
    )
    summary = {
        "n": topo.n,
        "rounds": ROUNDS,
        "n_replicas": BATCH,
        "calls": CALLS,
        "record_every": RECORD_EVERY,
        "rounding": config.rounding,
        "usable_cores": cores,
        "workers": cores,
        "min_cores_for_assert": MIN_CORES,
        "speedup_floor": SPEEDUP_FLOOR,
    }

    sharded = make_engine("sharded")
    t0 = time.perf_counter()
    percall_results = [
        sharded.run(topo, config, loads) for _ in range(CALLS)
    ]
    percall_seconds = time.perf_counter() - t0
    summary["percall_seconds"] = percall_seconds
    summary["percall_calls_per_sec"] = CALLS / percall_seconds

    with ShardedWorkerPool(workers=cores) as pool:
        t0 = time.perf_counter()
        pooled_results = [
            sharded.run(topo, replace(config, pool=pool), loads)
            for _ in range(CALLS)
        ]
        pooled_seconds = time.perf_counter() - t0
        summary["pool_calls_served"] = pool.calls_served
    summary["pooled_seconds"] = pooled_seconds
    summary["pooled_calls_per_sec"] = CALLS / pooled_seconds
    summary["pooled_speedup"] = percall_seconds / pooled_seconds
    identical = all(
        _results_identical(a, b)
        for a, b in zip(percall_results, pooled_results)
    )
    summary["pooled_bit_identical"] = bool(identical)
    summary["asserted"] = bool(SCALE != "tiny" and cores >= MIN_CORES)
    summary["rows"] = [
        ["sharded per-call", CALLS, f"{percall_seconds:.2f}",
         f"{CALLS / percall_seconds:.2f}", "1.00x", ""],
        ["sharded pooled", CALLS, f"{pooled_seconds:.2f}",
         f"{CALLS / pooled_seconds:.2f}",
         f"{percall_seconds / pooled_seconds:.2f}x",
         "bit-identical" if identical else "MISMATCH"],
    ]
    return summary


def test_pool_throughput(benchmark, archive):
    s = run_once(benchmark, _run_pool_throughput)
    rows = s.pop("rows")
    archive(ExperimentRecord(name="pool", summary=s))
    print()
    print(
        format_table(
            ["mode", "calls", "seconds", "calls/sec", "speedup", "parity"],
            rows,
            title=(
                f"pooled repeat-call throughput ({s['n']} nodes x "
                f"{s['rounds']} rounds, B={s['n_replicas']}, "
                f"K={s['calls']} calls, {s['usable_cores']} usable cores)"
            ),
        )
    )
    # Parity is asserted unconditionally — pooling must never change results.
    assert s["pooled_bit_identical"], "pooled results diverged from per-call"
    assert s["pool_calls_served"] == s["calls"]
    if s["asserted"]:
        # Acceptance: the warm pool amortises worker startup and operator
        # preparation into >= 2x over K >= 8 repeat calls on >= 4 cores.
        assert s["pooled_speedup"] >= SPEEDUP_FLOOR, s["pooled_speedup"]
