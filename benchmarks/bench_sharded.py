"""Sharded-engine throughput: worker processes vs the single-core batched run.

Two things are measured and archived to ``BENCH_sharded.json``:

* **parity** — the sharded engine's merged traces are bit-identical to the
  single-process batched engine's (the whole point of the per-replica
  stream layout), checked on the measured workload itself;
* **replicas/sec** — ensemble throughput of the sharded engine at
  B = ``BATCH`` replicas for 1, 2, 4, ... workers up to the usable CPU
  count, against the single-process batched engine.

Acceptance (the ROADMAP's multiplicative-speedup floor): with **>= 4
usable cores** at ci/paper scale the sharded engine must beat the batched
engine by **>= 2x replicas/sec at B = 128**.  On smaller machines (CI
runners are often 2-core, this repo's dev container is 1-core) the bench
still runs and archives the measured curve, but the floor is recorded as
``asserted: false`` instead of failing on hardware the contract does not
cover.
"""

import os
import time

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.engines import EngineConfig, make_engine, resolve_workers
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

SIDE = {"tiny": 12, "ci": 32, "paper": 48}[SCALE]
ROUNDS = {"tiny": 30, "ci": 200, "paper": 400}[SCALE]
BATCH = {"tiny": 8, "ci": 128, "paper": 128}[SCALE]
RECORD_EVERY = 10
#: the asserted floor: sharded >= 2x batched replicas/sec at B=128 ...
SPEEDUP_FLOOR = 2.0
#: ... on machines with at least this many usable cores.
MIN_CORES = 4


def _usable_cores() -> int:
    return resolve_workers("auto", 1 << 30)


def _worker_ladder(cores: int) -> list:
    """1, 2, 4, ... capped at the usable core count (always including it)."""
    ladder = [1]
    while ladder[-1] * 2 <= cores:
        ladder.append(ladder[-1] * 2)
    if ladder[-1] != cores:
        ladder.append(cores)
    return ladder


def _timed_run(engine_name: str, topo, config, loads) -> tuple:
    engine = make_engine(engine_name)
    t0 = time.perf_counter()
    results = engine.run(topo, config, loads)
    return time.perf_counter() - t0, results


def _run_sharded_throughput():
    topo = torus_2d(SIDE, SIDE)
    beta = beta_opt(torus_lambda((SIDE, SIDE)))
    loads = np.tile(point_load(topo, 1000 * topo.n), (BATCH, 1))
    cores = _usable_cores()
    config = EngineConfig(
        scheme="sos",
        beta=beta,
        rounding="randomized-excess",
        rounds=ROUNDS,
        record_every=RECORD_EVERY,
        seed=0,
    )
    summary = {
        "n": topo.n,
        "rounds": ROUNDS,
        "n_replicas": BATCH,
        "record_every": RECORD_EVERY,
        "rounding": config.rounding,
        "usable_cores": cores,
        "min_cores_for_assert": MIN_CORES,
        "speedup_floor": SPEEDUP_FLOOR,
    }

    batched_seconds, batched_results = _timed_run("batched", topo, config, loads)
    summary["batched_seconds"] = batched_seconds
    summary["batched_replicas_per_sec"] = BATCH / batched_seconds

    rows = [["batched", 1, f"{batched_seconds:.2f}",
             f"{BATCH / batched_seconds:.1f}", "1.00x", ""]]
    best = 0.0
    for workers in _worker_ladder(cores):
        from dataclasses import replace

        sharded_seconds, sharded_results = _timed_run(
            "sharded", topo, replace(config, workers=workers), loads
        )
        identical = all(
            np.array_equal(a.final_state.load, b.final_state.load)
            and np.array_equal(
                np.asarray(a.series("max_minus_avg")),
                np.asarray(b.series("max_minus_avg")),
            )
            for a, b in zip(batched_results, sharded_results)
        )
        speedup = batched_seconds / sharded_seconds
        best = max(best, speedup)
        summary[f"sharded_w{workers}_seconds"] = sharded_seconds
        summary[f"sharded_w{workers}_replicas_per_sec"] = BATCH / sharded_seconds
        summary[f"sharded_w{workers}_speedup"] = speedup
        summary[f"sharded_w{workers}_bit_identical"] = bool(identical)
        rows.append(
            [
                "sharded", workers, f"{sharded_seconds:.2f}",
                f"{BATCH / sharded_seconds:.1f}", f"{speedup:.2f}x",
                "bit-identical" if identical else "MISMATCH",
            ]
        )
    summary["best_speedup"] = best
    summary["asserted"] = bool(SCALE != "tiny" and cores >= MIN_CORES)
    summary["rows"] = rows
    return summary


def test_sharded_throughput(benchmark, archive):
    s = run_once(benchmark, _run_sharded_throughput)
    rows = s.pop("rows")
    archive(ExperimentRecord(name="sharded", summary=s))
    print()
    print(
        format_table(
            ["engine", "workers", "seconds", "replicas/sec", "speedup", "parity"],
            rows,
            title=(
                f"sharded ensemble throughput ({s['n']} nodes x "
                f"{s['rounds']} rounds, B={s['n_replicas']}, "
                f"{s['usable_cores']} usable cores)"
            ),
        )
    )
    # Parity is asserted unconditionally — sharding must never change results.
    for key, value in s.items():
        if key.endswith("_bit_identical"):
            assert value, f"{key}: sharded results diverged from batched"
    if s["asserted"]:
        # Acceptance: >= 2x replicas/sec vs the single-process batched
        # engine at B=128 on >= 4 usable cores (ci/paper scale).
        assert s["best_speedup"] >= SPEEDUP_FLOOR, s["best_speedup"]
