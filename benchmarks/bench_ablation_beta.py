"""Ablation: sensitivity of SOS to the relaxation parameter beta.

Sweeps beta around beta_opt on a torus — submitted as ONE batched engine
call via :func:`repro.experiments.beta_sensitivity_sweep` (the betas
travel as a per-replica ``ReplicaParams`` plane), instead of one simulator
loop per beta.  Expected: convergence time is minimised near
beta_opt = 2/(1 + sqrt(1 - lambda^2)); beta = 1 (plain FOS) is far slower,
and beta -> 2 destabilises (slower again).
"""

from repro.experiments import beta_sensitivity_sweep, format_table
from repro.io import ExperimentRecord

from _helpers import run_once


def test_ablation_beta(benchmark, archive):
    results = run_once(benchmark, beta_sensitivity_sweep, side=32, rounds=3000)
    archive(ExperimentRecord(name="ablation_beta", summary=results))

    rounds_map = results["rounds_to_balance"]
    b_opt = results["beta_opt"]
    print()
    print(
        format_table(
            ["beta", "rounds to max-avg <= 10"],
            [[k, v] for k, v in rounds_map.items()],
            title=f"beta sweep (32x32 torus, beta_opt = {b_opt:.6f})",
        )
    )

    assert results["engine_calls"] == 1
    opt_key = f"{b_opt:.6f}"
    opt_rounds = rounds_map[opt_key]
    assert opt_rounds is not None
    # beta = 1 (FOS) is much slower than beta_opt.
    fos_rounds = rounds_map["1.000000"]
    assert fos_rounds is None or fos_rounds > 2 * opt_rounds
    # beta_opt is within 40% of the best seen value in the sweep.
    best = min(v for v in rounds_map.values() if v is not None)
    assert opt_rounds <= 1.4 * best
