"""Ablation: sensitivity of SOS to the relaxation parameter beta.

Sweeps beta around beta_opt on a torus.  Expected: convergence time is
minimised near beta_opt = 2/(1 + sqrt(1 - lambda^2)); beta = 1 (plain FOS)
is far slower, and beta -> 2 destabilises (slower again).
"""

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import convergence_round
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once


def _sweep(side=32, rounds=3000):
    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    b_opt = beta_opt(lam)
    betas = [1.0, 0.5 * (1 + b_opt), 0.95 * b_opt, b_opt,
             min(1.999, 0.5 * (b_opt + 2.0))]
    out = {}
    for beta in betas:
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        result = Simulator(proc).run(point_load(topo, 1000 * topo.n), rounds)
        out[f"{beta:.6f}"] = convergence_round(result, threshold=10.0, sustained=3)
    return {"beta_opt": b_opt, "lambda": lam, "rounds_to_10": out}


def test_ablation_beta(benchmark, archive):
    results = run_once(benchmark, _sweep)
    archive(ExperimentRecord(name="ablation_beta", summary=results))

    rounds_map = results["rounds_to_10"]
    b_opt = results["beta_opt"]
    print()
    print(
        format_table(
            ["beta", "rounds to max-avg <= 10"],
            [[k, v] for k, v in rounds_map.items()],
            title=f"beta sweep (32x32 torus, beta_opt = {b_opt:.6f})",
        )
    )

    opt_key = f"{b_opt:.6f}"
    opt_rounds = rounds_map[opt_key]
    assert opt_rounds is not None
    # beta = 1 (FOS) is much slower than beta_opt.
    fos_rounds = rounds_map["1.000000"]
    assert fos_rounds is None or fos_rounds > 2 * opt_rounds
    # beta_opt is within 40% of the best seen value in the sweep.
    best = min(v for v in rounds_map.values() if v is not None)
    assert opt_rounds <= 1.4 * best
