"""Baseline comparison: diffusion (FOS/SOS) vs matching-based balancing.

The paper's algorithms balance with *all* neighbours each round; the
classical alternative ([17], dimension exchange) activates one matching per
round.  Expected ordering on the torus: SOS beats everything; matching
schemes land between FOS and SOS per-round (they move less load per round
but mix faster per edge activation); all discrete variants plateau at a
small residual.
"""

import numpy as np

from repro import (
    ChebyshevScheme,
    DimensionExchangeScheme,
    FirstOrderScheme,
    LoadBalancingProcess,
    RandomMatchingScheme,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import convergence_round, remaining_imbalance
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once


def _comparison(side=32, rounds=4000):
    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    load = point_load(topo, 1000 * topo.n)
    schemes = {
        "sos": SecondOrderScheme(topo, beta=beta_opt(lam)),
        "chebyshev": ChebyshevScheme(topo, lam),
        "fos": FirstOrderScheme(topo),
        "random-matching": RandomMatchingScheme(topo, seed=0),
        "dimension-exchange": DimensionExchangeScheme(topo),
    }
    out = {}
    for name, scheme in schemes.items():
        proc = LoadBalancingProcess(
            scheme, rounding="randomized-excess", rng=np.random.default_rng(0)
        )
        result = Simulator(proc).run(load, rounds)
        out[name] = {
            "rounds_to_10": convergence_round(result, threshold=10.0, sustained=3),
            "plateau": remaining_imbalance(result).mean,
        }
    return out


def test_baseline_matching(benchmark, archive):
    results = run_once(benchmark, _comparison)
    archive(ExperimentRecord(name="baseline_matching", summary=results))

    print()
    print(
        format_table(
            ["scheme", "rounds to max-avg <= 10", "plateau"],
            [[k, v["rounds_to_10"], v["plateau"]] for k, v in results.items()],
            title="diffusion vs matching baselines (32x32 torus)",
        )
    )

    sos = results["sos"]["rounds_to_10"]
    assert sos is not None
    # The second-order family (SOS / Chebyshev) is the fastest; Chebyshev's
    # optimal transient may shave a few rounds off fixed-beta SOS.
    for name, v in results.items():
        if name in ("sos", "chebyshev"):
            continue
        if v["rounds_to_10"] is not None:
            assert v["rounds_to_10"] >= sos
    cheb = results["chebyshev"]["rounds_to_10"]
    assert cheb is not None and cheb <= sos + 10
    # Every scheme that converged plateaus at a small residual.
    for v in results.values():
        assert v["plateau"] < 40.0
