"""Staleness engine: the async ladder, vectorised — plus a throughput race.

The ``staleness`` engine quantises link latencies into integer round
buckets and advances the whole ``(n, B)`` ensemble with one delayed-view
plane per bucket, replacing the event loop's per-message queue with
vectorised ring reads.  This bench re-runs the FOS-graceful/SOS-divergent
latency ladder of ``bench_async.py`` on the paper's 32x32 torus through
the batched engine and races it against the event-driven
:class:`~repro.network.async_engine.AsyncNetwork`:

* **parity** — at an integer latency the staleness engine replays the
  async engine bit for bit (the differential-harness contract);
* **the ladder** — FOS stays convergent at every (now bucketed) latency
  level while SOS at the torus ``beta_opt`` blows up under any staleness,
  reproducing the async headline from the vectorised path;
* **throughput** — one batched call advancing ``B`` replicas must beat
  the event loop by >= 5x replicas/sec at n=1024, B=16.

Summary lands in ``BENCH_staleness.json`` (committed at the repo root).
"""

import os
import time

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.engines import EngineConfig, make_engine
from repro.experiments import format_table
from repro.io import ExperimentRecord
from repro.network import AsyncNetwork

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

SIDE = {"tiny": 8, "ci": 32, "paper": 32}[SCALE]
ROUNDS = {"tiny": 30, "ci": 150, "paper": 400}[SCALE]
#: Uniform link latency ladder, in rounds — same levels as bench_async;
#: fractional entries exercise the ceil quantiser.
LATENCIES = [0.0, 0.5, 1.5, 3.5]
CURVE_EVERY = {"tiny": 2, "ci": 5, "paper": 10}[SCALE]
ROUNDING = "randomized-excess"
SEED = 0

#: Throughput race: one batched staleness call advancing PERF_B replicas
#: versus the event loop draining its queues one replica at a time.
PERF_B = {"tiny": 4, "ci": 16, "paper": 16}[SCALE]
PERF_ROUNDS = {"tiny": 10, "ci": 40, "paper": 40}[SCALE]
#: Event-loop replicas actually timed (its per-replica cost is flat, so a
#: couple of runs pin the rate without multiplying harness wall time).
PERF_ASYNC_REPLICAS = {"tiny": 1, "ci": 2, "paper": 2}[SCALE]
PERF_LATENCY = 1.5
SPEEDUP_TARGET = 5.0


def _run_level(topo, load, scheme, beta, latency):
    cfg = EngineConfig(
        scheme=scheme, beta=beta, rounding=ROUNDING, rounds=ROUNDS,
        seed=SEED, latency_model=latency if latency > 0.0 else None,
    )
    eng = make_engine("staleness")
    handle = eng.prepare(topo, cfg, load[None, :])
    avg = load.sum() / topo.n
    curve = []
    for r in range(ROUNDS):
        eng.step(handle)
        if r % CURVE_EVERY == 0 or r == ROUNDS - 1:
            loads = handle.core.loads[:, 0]
            curve.append([r + 1, float(loads.max() - avg)])
    loads = handle.core.loads[:, 0]
    return {
        "scheme": scheme,
        "latency": latency,
        "mean_staleness": handle.core.mean_staleness,
        "max_staleness": handle.core.max_staleness,
        "final_max_minus_avg": float(loads.max() - avg),
        "total_load_with_in_flight": float(handle.core.total_load()[0]),
        "curve_max_minus_avg": curve,
    }


def _integer_latency_parity(topo, load, beta):
    """Bit-identity gate: at an integer latency the vectorised engine must
    replay the event loop exactly (deterministic rounding — the contract
    does not cover stochastic streams, whose draw order differs)."""
    cfg = EngineConfig(
        scheme="sos", beta=beta, rounding="floor", rounds=min(ROUNDS, 30),
        seed=SEED, latency_model=2.0,
    )
    eng_s, eng_a = make_engine("staleness"), make_engine("async")
    hs = eng_s.prepare(topo, cfg, load[None, :])
    ha = eng_a.prepare(topo, cfg, load[None, :])
    for _ in range(cfg.rounds):
        eng_s.step(hs)
        eng_a.step(ha)
    return bool(
        np.array_equal(hs.core.loads[:, 0], ha.replicas[0].net.loads())
    )


def _perf_race(topo, load):
    """Replicas/sec: one batched staleness call vs the event loop."""
    cfg = EngineConfig(
        scheme="fos", beta=1.0, rounding=ROUNDING, rounds=PERF_ROUNDS,
        seed=SEED, latency_model=PERF_LATENCY,
    )
    eng = make_engine("staleness")
    handle = eng.prepare(topo, cfg, np.tile(load, (PERF_B, 1)))
    t0 = time.perf_counter()
    for _ in range(PERF_ROUNDS):
        eng.step(handle)
    stale_rps = PERF_B / (time.perf_counter() - t0)

    nets = [
        AsyncNetwork(
            topo, load, scheme="fos", beta=1.0, rounding=ROUNDING,
            seed=SEED + b, link_latency=PERF_LATENCY,
        )
        for b in range(PERF_ASYNC_REPLICAS)
    ]
    t0 = time.perf_counter()
    for net in nets:
        for _ in range(PERF_ROUNDS):
            net.step()
    async_rps = PERF_ASYNC_REPLICAS / (time.perf_counter() - t0)
    return {
        "n": topo.n,
        "replicas": PERF_B,
        "rounds": PERF_ROUNDS,
        "latency": PERF_LATENCY,
        "async_replicas_timed": PERF_ASYNC_REPLICAS,
        "staleness_replicas_per_sec": stale_rps,
        "async_replicas_per_sec": async_rps,
        "speedup_vs_async": stale_rps / async_rps,
    }


def _run_staleness_ladder():
    topo = torus_2d(SIDE, SIDE)
    load = point_load(topo, 1000 * topo.n)
    beta = beta_opt(torus_lambda((SIDE, SIDE)))

    parity = _integer_latency_parity(topo, load, beta)

    levels = []
    for scheme in ("fos", "sos"):
        b = beta if scheme == "sos" else 1.0
        for latency in LATENCIES:
            level = _run_level(topo, load, scheme, b, latency)
            base = next(
                (
                    lv["final_max_minus_avg"]
                    for lv in levels
                    if lv["scheme"] == scheme and lv["latency"] == 0.0
                ),
                None,
            )
            level["degradation_vs_sync"] = (
                level["final_max_minus_avg"] / base if base else None
            )
            levels.append(level)

    return {
        "n": topo.n,
        "rounds": ROUNDS,
        "rounding": ROUNDING,
        "latency_buckets": "ceil",
        "beta_sos": beta,
        "latencies": LATENCIES,
        "parity_integer_latency_bit_identical": parity,
        "levels": levels,
        "perf": _perf_race(topo, load),
    }


def test_staleness_ladder_and_throughput(benchmark, archive):
    s = run_once(benchmark, _run_staleness_ladder)
    archive(
        ExperimentRecord(
            name="staleness",
            params={
                "n": s["n"], "rounds": s["rounds"],
                "rounding": s["rounding"], "latencies": s["latencies"],
                "latency_buckets": s["latency_buckets"],
            },
            summary=s,
        )
    )
    perf = s["perf"]
    print()
    print(
        format_table(
            ["scheme", "latency", "mean staleness", "final max-avg",
             "vs sync"],
            [
                [
                    lv["scheme"],
                    f"{lv['latency']:.1f}",
                    f"{lv['mean_staleness']:.2f}",
                    f"{lv['final_max_minus_avg']:.4g}",
                    "1.00x" if lv["latency"] == 0.0
                    else f"{lv['degradation_vs_sync']:.3g}x",
                ]
                for lv in s["levels"]
            ],
            title=(
                f"staleness-engine ladder ({s['n']} nodes x "
                f"{s['rounds']} rounds, {s['rounding']})"
            ),
        )
    )
    print(
        f"throughput @ n={perf['n']}, B={perf['replicas']}: "
        f"staleness {perf['staleness_replicas_per_sec']:.2f} replicas/s "
        f"vs async {perf['async_replicas_per_sec']:.2f} replicas/s "
        f"({perf['speedup_vs_async']:.1f}x)"
    )
    assert s["parity_integer_latency_bit_identical"], (
        "integer-latency staleness run diverged from the async engine"
    )
    fos = [lv for lv in s["levels"] if lv["scheme"] == "fos"]
    # Observed staleness tracks the (bucketed) latency ladder.
    stales = [lv["mean_staleness"] for lv in fos]
    assert all(a <= b + 1e-9 for a, b in zip(stales, stales[1:])), stales
    # Load (nodes + in-flight planes) is conserved at every level — to
    # float cancellation accuracy once a diverged SOS run pushes loads
    # past 2^53, where integer token arithmetic stops being exact.
    expected = 1000.0 * s["n"]
    for lv in s["levels"]:
        scale = max(expected, abs(lv["final_max_minus_avg"]))
        err = abs(lv["total_load_with_in_flight"] - expected)
        assert err <= 1e-9 * scale, lv
    if SCALE != "tiny":
        # FOS stays convergent under bucketed staleness at every level.
        for lv in fos:
            assert lv["final_max_minus_avg"] < 0.05 * 1000 * s["n"], lv
        # The headline perf target: >= 5x replicas/sec over the event
        # loop at paper scale, measured on this machine.
        assert perf["speedup_vs_async"] >= SPEEDUP_TARGET, perf
