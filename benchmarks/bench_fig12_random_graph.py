"""Figure 12: configuration-model random graph.

Paper shape: on expander-like graphs (second eigenvalue ~ (2+o(1))/sqrt(d))
SOS gives "only a limited improvement" over FOS — both converge within a
few dozen rounds and the remaining imbalance is the same.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig12(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig12_random_graph, scale=bench_scale)
    archive(record)

    s = record.summary
    assert s["sos_round_below_10"] is not None
    assert s["fos_round_below_10"] is not None
    # Limited improvement: the measured speed-up is small (paper shows
    # nearly overlapping curves; predicted ~ 1/sqrt(1-lambda) is small too).
    assert s["measured_speedup"] < 3.0
    assert s["predicted_speedup"] < 3.0
    # Remaining imbalance is the same small constant for both schemes.
    assert abs(s["sos_plateau"] - s["fos_plateau"]) < 6.0
