"""Figure 13: hypercube.

Paper shape: like the random graph, the hypercube's spectral gap
(lambda = 1 - 2/(k+1)) is large enough that SOS brings only a modest
speed-up over FOS, and the residual imbalance of FOS is within one token
of the SOS residual.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig13(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig13_hypercube, scale=bench_scale)
    archive(record)

    s = record.summary
    assert s["sos_round_below_10"] is not None
    assert s["fos_round_below_10"] is not None
    # Modest speed-up on the hypercube (paper: "negligible difference").
    assert s["measured_speedup"] < 4.0
    # Hybrid ends at least as well as pure SOS.
    assert s["hybrid_final"] <= s["sos_plateau"] + 2.0
