"""Figure 3: SOS vs FOS — discrete randomized rounding and idealized runs.

Paper shape: the ordering (SOS beats FOS on the torus) is the same in both
the discrete and the idealized setting; the idealized runs keep improving
below the discrete plateau because no rounding noise remains.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig03(benchmark, bench_scale, archive):
    record = run_once(
        benchmark, figures.fig03_discrete_vs_ideal, scale=bench_scale
    )
    archive(record)

    s = record.summary
    # SOS converges within the horizon in both settings.
    assert s["discrete_sos_round_below_10"] is not None
    assert s["ideal_sos_round_below_10"] is not None
    # Idealized SOS ends far below the discrete plateau.
    assert s["ideal_sos_final"] < 1.0
    assert s["discrete_sos_final"] < 40.0
    # FOS lags SOS in the idealized setting too.
    if s["ideal_fos_round_below_10"] is not None:
        assert s["ideal_fos_round_below_10"] > s["ideal_sos_round_below_10"]
