"""Ablation: alpha strategy (paper default vs uniform vs lazy Metropolis).

The diffusion speed is governed by the spectral gap of M, which the alpha
choice controls.  Expected on a regular torus: the paper default
``1/(max(d_i,d_j)+1) = 1/5`` beats the lazier choices (``1/(2d) = 1/8``,
uniform ``1/(gamma d)``) because larger alphas close the gap faster.
"""

import numpy as np

from repro import (
    FirstOrderScheme,
    LoadBalancingProcess,
    Simulator,
    point_load,
    second_largest_eigenvalue,
    torus_2d,
)
from repro.analysis import convergence_round
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

STRATEGIES = ["max-degree-plus-one", "lazy-metropolis", "uniform"]


def _sweep(side=24, rounds=4000):
    topo = torus_2d(side, side)
    load = point_load(topo, 1000 * topo.n)
    out = {}
    for name in STRATEGIES:
        scheme = FirstOrderScheme(topo, alphas=name)
        lam = second_largest_eigenvalue(topo, alphas=name)
        proc = LoadBalancingProcess(
            scheme, rounding="randomized-excess", rng=np.random.default_rng(0)
        )
        result = Simulator(proc).run(load, rounds)
        out[name] = {
            "lambda": lam,
            "rounds_to_50": convergence_round(result, threshold=50.0, sustained=3),
        }
    return out


def test_ablation_alpha(benchmark, archive):
    results = run_once(benchmark, _sweep)
    archive(ExperimentRecord(name="ablation_alpha", summary=results))

    print()
    print(
        format_table(
            ["alpha strategy", "lambda", "rounds to max-avg <= 50"],
            [[k, v["lambda"], v["rounds_to_50"]] for k, v in results.items()],
            title="alpha ablation (FOS, 24x24 torus)",
        )
    )

    default = results["max-degree-plus-one"]
    assert default["rounds_to_50"] is not None
    for name in ("lazy-metropolis", "uniform"):
        other = results[name]
        # Larger gap -> faster convergence for the paper default.
        assert default["lambda"] <= other["lambda"] + 1e-12
        if other["rounds_to_50"] is not None:
            assert default["rounds_to_50"] <= other["rounds_to_50"] + 5
