"""Figures 4/5: switching from SOS to FOS after the decay phase.

Paper shape: pure SOS never drops below ~10 tokens of residual; after the
synchronous switch to FOS both the local difference (paper: -> ~4) and the
max-minus-average (paper: -> ~7) fall significantly below the SOS plateau.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig04_05(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig04_05_switching, scale=bench_scale)
    archive(record)

    s = record.summary
    sos_plateau = s["sos_only_plateau_max_minus_avg"]
    sos_local = s["sos_only_plateau_local_diff"]
    for switch in record.params["switch_rounds"]:
        # Switching drops (or at least never worsens) both residuals.
        assert s[f"switch{switch}_final_max_minus_avg"] <= sos_plateau + 1.0
        assert s[f"switch{switch}_final_local_diff"] <= sos_local + 1.0
    first = record.params["switch_rounds"][0]
    # The drop is substantial: at least ~30% below the SOS plateau.
    assert s[f"switch{first}_final_max_minus_avg"] < 0.7 * sos_plateau + 2.0
