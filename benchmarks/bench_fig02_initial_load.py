"""Figure 2: initial average loads 10 / 100 / 1000 on the torus.

Paper shape: "the amount of initial load does only have limited impact on
the behavior of the simulation, especially once the system has converged" —
all three curves plateau at the same few-token residual.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig02(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig02_initial_load, scale=bench_scale)
    archive(record)

    plateaus = [
        record.summary[f"avg{avg}_plateau"] for avg in record.params["averages"]
    ]
    # All plateaus are small constants, independent of the total load.
    for p in plateaus:
        assert p < 40.0
    assert max(plateaus) - min(plateaus) < 25.0
