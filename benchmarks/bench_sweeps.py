"""Sweep throughput: one fused engine call vs the old per-point loop.

The fig08-style switch sweep used to run one engine call per sweep point
(``P`` calls of ``n_seeds`` replicas each); the per-replica parameter
planes (``ReplicaParams.switch_rounds``) fold the whole sweep into ONE
call of ``P * n_seeds`` replicas, so the vectorised kernels amortise over
the full batch instead of per-point slivers.  Two things are measured and
archived to ``BENCH_sweeps.json``:

* **parity** — with a deterministic rounding the fused sweep is
  *bit-identical* per replica to the per-point loop (and the sharded
  fused sweep to the batched one), checked on the measured workload;
* **speedup** — wall-clock of the fused call vs the loop on the paper's
  fig08 workload (randomized-excess), asserted ``>= SPEEDUP_FLOOR`` at
  ci/paper scale where the batch is ``B >= 64`` on the 32x32 torus.
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.engines import EngineConfig, ReplicaParams, make_engine
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

SIDE = {"tiny": 12, "ci": 32, "paper": 48}[SCALE]
ROUNDS = {"tiny": 40, "ci": 300, "paper": 600}[SCALE]
N_SEEDS = {"tiny": 2, "ci": 4, "paper": 4}[SCALE]
N_POINTS = {"tiny": 4, "ci": 16, "paper": 16}[SCALE]
RECORD_EVERY = 1
#: asserted floor: the fused sweep beats the per-point loop by this factor
#: at B = N_POINTS * N_SEEDS >= 64 (ci/paper scale; tiny only records).
#: Measured ~1.5x on the 1-core dev container (randomized-excess is
#: compute-bound, so the win is batch-width amortisation, not setup cost);
#: the floor leaves noise headroom.
SPEEDUP_FLOOR = 1.25


def _switch_points():
    """The sweep axis: the pure-SOS curve plus N_POINTS - 1 switch rounds."""
    lo, hi = max(ROUNDS // 5, 1), max(4 * ROUNDS // 5, 2)
    rounds = sorted({int(r) for r in np.linspace(lo, hi, N_POINTS - 1)})
    return [None] + rounds


def _base_config(rounding):
    beta = beta_opt(torus_lambda((SIDE, SIDE)))
    return EngineConfig(
        scheme="sos",
        beta=beta,
        rounding=rounding,
        rounds=ROUNDS,
        record_every=RECORD_EVERY,
        seed=0,
    )


def _loop_run(topo, base_load, points, rounding):
    """The old shape: one engine call per sweep point."""
    engine = make_engine("batched")
    loads = np.tile(base_load, (N_SEEDS, 1))
    results = []
    t0 = time.perf_counter()
    for switch in points:
        config = replace(
            _base_config(rounding),
            switch=("fixed", switch) if switch is not None else None,
        )
        results.extend(engine.run(topo, config, loads))
    return time.perf_counter() - t0, results


def _fused_run(topo, base_load, points, rounding, engine_name="batched",
               workers=None):
    """The new shape: the whole sweep as one engine call."""
    params = ReplicaParams(
        switch_rounds=[p for p in points for _ in range(N_SEEDS)]
    )
    keys = [s for _ in points for s in range(N_SEEDS)]
    config = replace(
        _base_config(rounding),
        replica_params=params,
        replica_keys=keys,
        workers=workers,
    )
    loads = np.tile(base_load, (len(points) * N_SEEDS, 1))
    engine = make_engine(engine_name)
    t0 = time.perf_counter()
    results = engine.run(topo, config, loads)
    return time.perf_counter() - t0, results


def _bit_identical(lhs, rhs):
    return all(
        np.array_equal(a.final_state.load, b.final_state.load)
        and np.array_equal(
            np.asarray(a.series("max_minus_avg")),
            np.asarray(b.series("max_minus_avg")),
        )
        for a, b in zip(lhs, rhs)
    )


def _run_sweep_throughput():
    topo = torus_2d(SIDE, SIDE)
    base_load = point_load(topo, 1000 * topo.n)
    points = _switch_points()
    batch = len(points) * N_SEEDS

    # Parity pass: deterministic rounding, fused == per-point loop == sharded.
    _, loop_det = _loop_run(topo, base_load, points, "nearest")
    _, fused_det = _fused_run(topo, base_load, points, "nearest")
    _, sharded_det = _fused_run(
        topo, base_load, points, "nearest", engine_name="sharded", workers=2
    )
    parity_loop = _bit_identical(fused_det, loop_det)
    parity_sharded = _bit_identical(fused_det, sharded_det)

    # Throughput pass: the paper's fig08 workload (randomized-excess).
    loop_seconds, _ = _loop_run(topo, base_load, points, "randomized-excess")
    fused_seconds, _ = _fused_run(
        topo, base_load, points, "randomized-excess"
    )
    speedup = loop_seconds / fused_seconds

    return {
        "n": topo.n,
        "rounds": ROUNDS,
        "n_points": len(points),
        "n_seeds": N_SEEDS,
        "n_replicas": batch,
        "engine_calls_fused": 1,
        "engine_calls_loop": len(points),
        "loop_seconds": loop_seconds,
        "fused_seconds": fused_seconds,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "parity_loop_bit_identical": bool(parity_loop),
        "parity_sharded_bit_identical": bool(parity_sharded),
        "asserted": bool(SCALE != "tiny" and batch >= 64),
    }


def test_sweep_throughput(benchmark, archive):
    s = run_once(benchmark, _run_sweep_throughput)
    archive(ExperimentRecord(name="sweeps", summary=s))
    print()
    print(
        format_table(
            ["shape", "engine calls", "seconds", "speedup"],
            [
                ["per-point loop", s["engine_calls_loop"],
                 f"{s['loop_seconds']:.2f}", "1.00x"],
                ["fused sweep", 1, f"{s['fused_seconds']:.2f}",
                 f"{s['speedup']:.2f}x"],
            ],
            title=(
                f"fig08-style switch sweep ({s['n']} nodes x {s['rounds']} "
                f"rounds, {s['n_points']} points x {s['n_seeds']} seeds, "
                f"B={s['n_replicas']})"
            ),
        )
    )
    # Parity is asserted unconditionally: folding a sweep into one call
    # must never change the per-replica results.
    assert s["parity_loop_bit_identical"], "fused sweep diverged from loop"
    assert s["parity_sharded_bit_identical"], "sharded sweep diverged"
    if s["asserted"]:
        assert s["speedup"] >= s["speedup_floor"], s["speedup"]
