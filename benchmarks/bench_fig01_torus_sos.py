"""Figure 1: SOS metrics on the torus, with the FOS curve as comparison.

Paper shape: SOS drives the maximum excess below ~10 tokens within the
exponential-decay horizon while FOS is nowhere close within the same
number of rounds ("a clear advantage of SOS over FOS w.r.t. the number of
steps required"); the SOS residual then plateaus at a small constant.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig01(benchmark, bench_scale, archive):
    record = run_once(
        benchmark, figures.fig01_torus_sos_vs_fos, scale=bench_scale
    )
    archive(record)

    sos_round = record.summary["sos_round_below_10"]
    fos_round = record.summary["fos_round_below_10"]
    assert sos_round is not None, "SOS must converge within the horizon"
    # FOS is far slower on the torus: either it never converged within the
    # horizon or it took several times longer.
    if fos_round is not None:
        assert fos_round > 2 * sos_round
    # The discrete residual plateau is a small constant (paper: ~10 tokens).
    assert record.summary["sos_plateau_max_minus_avg"] < 40.0
