"""Figure 15: combined 100x100 torus view — metrics plus eigen-coefficients.

Paper shape: the leading coefficient (the paper's -a_4) dominates from
~round 100 to ~700, after which no single mode leads; the FOS-switched run
ends below the pure SOS residual.
"""

import numpy as np

from repro.experiments import figures

from _helpers import run_once


def test_fig15(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig15_torus_combined, scale=bench_scale)
    archive(record)

    s = record.summary
    # A stable leading eigenvector exists for a long stretch.
    span = s["stable_leader_to_round"] - s["stable_leader_from_round"]
    assert span >= record.params["rounds"] // 20
    # Switching to FOS at 500 improves on pure SOS (or at least matches it).
    assert s["hybrid_final"] <= s["sos_final"] + 1.0
    # All three metric series were produced and decay.
    pot = np.asarray(record.series["potential_per_node"])
    assert pot[-1] < pot[0]
