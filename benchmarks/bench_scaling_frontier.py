"""Scaling frontier: the large-n fast path and tiled streaming engine.

The paper's headline results are asymptotic — the SOS gap over FOS only
shows at paper scale (n around 10^6) — so this bench tracks how far one
process gets as the graph grows:

* **rounds/sec across n** for the edge-wise batched identity path, the
  closed-form matmul tier (one CSR matmul per round against the folded
  diffusion matrix), and the closed-form spectral tier (per-Fourier-mode
  recurrence on the torus; per-round cost independent of the replica
  count);
* **the fast-path floor** — at n = 10^4 (identity rounding, B >= 16) the
  closed-form spectral kernel must beat the edge-wise batched path by
  >= 5x rounds/sec;
* **bounded-memory large-n runs** — at paper scale a 10^6-node torus runs
  the discrete randomized-excess process in tiled + streaming-summary mode
  and must stay under the documented peak-RSS budget
  (``TILED_RSS_BUDGET_MB``), and the closed-form tiers complete the same
  graph in seconds;
* **an unstructured-graph entry** (configuration-model random regular
  graph) where only the matmul tier applies.

Every run writes the machine-readable ``BENCH_scaling.json`` at the repo
root via ``_helpers.write_bench_json`` so later PRs inherit the perf
trajectory; CI uploads it as an artifact at tiny scale.
"""

import os
import resource
import time

import numpy as np

from repro import point_load, torus_2d, beta_opt, torus_lambda
from repro.engines import EngineConfig, make_engine
from repro.experiments import format_table
from repro.graphs import configuration_model
from repro.io import ExperimentRecord

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

#: Documented peak-RSS budget (MiB) of the paper-scale 10^6-node discrete
#: run in tiled + summary mode — the whole process, including the python/
#: numpy baseline, the topology, the CSR operators and the edge-space flow
#: state (which is inherent to discrete roundings at O(m) floats).
TILED_RSS_BUDGET_MB = 2048

#: Record sparsity of every measured run (a scaling study records summary
#: curves, not every round).
RECORD_EVERY = 50

#: Node-space record columns: dropping min_transient/round_traffic is what
#: makes the closed-form fast path eligible, and the edge-wise baseline
#: honours the same trimmed field set, so the comparison is like for like.
NODE_FIELDS = (
    "max_minus_avg", "min_minus_avg", "potential_per_node", "min_load",
    "total_load",
)

#: Torus sweep entries per scale: (side, replicas, rounds, measure_edge).
TORUS_SWEEP = {
    "tiny": [(32, 4, 100, True), (100, 4, 100, True)],
    "ci": [(32, 16, 300, True), (100, 16, 300, True), (316, 16, 100, True)],
    "paper": [
        (32, 16, 300, True),
        (100, 16, 300, True),
        (316, 16, 100, True),
        (1000, 4, 40, True),
    ],
}[SCALE]

#: The asserted fast-path floor applies at n = 10^4 (side 100), B >= 16.
ASSERT_SIDE = 100
FAST_PATH_FLOOR = 5.0

#: Paper scale additionally runs the 10^6-node tiled discrete process.
RUN_MILLION_TILED = SCALE == "paper"
MILLION_SIDE = 1000
MILLION_ROUNDS = 10

CM_NODES = {"tiny": 1024, "ci": 10_000, "paper": 10_000}[SCALE]
CM_DEGREE = 8
CM_ROUNDS = {"tiny": 100, "ci": 200, "paper": 200}[SCALE]


def _peak_rss_mb() -> float:
    """Lifetime peak RSS of this process in MiB (Linux: ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _rounds_per_sec(topo, beta, loads, rounds, fast_path, **options):
    config = EngineConfig(
        scheme="sos",
        beta=beta,
        rounding="identity",
        rounds=rounds,
        record_every=RECORD_EVERY,
        seed=0,
        fast_path=fast_path,
        record_fields=NODE_FIELDS,
        **options,
    )
    engine = make_engine("batched")
    t0 = time.perf_counter()
    results = engine.run(topo, config, loads)
    elapsed = time.perf_counter() - t0
    assert len(results) == loads.shape[0]
    total = loads[0].sum()
    final = results[0].final_state.load.sum()
    assert abs(final - total) <= 1e-6 * total
    return rounds / elapsed


def _measure_torus(side, n_replicas, rounds, measure_edge):
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    loads = np.tile(point_load(topo, 1000 * topo.n), (n_replicas, 1))
    entry = {
        "graph": f"torus-{side}x{side}",
        "n": topo.n,
        "m": topo.m_edges,
        "replicas": n_replicas,
        "rounds": rounds,
        "record_every": RECORD_EVERY,
    }
    if measure_edge:
        entry["edgewise_rounds_per_sec"] = _rounds_per_sec(
            topo, beta, loads, rounds, "never"
        )
    entry["matmul_rounds_per_sec"] = _rounds_per_sec(
        topo, beta, loads, rounds, "matmul"
    )
    entry["spectral_rounds_per_sec"] = _rounds_per_sec(
        topo, beta, loads, rounds, "spectral"
    )
    if measure_edge:
        edge = entry["edgewise_rounds_per_sec"]
        entry["matmul_speedup"] = entry["matmul_rounds_per_sec"] / edge
        entry["spectral_speedup"] = entry["spectral_rounds_per_sec"] / edge
    entry["peak_rss_mb"] = _peak_rss_mb()
    return entry


def _measure_cm(n, degree, rounds):
    topo = configuration_model(n, degree, rng=np.random.default_rng(0))
    from repro import second_largest_eigenvalue

    lam = second_largest_eigenvalue(topo, method="sparse")
    beta = beta_opt(min(lam, 0.999999))
    loads = np.tile(point_load(topo, 1000 * topo.n), (8, 1))
    entry = {
        "graph": f"cm-{n}-d{degree}",
        "n": topo.n,
        "m": topo.m_edges,
        "replicas": 8,
        "rounds": rounds,
        "record_every": RECORD_EVERY,
        "edgewise_rounds_per_sec": _rounds_per_sec(
            topo, beta, loads, rounds, "never"
        ),
        "matmul_rounds_per_sec": _rounds_per_sec(
            topo, beta, loads, rounds, "matmul"
        ),
    }
    entry["matmul_speedup"] = (
        entry["matmul_rounds_per_sec"] / entry["edgewise_rounds_per_sec"]
    )
    return entry


def _measure_million_tiled():
    """The 10^6-node discrete run: tiled kernels + streaming summaries.

    Measures *every* discrete rounding (``rounds_per_sec_by_rounding``),
    so a kernel-tier speedup is attributable per rounding; the headline
    ``rounds_per_sec`` stays the randomized-excess rate — the paper's own
    rounding and the slowest numpy kernel.
    """
    from repro.kernels import DISCRETE_ROUNDINGS

    topo = torus_2d(MILLION_SIDE, MILLION_SIDE)
    beta = beta_opt(torus_lambda((MILLION_SIDE, MILLION_SIDE)))
    load = point_load(topo, 100 * topo.n)
    engine = make_engine("batched")
    by_rounding = {}
    entry = None
    for rounding in DISCRETE_ROUNDINGS:
        config = EngineConfig(
            scheme="sos",
            beta=beta,
            rounding=rounding,
            rounds=MILLION_ROUNDS,
            record_every=1,
            seed=0,
            tile_size="auto",
            memory_budget_mb=256.0,
            record_mode="summary",
        )
        t0 = time.perf_counter()
        results = engine.run(topo, config, load)
        elapsed = time.perf_counter() - t0
        by_rounding[rounding] = MILLION_ROUNDS / elapsed
        if rounding == "randomized-excess":
            summary = results[0].table.summary()
            total = load.sum()
            assert abs(results[0].final_state.load.sum() - total) <= 1e-6 * total
            entry = {
                "graph": f"torus-{MILLION_SIDE}x{MILLION_SIDE}-discrete-tiled",
                "n": topo.n,
                "m": topo.m_edges,
                "replicas": 1,
                "rounds": MILLION_ROUNDS,
                "rounding": "randomized-excess",
                "tile_size": "auto(256MiB)",
                "record_mode": "summary",
                "seconds": elapsed,
                "rounds_per_sec": MILLION_ROUNDS / elapsed,
                "final_max_minus_avg": summary["max_minus_avg_last"],
                "peak_rss_mb": _peak_rss_mb(),
                "rss_budget_mb": TILED_RSS_BUDGET_MB,
            }
    entry["rounds_per_sec_by_rounding"] = by_rounding
    return entry


def _run_frontier():
    summary = {
        "scale": SCALE,
        "record_every": RECORD_EVERY,
        "record_fields": list(NODE_FIELDS),
        "fast_path_floor": FAST_PATH_FLOOR,
        "entries": [],
    }
    for side, n_replicas, rounds, measure_edge in TORUS_SWEEP:
        summary["entries"].append(
            _measure_torus(side, n_replicas, rounds, measure_edge)
        )
    summary["entries"].append(_measure_cm(CM_NODES, CM_DEGREE, CM_ROUNDS))
    if RUN_MILLION_TILED:
        summary["entries"].append(_measure_million_tiled())
    for entry in summary["entries"]:
        if entry["n"] == ASSERT_SIDE * ASSERT_SIDE and "spectral_speedup" in entry:
            summary["asserted_spectral_speedup"] = entry["spectral_speedup"]
    summary["peak_rss_mb"] = _peak_rss_mb()
    return summary


def test_scaling_frontier(benchmark, archive):
    s = run_once(benchmark, _run_frontier)
    archive(ExperimentRecord(name="scaling", summary=s))

    print()
    rows = []
    for e in s["entries"]:
        rows.append(
            [
                e["graph"],
                e["n"],
                e["replicas"],
                f"{e['edgewise_rounds_per_sec']:.0f}"
                if "edgewise_rounds_per_sec" in e
                else f"{e.get('rounds_per_sec', float('nan')):.1f} (tiled)",
                f"{e.get('matmul_rounds_per_sec', float('nan')):.0f}",
                f"{e.get('spectral_rounds_per_sec', float('nan')):.0f}",
                f"{e.get('spectral_speedup', e.get('matmul_speedup', float('nan'))):.1f}x",
                f"{e.get('peak_rss_mb', float('nan')):.0f}",
            ]
        )
    print(
        format_table(
            ["graph", "n", "B", "edge r/s", "matmul r/s", "spectral r/s",
             "best speedup", "rss MB"],
            rows,
            title=(
                f"scaling frontier (identity rounding, record_every="
                f"{RECORD_EVERY}, node-space record fields)"
            ),
        )
    )

    if SCALE != "tiny":
        # Acceptance: the closed-form fast path sustains >= 5x rounds/sec
        # over the edge-wise batched path at n = 10^4, B >= 16.
        assert s["asserted_spectral_speedup"] >= FAST_PATH_FLOOR, s[
            "asserted_spectral_speedup"
        ]
    if RUN_MILLION_TILED:
        tiled = s["entries"][-1]
        assert tiled["peak_rss_mb"] <= TILED_RSS_BUDGET_MB, tiled
