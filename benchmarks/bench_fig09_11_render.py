"""Figures 9-11: raster renders of the torus load (wavefronts, FOS smoothing).

Paper shape: adaptive-shading snapshots show circular wavefronts spreading
from the loaded corner; in threshold shading the picture gets *whiter* after
switching to FOS (every node ends within ~10 tokens of optimal, versus the
noisy SOS frame).
"""

import os

from repro.experiments import figures

from _helpers import run_once

OUT = os.path.join(os.path.dirname(__file__), "out", "frames")


def test_fig09_11(benchmark, bench_scale, archive):
    record = run_once(
        benchmark, figures.fig09_11_renders, scale=bench_scale, directory=OUT
    )
    archive(record)

    assert record.summary["frames_written"] >= 5
    # FOS smooths the residual noise: at least as many optimal (white)
    # pixels after the switch as before.
    assert (
        record.summary["white_fraction_after_switch"]
        >= record.summary["white_fraction_before_switch"] - 0.02
    )
    # Files exist and are valid PGMs.
    pgms = [f for f in os.listdir(OUT) if f.endswith(".pgm")]
    assert len(pgms) >= 5
    with open(os.path.join(OUT, pgms[0]), "rb") as handle:
        assert handle.read(2) == b"P5"
