"""Engine comparison: vectorised matrix engine vs message-passing substrate.

Both implement the identical protocol (the equivalence tests prove trace
equality); this bench quantifies the abstraction cost of the per-node
message-passing implementation and re-checks agreement on the fly.
"""

import time

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    point_load,
    torus_2d,
)
from repro.experiments import format_table
from repro.io import ExperimentRecord
from repro.network import SyncNetwork

from _helpers import run_once

SIDE = 16
ROUNDS = 60


def _run_both():
    topo = torus_2d(SIDE, SIDE)
    load = point_load(topo, 1000 * topo.n)

    t0 = time.perf_counter()
    proc = LoadBalancingProcess(
        SecondOrderScheme(topo, beta=1.7), rounding="nearest"
    )
    state = proc.run(load, ROUNDS)
    t_matrix = time.perf_counter() - t0

    t0 = time.perf_counter()
    net = SyncNetwork(topo, load, scheme="sos", beta=1.7, rounding="nearest")
    net.run(ROUNDS)
    t_network = time.perf_counter() - t0

    agree = bool(np.array_equal(net.loads(), state.load))
    return {
        "matrix_seconds": t_matrix,
        "message_passing_seconds": t_network,
        "slowdown": t_network / max(t_matrix, 1e-12),
        "traces_agree": agree,
        "n": topo.n,
        "rounds": ROUNDS,
    }


def test_engines(benchmark, archive):
    s = run_once(benchmark, _run_both)
    archive(ExperimentRecord(name="engines", summary=s))

    print()
    print(
        format_table(
            ["engine", "seconds"],
            [
                ["matrix (vectorised)", s["matrix_seconds"]],
                ["message passing", s["message_passing_seconds"]],
            ],
            title=f"engine comparison ({s['n']} nodes x {s['rounds']} rounds, "
                  f"slowdown {s['slowdown']:.0f}x)",
        )
    )
    assert s["traces_agree"]
    assert s["matrix_seconds"] < s["message_passing_seconds"]
