"""Engine comparison and batched-replica ensemble throughput.

Three things are measured and archived:

* **parity** — the reference (matrix), batched, and message-passing engines
  produce identical traces for a deterministic rounding, and the vectorised
  engines quantify the abstraction cost of the per-node implementation;
* **replicas/sec** — ensemble throughput of the batched engine for
  B in {1, 16, 128} replicas, in float64 (bit-exact mode) and float32 (the
  ensemble-throughput mode), against sequential ``Simulator.run`` calls;
* **the headline speedup** — a B=128 ensemble on the 32x32 torus must beat
  128 sequential ``Simulator.run`` calls by >= 10x (float32 ensemble mode,
  deterministic nearest rounding, sparse recording).  The float64 numbers
  are reported alongside so the precision trade-off stays visible.

The sequential baselines for the asserted configuration are measured in
full; the slower randomized-rounding baselines are measured over
min(B, 16) replicas and scaled linearly (per-replica cost is constant),
flagged as such in the archived record.
"""

import os
import time

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.engines import EngineConfig, make_engine
from repro.experiments import format_table
from repro.io import ExperimentRecord
from repro.network import SyncNetwork

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

PARITY_SIDE = {"tiny": 8, "ci": 16, "paper": 16}[SCALE]
PARITY_ROUNDS = {"tiny": 20, "ci": 60, "paper": 60}[SCALE]

ENSEMBLE_SIDE = {"tiny": 12, "ci": 32, "paper": 32}[SCALE]
ENSEMBLE_ROUNDS = {"tiny": 40, "ci": 300, "paper": 600}[SCALE]
BATCH_SIZES = {"tiny": (1, 4, 16), "ci": (1, 16, 128), "paper": (1, 16, 128)}[SCALE]
RECORD_EVERY = 10
#: max replicas actually run for the slow sequential baselines; beyond this
#: the baseline is extrapolated linearly (and marked in the record).
SEQ_MEASURE_CAP = 16


def _sequential_seconds(topo, beta, rounding, rounds, n_replicas):
    """Wall time of ``n_replicas`` sequential Simulator.run calls.

    Returns ``(seconds, measured_replicas)`` — replicas beyond
    ``SEQ_MEASURE_CAP`` are extrapolated from the measured prefix, except
    for the cheap deterministic roundings which are measured in full.
    """
    measure = n_replicas if rounding in ("nearest", "identity", "floor") else min(
        n_replicas, SEQ_MEASURE_CAP
    )
    load = point_load(topo, 1000 * topo.n)
    t0 = time.perf_counter()
    for b in range(measure):
        process = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding=rounding,
            rng=np.random.default_rng(b),
        )
        Simulator(process, record_every=RECORD_EVERY).run(load, rounds)
    elapsed = time.perf_counter() - t0
    return elapsed * (n_replicas / measure), measure


def _batched_seconds(topo, beta, rounding, rounds, n_replicas, precision):
    loads = np.tile(point_load(topo, 1000 * topo.n), (n_replicas, 1))
    config = EngineConfig(
        scheme="sos",
        beta=beta,
        rounding=rounding,
        rounds=rounds,
        record_every=RECORD_EVERY,
        seed=0,
        precision=precision,
    )
    engine = make_engine("batched")
    t0 = time.perf_counter()
    results = engine.run(topo, config, loads)
    elapsed = time.perf_counter() - t0
    assert len(results) == n_replicas
    # ensemble sanity: conservation holds in every replica
    total = 1000.0 * topo.n
    for result in results:
        assert abs(result.final_state.load.sum() - total) <= 1e-4 * total
    return elapsed


# ----------------------------------------------------------------------
def _run_parity():
    topo = torus_2d(PARITY_SIDE, PARITY_SIDE)
    load = point_load(topo, 1000 * topo.n)
    config = EngineConfig(
        scheme="sos", beta=1.7, rounding="nearest", rounds=PARITY_ROUNDS, seed=0
    )

    t0 = time.perf_counter()
    proc = LoadBalancingProcess(SecondOrderScheme(topo, beta=1.7), rounding="nearest")
    state = proc.run(load, PARITY_ROUNDS)
    t_matrix = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = make_engine("batched").run(topo, config, load)[0]
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    net = SyncNetwork(topo, load, scheme="sos", beta=1.7, rounding="nearest")
    net.run(PARITY_ROUNDS)
    t_network = time.perf_counter() - t0

    return {
        "matrix_seconds": t_matrix,
        "batched_seconds": t_batched,
        "message_passing_seconds": t_network,
        "message_passing_slowdown": t_network / max(t_matrix, 1e-12),
        "traces_agree": bool(
            np.array_equal(net.loads(), state.load)
            and np.array_equal(batched.final_state.load, state.load)
        ),
        "n": topo.n,
        "rounds": PARITY_ROUNDS,
    }


def test_engine_parity(benchmark, archive):
    s = run_once(benchmark, _run_parity)
    archive(ExperimentRecord(name="engines", summary=s))
    print()
    print(
        format_table(
            ["engine", "seconds"],
            [
                ["matrix (reference)", s["matrix_seconds"]],
                ["batched (B=1)", s["batched_seconds"]],
                ["message passing", s["message_passing_seconds"]],
            ],
            title=f"engine parity ({s['n']} nodes x {s['rounds']} rounds, "
            f"message passing {s['message_passing_slowdown']:.0f}x slower)",
        )
    )
    assert s["traces_agree"]
    assert s["matrix_seconds"] < s["message_passing_seconds"]


# ----------------------------------------------------------------------
def _run_throughput():
    topo = torus_2d(ENSEMBLE_SIDE, ENSEMBLE_SIDE)
    beta = beta_opt(torus_lambda((ENSEMBLE_SIDE, ENSEMBLE_SIDE)))
    rounds = ENSEMBLE_ROUNDS
    summary = {
        "n": topo.n,
        "rounds": rounds,
        "record_every": RECORD_EVERY,
        "beta": beta,
        "batch_sizes": list(BATCH_SIZES),
        "seq_measure_cap": SEQ_MEASURE_CAP,
    }
    rows = []
    seq_cache = {}  # the sequential baseline is float64-only: one per rounding
    for rounding, precision in (
        ("nearest", "float32"),
        ("nearest", "float64"),
        ("randomized-excess", "float64"),
    ):
        if rounding not in seq_cache:
            seq_cache[rounding] = _sequential_seconds(
                topo, beta, rounding, rounds, max(BATCH_SIZES)
            )
        seq_seconds, seq_measured = seq_cache[rounding]
        for n_replicas in BATCH_SIZES:
            bat_seconds = _batched_seconds(
                topo, beta, rounding, rounds, n_replicas, precision
            )
            seq_b = seq_seconds * n_replicas / max(BATCH_SIZES)
            key = f"{rounding}_{precision}_B{n_replicas}"
            summary[f"{key}_replicas_per_sec"] = n_replicas / bat_seconds
            summary[f"{key}_speedup_vs_sequential"] = seq_b / bat_seconds
            rows.append(
                [
                    rounding,
                    precision,
                    n_replicas,
                    f"{n_replicas / bat_seconds:.1f}",
                    f"{seq_b / bat_seconds:.1f}x",
                    "full" if seq_measured == max(BATCH_SIZES) else
                    f"extrapolated from {seq_measured}",
                ]
            )
    summary["headline_speedup"] = summary[
        f"nearest_float32_B{max(BATCH_SIZES)}_speedup_vs_sequential"
    ]
    summary["float64_speedup"] = summary[
        f"nearest_float64_B{max(BATCH_SIZES)}_speedup_vs_sequential"
    ]
    summary["rows"] = rows
    return summary


def test_batched_replica_throughput(benchmark, archive):
    s = run_once(benchmark, _run_throughput)
    rows = s.pop("rows")
    archive(ExperimentRecord(name="engine_throughput", summary=s))
    print()
    print(
        format_table(
            ["rounding", "precision", "B", "replicas/sec", "speedup", "baseline"],
            rows,
            title=(
                f"batched ensemble throughput ({s['n']} nodes x {s['rounds']} "
                f"rounds, record_every={s['record_every']})"
            ),
        )
    )
    if SCALE != "tiny":
        # Acceptance: B=128 on the 32x32 torus beats 128 sequential
        # Simulator.run calls by >= 10x (float32 ensemble mode).
        assert s["headline_speedup"] >= 10.0, s["headline_speedup"]
        # and the bit-exact float64 mode must still win clearly
        assert s["float64_speedup"] >= 2.0, s["float64_speedup"]
