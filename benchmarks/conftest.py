"""Shared configuration for the benchmark harness.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``tiny`` / ``ci`` (default) /
``paper`` to choose the instance sizes; ``paper`` reproduces the original
sizes (the big torus/hypercube runs take hours — see DESIGN.md).

Every bench saves its :class:`~repro.io.ExperimentRecord` under
``benchmarks/out/`` and prints the reproduced rows with ``-s``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import format_record
from repro.io import save_record

from _helpers import write_bench_json

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")
OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture
def bench_scale() -> str:
    """The instance scale all benches run at."""
    return SCALE


@pytest.fixture
def archive():
    """Persist a record to benchmarks/out/, print it, and write the
    machine-readable ``BENCH_<name>.json`` at the repo root (params +
    summary only — the compact perf trajectory every bench shares)."""

    def _archive(record):
        save_record(record, OUT_DIR)
        write_bench_json(
            record.name,
            {"scale": SCALE, "params": record.params, "summary": record.summary},
        )
        print()
        print(format_record(record))
        return record

    return _archive
