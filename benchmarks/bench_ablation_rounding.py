"""Ablation: rounding scheme choice (floor vs unbiased vs excess-token).

DESIGN.md design-choice bench.  Expected ordering on the torus:

* ``floor`` is biased — its residual plateau is the worst,
* ``unbiased-edge`` and the paper's ``randomized-excess`` reach similar
  small plateaus (both unbiased), but the excess scheme caps each node's
  overshoot by its excess budget,
* the idealized run lower-bounds everyone.
"""

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import remaining_imbalance
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once

ROUNDINGS = ["identity", "floor", "nearest", "unbiased-edge", "randomized-excess"]


def _ablation(side=48, rounds=1500):
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    load = point_load(topo, 1000 * topo.n)
    out = {}
    for key in ROUNDINGS:
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding=key,
            rng=np.random.default_rng(0),
        )
        result = Simulator(proc).run(load, rounds)
        stats = remaining_imbalance(result)
        out[key] = {
            "plateau_max_minus_avg": stats.mean,
            "final_max_minus_avg": result.records[-1].max_minus_avg,
            "min_transient": result.min_transient_overall,
        }
    return out


def test_ablation_rounding(benchmark, archive):
    results = run_once(benchmark, _ablation)
    archive(ExperimentRecord(name="ablation_rounding", summary=results))

    print()
    print(
        format_table(
            ["rounding", "plateau max-avg", "final max-avg", "min transient"],
            [
                [k, v["plateau_max_minus_avg"], v["final_max_minus_avg"],
                 v["min_transient"]]
                for k, v in results.items()
            ],
            title="Rounding ablation (SOS, 48x48 torus)",
        )
    )

    # Identity is the lower bound; floor is the worst discrete scheme.
    assert results["identity"]["plateau_max_minus_avg"] <= min(
        v["plateau_max_minus_avg"] for k, v in results.items() if k != "identity"
    ) + 1e-9
    assert (
        results["floor"]["plateau_max_minus_avg"]
        >= results["randomized-excess"]["plateau_max_minus_avg"] - 2.0
    )
    # Unbiased schemes land on small plateaus.
    assert results["randomized-excess"]["plateau_max_minus_avg"] < 40.0
    assert results["unbiased-edge"]["plateau_max_minus_avg"] < 40.0
