"""Convergence-time scaling laws: FOS ~ k^2 vs SOS ~ k on k x k tori.

The theory ([19], restated in Section II): FOS balances in
``O(log(Kn)/(1-lambda))`` rounds and SOS in ``O(log(Kn)/sqrt(1-lambda))``;
the torus gap is ``Theta(1/k^2)``, so the measured rounds-to-balance should
scale roughly quadratically in ``k`` for FOS and linearly for SOS — the
"almost quadratically faster" claim, measured.
"""

from repro.experiments import format_table
from repro.experiments.sweeps import fit_power_law, torus_size_sweep
from repro.io import ExperimentRecord

from _helpers import run_once

SIZES = [10, 14, 20, 28]


def _sweep_both():
    fos = torus_size_sweep(SIZES, kind="fos")
    sos = torus_size_sweep(SIZES, kind="sos")
    fos_exp, _ = fit_power_law(
        [p.size for p in fos], [p.rounds_to_balance for p in fos]
    )
    sos_exp, _ = fit_power_law(
        [p.size for p in sos], [p.rounds_to_balance for p in sos]
    )
    return {
        "fos": {str(p.size): p.rounds_to_balance for p in fos},
        "sos": {str(p.size): p.rounds_to_balance for p in sos},
        "fos_exponent": fos_exp,
        "sos_exponent": sos_exp,
    }


def test_scaling_laws(benchmark, archive):
    s = run_once(benchmark, _sweep_both)
    archive(ExperimentRecord(name="scaling_laws", summary=s))

    print()
    print(
        format_table(
            ["torus side k", "FOS rounds", "SOS rounds"],
            [[k, s["fos"][str(k)], s["sos"][str(k)]] for k in SIZES],
            title=(
                f"scaling: FOS exponent {s['fos_exponent']:.2f} (theory 2), "
                f"SOS exponent {s['sos_exponent']:.2f} (theory 1)"
            ),
        )
    )

    # FOS grows clearly super-linearly, SOS clearly sub-quadratically, and
    # the gap between the two exponents is near the predicted factor ~2.
    assert s["fos_exponent"] > 1.5
    assert s["sos_exponent"] < 1.6
    assert s["fos_exponent"] - s["sos_exponent"] > 0.5
