"""Compiled kernel tier vs the numpy tier on the discrete roundings.

The numpy tier pays for discrete roundings in full-plane passes: schedule,
round, token bookkeeping and apply each stream their own ``(m, B)``
intermediates, and randomized-excess adds python-level token dispatch.
The compiled tier (``EngineConfig.kernel``) fuses schedule + rounding +
load update into single passes — this bench measures what that buys, per
rounding, and proves it changes nothing:

* **mid scale** — torus 10^4 nodes, 8 replicas: numpy-vs-compiled
  rounds/sec for *every* discrete rounding.  The speedup floor is
  asserted on ``randomized-excess`` (the paper's rounding, where the
  numpy tier is weakest); the elementwise roundings are reported
  honestly — numpy is already a single vectorised expression there, so
  the compiled tier is roughly neutral on one core.
* **bit-identity** — for every discrete rounding, the compiled tier's
  final loads and ``max_minus_avg`` trajectories are bitwise equal to
  the numpy tier across dense, tiled and sharded execution.
* **paper scale** — the 10^6-node torus runs the randomized-excess
  process in tiled + streaming-summary mode on both tiers and the
  compiled tier must clear ``MILLION_EXCESS_FLOOR``.

Every run writes ``BENCH_compiled.json`` at the repo root via
``_helpers.write_bench_json``; CI uploads it as an artifact.  The bench
skips (never fails) when no compiled provider is importable — the
default CI leg proves exactly that fallback.
"""

import os
import resource
import time

import numpy as np
import pytest

from repro import point_load, random_load, torus_2d, beta_opt, torus_lambda
from repro.engines import EngineConfig, make_engine
from repro.experiments import format_table
from repro.io import ExperimentRecord
from repro.kernels import AUTO_PREFERENCE, DISCRETE_ROUNDINGS, warm_up_kernels

from _helpers import run_once

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")

#: Mid-scale measurement point: (torus side, replicas, rounds).  Rounds
#: are high enough that one-time prepare cost (graph/CSR setup, identical
#: for both tiers) does not dilute the per-round rate of the faster tier.
MID_POINT = {
    "tiny": (24, 8, 30),
    "ci": (100, 8, 200),
    "paper": (100, 8, 200),
}[SCALE]

#: Asserted speedup floor for randomized-excess at the mid-scale point
#: (SCALE != "tiny" only): the compiled tier must sustain >= 3x the numpy
#: tier's rounds/sec.
MID_EXCESS_FLOOR = 3.0

#: Paper scale additionally runs the 10^6-node tiled discrete point with a
#: token-rich replica stack.  The asserted floor depends on the machine:
#: with more than one core the OpenMP-parallel kernels must clear >= 5x,
#: while on a single core only the fusion win is available (the numpy tier
#: is equally memory-bound on plane passes, so the ceiling there is the
#: token machinery — ~2-3x measured, but shared-box memory bandwidth
#: swings the run-to-run ratio between ~1.8x and ~3x even with
#: interleaved repeats) and the floor drops to 1.5x: enough to separate
#: "the fusion win is real" from a regression without flaking on noisy
#: hardware.  The applied floor and the cpu count are both recorded in
#: the summary next to the measured speedup.
RUN_MILLION = SCALE == "paper"
MILLION_SIDE = 1000
MILLION_REPLICAS = 8
MILLION_ROUNDS = 30
MILLION_CPUS = os.cpu_count() or 1
MILLION_EXCESS_FLOOR = 5.0 if MILLION_CPUS > 1 else 1.5

#: Bit-identity checks run on a small torus so all three execution tiers
#: (dense, tiled, sharded) stay cheap; (side, replicas, rounds, tile).
PARITY_POINT = (24, 4, 40, 97)

#: Node-space record fields of the mid-scale runs (same trimmed set as the
#: scaling frontier, so rates are comparable across bench files).
NODE_FIELDS = (
    "max_minus_avg", "min_minus_avg", "potential_per_node", "min_load",
    "total_load",
)


def _peak_rss_mb() -> float:
    """Lifetime peak RSS of this process in MiB (Linux: ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _compiled_provider() -> str:
    """Best available compiled provider, or skip the whole bench."""
    available = warm_up_kernels()
    for name in AUTO_PREFERENCE:
        if available.get(name):
            return name
    pytest.skip("no compiled kernel provider available (numba or cffi)")


def _mixed_loads(topo, n_replicas):
    rng = np.random.default_rng(0)
    rows = [point_load(topo, 100 * topo.n)]
    rows += [random_load(topo, 200.0, rng=rng) for _ in range(n_replicas - 1)]
    return np.stack(rows)


def _run_timed(topo, config, loads, repeats=1):
    """Rounds/sec over ``repeats`` identical runs (best rate wins).

    The runs are deterministic given the config seed, so repeating only
    reduces scheduler/cache noise — it never changes the results, and the
    returned records are from the last run.
    """
    engine = make_engine("batched")
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = engine.run(topo, config, loads)
        elapsed = time.perf_counter() - t0
        best = max(best, config.rounds / elapsed)
    return best, results


def _measure_mid(provider: str):
    """Numpy-vs-compiled rounds/sec for every discrete rounding."""
    side, n_replicas, rounds = MID_POINT
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    loads = _mixed_loads(topo, n_replicas)
    entry = {
        "graph": f"torus-{side}x{side}",
        "n": topo.n,
        "m": topo.m_edges,
        "replicas": n_replicas,
        "rounds": rounds,
        "provider": provider,
        "rows": [],
    }
    for rounding in DISCRETE_ROUNDINGS:
        config = EngineConfig(
            scheme="sos", beta=beta, rounding=rounding, rounds=rounds,
            record_every=rounds, seed=0, record_fields=NODE_FIELDS,
        )
        repeats = 1 if SCALE == "tiny" else 2
        numpy_rps, ref = _run_timed(topo, config, loads, repeats=repeats)
        kern_rps, got = _run_timed(
            topo, EngineConfig(
                scheme="sos", beta=beta, rounding=rounding, rounds=rounds,
                record_every=rounds, seed=0, record_fields=NODE_FIELDS,
                kernel=provider,
            ), loads, repeats=repeats,
        )
        identical = all(
            np.array_equal(a.final_state.load, b.final_state.load)
            for a, b in zip(ref, got)
        )
        assert identical, f"compiled tier diverged at mid scale ({rounding})"
        entry["rows"].append({
            "rounding": rounding,
            "numpy_rounds_per_sec": numpy_rps,
            "compiled_rounds_per_sec": kern_rps,
            "speedup": kern_rps / numpy_rps,
            "identical": identical,
        })
    return entry


def _check_parity(provider: str):
    """Bitwise parity across dense/tiled/sharded for every rounding."""
    side, n_replicas, rounds, tile = PARITY_POINT
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    loads = _mixed_loads(topo, n_replicas)
    checked = []
    for rounding in DISCRETE_ROUNDINGS:
        config = EngineConfig(
            scheme="sos", beta=beta, rounding=rounding, rounds=rounds,
            record_every=5, seed=0,
        )
        ref = make_engine("batched").run(topo, config, loads)

        def _options(**kw):
            return EngineConfig(
                scheme="sos", beta=beta, rounding=rounding, rounds=rounds,
                record_every=5, seed=0, kernel=provider, **kw,
            )

        tiers = {
            "dense": make_engine("batched").run(topo, _options(), loads),
            "tiled": make_engine("batched").run(
                topo, _options(tile_size=tile), loads
            ),
            "sharded": make_engine("sharded").run(
                topo, _options(workers=2), loads
            ),
        }
        for tier, got in tiers.items():
            for a, b in zip(ref, got):
                assert np.array_equal(a.final_state.load, b.final_state.load), (
                    f"final loads diverged: {rounding} / {tier}"
                )
                assert [r.max_minus_avg for r in a.records] == [
                    r.max_minus_avg for r in b.records
                ], f"max_minus_avg diverged: {rounding} / {tier}"
        checked.append(rounding)
    return {
        "graph": f"torus-{side}x{side}",
        "replicas": n_replicas,
        "rounds": rounds,
        "tile_size": tile,
        "tiers": ["dense", "tiled", "sharded"],
        "roundings_verified": checked,
    }


def _measure_million(provider: str):
    """The 10^6-node randomized-excess point, tiled + summary, both tiers.

    Uses the mixed point/random replica stack: fractional random loads keep
    every round token-rich (~10^6 excess tokens/round), which is exactly
    the regime where the numpy tier's per-token machinery dominates.
    """
    topo = torus_2d(MILLION_SIDE, MILLION_SIDE)
    beta = beta_opt(torus_lambda((MILLION_SIDE, MILLION_SIDE)))
    loads = _mixed_loads(topo, MILLION_REPLICAS)
    totals = loads.sum(axis=1)

    def _config(kernel):
        return EngineConfig(
            scheme="sos", beta=beta, rounding="randomized-excess",
            rounds=MILLION_ROUNDS, record_every=MILLION_ROUNDS, seed=0,
            tile_size="auto", memory_budget_mb=32.0, record_mode="summary",
            kernel=kernel,
        )

    # Interleave the repeats (numpy, compiled, numpy, compiled) so each
    # pair shares the same memory-bandwidth regime of the host — on
    # shared boxes the available bandwidth drifts on minute timescales,
    # which would otherwise skew a back-to-back comparison either way.
    numpy_rps = kern_rps = 0.0
    for _ in range(2):
        rps, ref = _run_timed(topo, _config("numpy"), loads)
        numpy_rps = max(numpy_rps, rps)
        rps, got = _run_timed(topo, _config(provider), loads)
        kern_rps = max(kern_rps, rps)
    for a, b, total in zip(ref, got, totals):
        assert np.array_equal(a.final_state.load, b.final_state.load)
        final = b.final_state.load.sum()
        assert abs(final - total) <= 1e-6 * total
    return {
        "graph": f"torus-{MILLION_SIDE}x{MILLION_SIDE}-discrete-tiled",
        "n": topo.n,
        "m": topo.m_edges,
        "replicas": MILLION_REPLICAS,
        "rounds": MILLION_ROUNDS,
        "rounding": "randomized-excess",
        "tile_size": "auto(32MiB)",
        "record_mode": "summary",
        "provider": provider,
        "cpu_count": MILLION_CPUS,
        "floor_applied": MILLION_EXCESS_FLOOR,
        "numpy_rounds_per_sec": numpy_rps,
        "compiled_rounds_per_sec": kern_rps,
        "speedup": kern_rps / numpy_rps,
        "peak_rss_mb": _peak_rss_mb(),
    }


def _run_compiled():
    provider = _compiled_provider()
    summary = {
        "scale": SCALE,
        "provider": provider,
        "record_fields": list(NODE_FIELDS),
        "mid_excess_floor": MID_EXCESS_FLOOR,
        "million_excess_floor": MILLION_EXCESS_FLOOR,
        "parity": _check_parity(provider),
        "mid": _measure_mid(provider),
    }
    if RUN_MILLION:
        summary["million"] = _measure_million(provider)
    summary["peak_rss_mb"] = _peak_rss_mb()
    return summary


def test_compiled_kernels(benchmark, archive):
    s = run_once(benchmark, _run_compiled)
    archive(ExperimentRecord(name="compiled", summary=s))

    print()
    rows = []
    for r in s["mid"]["rows"]:
        rows.append([
            r["rounding"],
            f"{r['numpy_rounds_per_sec']:.0f}",
            f"{r['compiled_rounds_per_sec']:.0f}",
            f"{r['speedup']:.2f}x",
            "yes" if r["identical"] else "NO",
        ])
    if "million" in s:
        m = s["million"]
        rows.append([
            "excess @ 10^6 tiled",
            f"{m['numpy_rounds_per_sec']:.2f}",
            f"{m['compiled_rounds_per_sec']:.2f}",
            f"{m['speedup']:.2f}x",
            "yes",
        ])
    print(
        format_table(
            ["rounding", "numpy r/s", f"{s['provider']} r/s", "speedup",
             "bit-identical"],
            rows,
            title=(
                f"compiled kernel tier ({s['provider']}, "
                f"torus {s['mid']['graph']}, B={s['mid']['replicas']})"
            ),
        )
    )

    excess = next(
        r for r in s["mid"]["rows"] if r["rounding"] == "randomized-excess"
    )
    if SCALE != "tiny":
        # Acceptance: the compiled tier sustains >= 3x rounds/sec on the
        # paper's rounding at the mid-scale point.
        assert excess["speedup"] >= MID_EXCESS_FLOOR, excess
    if RUN_MILLION:
        assert s["million"]["speedup"] >= MILLION_EXCESS_FLOOR, s["million"]
