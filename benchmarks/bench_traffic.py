"""Communication volume: total load moved until balance, per scheme.

The paper argues diffusion schemes beat token-random-walk approaches on
load *traffic* (Section II-a, discussion of [13]).  This bench measures the
cumulative |flow| each scheme ships before reaching balance: SOS finishes in
far fewer rounds but pushes more per round (momentum), FOS trickles.  The
total-traffic ordering quantifies that trade-off.
"""

import numpy as np

from repro import (
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import convergence_round
from repro.experiments import format_table
from repro.io import ExperimentRecord

from _helpers import run_once


def _traffic(side=32, rounds=2500):
    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    load = point_load(topo, 1000 * topo.n)
    out = {}
    for name, scheme in [
        ("sos", SecondOrderScheme(topo, beta=beta_opt(lam))),
        ("fos", FirstOrderScheme(topo)),
    ]:
        proc = LoadBalancingProcess(
            scheme, rounding="randomized-excess", rng=np.random.default_rng(0)
        )
        result = Simulator(proc).run(load, rounds)
        balanced = convergence_round(result, threshold=10.0, sustained=3)
        horizon = balanced if balanced is not None else rounds
        traffic = result.series("round_traffic")
        rounds_axis = result.rounds
        until_balance = float(traffic[rounds_axis <= horizon].sum())
        out[name] = {
            "rounds_to_balance": balanced,
            "traffic_until_balance": until_balance,
            "traffic_per_round_at_balance": float(traffic[min(horizon, rounds)]),
        }
    return out


def test_traffic(benchmark, archive):
    results = run_once(benchmark, _traffic)
    archive(ExperimentRecord(name="traffic", summary=results))

    print()
    print(
        format_table(
            ["scheme", "rounds to balance", "total traffic until balance"],
            [
                [k, v["rounds_to_balance"], v["traffic_until_balance"]]
                for k, v in results.items()
            ],
            title="communication volume (32x32 torus, point load)",
        )
    )

    sos = results["sos"]
    fos = results["fos"]
    assert sos["rounds_to_balance"] is not None
    # SOS balances in far fewer rounds...
    if fos["rounds_to_balance"] is not None:
        assert sos["rounds_to_balance"] < fos["rounds_to_balance"]
    # ...and its total shipped volume is not dramatically larger — within
    # a small factor of FOS's (momentum costs per round, saves in rounds).
    assert (
        sos["traffic_until_balance"]
        < 5.0 * fos["traffic_until_balance"] + 1.0
    )
