"""Table I: graph classes and their beta_opt values.

Prints the reproduced table next to the paper's printed betas.  For the two
tori and the hypercube the *paper-scale* beta is computed exactly from the
closed-form spectra and must match the printed value to ~6 decimal digits;
for the random graph classes the built instance's beta is reported (the
printed value is instance-specific).
"""

import pytest

from repro.experiments import format_table, reproduce_table1
from repro.io import ExperimentRecord

from _helpers import run_once


def test_table1(benchmark, bench_scale, archive):
    rows = run_once(benchmark, reproduce_table1, scale=bench_scale, seed=0)

    print()
    print(
        format_table(
            ["graph", "paper size", "n(built)", "lambda", "beta(built)",
             "beta(paper-scale)", "beta(printed)"],
            [
                [r.key, r.paper_size, r.n, r.lam, r.beta,
                 r.analytic_paper_beta, r.paper_beta]
                for r in rows
            ],
            title=f"Table I (scale={bench_scale})",
        )
    )
    archive(
        ExperimentRecord(
            name="table1",
            params={"scale": bench_scale},
            summary={
                r.key: {
                    "lambda": r.lam,
                    "beta": r.beta,
                    "paper_beta": r.paper_beta,
                    "paper_scale_beta": r.analytic_paper_beta,
                }
                for r in rows
            },
        )
    )

    by_key = {r.key: r for r in rows}
    # Exact reproductions: closed forms at paper scale match the print-out.
    assert by_key["torus-1000"].beta_abs_error < 1e-6
    assert by_key["torus-100"].beta_abs_error < 1e-6
    assert by_key["hypercube"].beta_abs_error < 1e-8
    # Shape: expander-like CM graph has beta near 1; torus/RGG near 2.
    assert by_key["cm"].beta < 1.4
    assert by_key["rgg"].beta > 1.5
