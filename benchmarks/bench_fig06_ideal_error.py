"""Figure 6: idealized vs randomized-rounding SOS; float drift of the total.

Paper shape: the idealized double-precision scheme keeps improving to
(numerically) perfect balance, while the discrete scheme plateaus; the
absolute error of the idealized scheme's *total* load stays tiny (the paper
plots it around 1e-8..1e-4 for a 10^9 total) — quantisation noise only.
"""

from repro.experiments import figures

from _helpers import run_once


def test_fig06(benchmark, bench_scale, archive):
    record = run_once(benchmark, figures.fig06_ideal_error, scale=bench_scale)
    archive(record)

    total = record.params["n"] * 1000.0
    # Relative drift of the conserved total is at floating-point level.
    assert record.summary["max_total_drift"] < 1e-9 * total
    # Idealized run ends essentially balanced; discrete plateaus.
    assert record.summary["ideal_final"] < 1.0
    assert record.summary["discrete_plateau"] < 40.0
