"""Figure 7: impact of eigenvectors on the load (100x100 torus).

Paper shape: after an initial transient a single eigenvector's coefficient
leads for hundreds of rounds (the paper sees a_4 lead from ~round 100 to
~700); after that no single eigenvector dominates (the leader flickers).
"""

import numpy as np

from repro.experiments import figures

from _helpers import run_once


def test_fig07(benchmark, bench_scale, archive):
    record = run_once(
        benchmark, figures.fig07_eigencoefficients, scale=bench_scale
    )
    archive(record)

    span = record.summary["stable_leader_span_rounds"]
    total = record.params["rounds"]
    # One mode leads for a substantial contiguous stretch of the run.
    assert span >= max(10, total // 20)
    # The leading coefficient decays over the run (log-scale drop).
    series = np.asarray(record.series["leading_coefficient"])
    assert series[-1] < series[1] / 10.0
