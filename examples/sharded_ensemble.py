#!/usr/bin/env python
"""Sharded ensemble: one seed-averaged sweep across worker processes.

The batched engine advances a whole replica ensemble per vectorised numpy
step but is bound to one core; the ``sharded`` engine splits the batch
into contiguous column shards and runs one batched engine per worker
*process*, merging the per-shard record batches into results that are
bit-identical to the single-process batched run — so the speedup is free
of any statistical caveat.  This example runs the same 32-replica
ensemble on both engines, checks the traces match bit for bit, and
reports the wall-clock ratio.

Run:  python examples/sharded_ensemble.py
"""

import time
from dataclasses import replace

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.engines import EngineConfig, make_engine
from repro.experiments import replica_ensemble


def main() -> None:
    side = 24
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    n_replicas = 32

    config = EngineConfig(
        scheme="sos",
        beta=beta,
        rounding="randomized-excess",
        rounds=200,
        record_every=10,
        seed=0,
    )
    loads = np.tile(point_load(topo, 1000 * topo.n), (n_replicas, 1))

    t0 = time.perf_counter()
    batched = make_engine("batched").run(topo, config, loads)
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = make_engine("sharded").run(
        topo, replace(config, workers="auto"), loads
    )
    t_sharded = time.perf_counter() - t0

    # The merge contract: bit-identical traces, not just close ones.
    for a, b in zip(batched, sharded):
        np.testing.assert_array_equal(a.final_state.load, b.final_state.load)
        np.testing.assert_array_equal(
            a.series("max_minus_avg"), b.series("max_minus_avg")
        )
    print(f"{n_replicas} replicas, {config.rounds} rounds on {topo.name}")
    print(f"batched (1 process): {t_batched:.2f}s")
    print(f"sharded (auto workers): {t_sharded:.2f}s  "
          f"({t_batched / t_sharded:.2f}x, bit-identical traces)")

    # The experiment layer picks the backend by name, so a whole
    # seed-averaged sweep shards the same way:
    ensemble = replica_ensemble(
        topo,
        replace(config, workers="auto"),
        n_replicas=n_replicas,
        engine="sharded",
    )
    print(f"ensemble max_minus_avg_mean = "
          f"{ensemble.stats['max_minus_avg_mean']:.2f}")


if __name__ == "__main__":
    main()
