#!/usr/bin/env python
"""Negative load under SOS — Section V of the paper, measured.

SOS keeps momentum: a node may be asked to ship more tokens than it holds
(its *transient* load goes negative).  This example measures the most
negative transient for a point-load start, compares it with the explicit
Observation 5 / Theorem 10 / Theorem 11 bounds, and then verifies that
starting every node with the paper's sufficient minimum load prevents
negative load entirely.

Run:  python examples/negative_load_study.py
"""

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    initial_delta,
    minimum_safe_initial_load,
    observation5_bound,
    point_load,
    theorem10_bound,
    theorem11_bound,
    torus_2d,
    torus_lambda,
    uniform_load,
)


def simulate(topo, beta, load, rounds, rounding, seed=0):
    process = LoadBalancingProcess(
        SecondOrderScheme(topo, beta=beta),
        rounding=rounding,
        rng=np.random.default_rng(seed),
    )
    return Simulator(process).run(load, rounds)


def main() -> None:
    side = 24
    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    beta = beta_opt(lam)
    d = topo.max_degree

    # Scenario 1: everything on one node (the paper's default start).
    load = point_load(topo, 1000 * topo.n)
    delta0 = initial_delta(load)
    print(f"torus {side}x{side}: lambda={lam:.6f}, beta={beta:.6f}, "
          f"Delta(0)={delta0:.0f}")

    cont = simulate(topo, beta, load, 600, "identity")
    disc = simulate(topo, beta, load, 600, "randomized-excess")
    print("\npoint-load start (negative load expected):")
    print(f"  continuous SOS min transient: {cont.min_transient_overall:12.1f}")
    print(f"    Observation 5 bound (end of round): {observation5_bound(topo.n, delta0):12.1f}")
    print(f"    Theorem 10 bound (transient):       {theorem10_bound(topo.n, delta0, lam):12.1f}")
    print(f"  discrete SOS min transient:   {disc.min_transient_overall:12.1f}")
    print(f"    Theorem 11 bound (transient):       {theorem11_bound(topo.n, delta0, lam, d):12.1f}")

    # Scenario 2: small perturbation on top of the sufficient minimum load.
    bump = 50.0
    base_load = uniform_load(topo, 0.0)
    base_load[0] += bump
    base_load[1] -= bump
    delta0_small = initial_delta(base_load + 1.0)  # Delta unaffected by shift
    needed = minimum_safe_initial_load(topo.n, delta0_small, lam, max_degree=d)
    safe = uniform_load(topo, float(np.ceil(needed)))
    safe[0] += bump
    safe[1] -= bump
    print(f"\nsafe start: minimum load {np.ceil(needed):.0f} "
          f"(sufficient per Theorem 11 for Delta(0)={delta0_small:.0f})")
    result = simulate(topo, beta, safe, 600, "randomized-excess")
    print(f"  discrete SOS min transient: {result.min_transient_overall:.1f} "
          f"(never negative: {result.min_transient_overall >= 0.0})")


if __name__ == "__main__":
    main()
