#!/usr/bin/env python
"""Quickstart: balance a point load on a torus with discrete SOS.

This is the paper's core experiment in ~30 lines: put ``1000 * n`` tokens on
one node of a two-dimensional torus, run the randomized-rounding second
order diffusion scheme, and watch the imbalance collapse.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.viz import sparkline


def main() -> None:
    side = 32
    topo = torus_2d(side, side)

    # The optimal SOS parameter comes from the spectral gap (Section II-b).
    lam = torus_lambda((side, side))
    beta = beta_opt(lam)
    print(f"torus {side}x{side}: lambda = {lam:.6f}, beta_opt = {beta:.6f}")

    process = LoadBalancingProcess(
        SecondOrderScheme(topo, beta=beta),
        rounding="randomized-excess",  # the paper's Section III-B scheme
        rng=np.random.default_rng(0),
    )
    simulator = Simulator(process)
    result = simulator.run(point_load(topo, 1000 * topo.n), rounds=400)

    final = result.records[-1]
    print(f"after {final.round_index} rounds:")
    print(f"  max load above average : {final.max_minus_avg:.0f} tokens")
    print(f"  max local difference   : {final.max_local_diff:.0f} tokens")
    print(f"  total load (conserved) : {final.total_load:.0f}")
    print("convergence (max - avg, log scale):")
    print("  " + sparkline(result.series("max_minus_avg"), log=True))


if __name__ == "__main__":
    main()
