#!/usr/bin/env python
"""The paper's hybrid strategy: run SOS fast, then switch to FOS.

Section VI-A: discrete SOS plateaus at a residual imbalance of ~10 tokens;
synchronously switching every node to FOS afterwards drops the maximum local
difference to ~4 and the maximum excess to ~7.  This example compares three
switch policies:

* never switch (pure SOS),
* a fixed switch round (what the paper simulates),
* the distributed-friendly local-difference trigger the paper recommends
  ("the maximum local load difference seems to be a good indicator").

Run:  python examples/hybrid_switching.py
"""

import numpy as np

from repro import (
    FixedRoundSwitch,
    LoadBalancingProcess,
    LocalDifferenceSwitch,
    NeverSwitch,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.viz import sparkline


def main() -> None:
    side, rounds = 48, 2200
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    load = point_load(topo, 1000 * topo.n)

    policies = [
        ("pure SOS", NeverSwitch()),
        ("fixed switch @ 1200", FixedRoundSwitch(1200)),
        ("local-diff <= 10 trigger", LocalDifferenceSwitch(threshold=10.0)),
    ]

    print(f"torus {side}x{side}, {rounds} rounds, avg load 1000\n")
    for name, policy in policies:
        process = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        result = Simulator(process, switch_policy=policy).run(load, rounds)
        tail = result.series("max_minus_avg")[-100:]
        tail_local = result.series("max_local_diff")[-100:]
        switched = (
            f"switched at {result.switched_at}"
            if result.switched_at is not None
            else "never switched"
        )
        print(f"{name:28s} {switched}")
        print(f"  final max-avg ~ {tail.mean():5.1f}   "
              f"final local-diff ~ {tail_local.mean():5.1f}")
        print("  " + sparkline(result.series("max_minus_avg"), log=True))
        print()


if __name__ == "__main__":
    main()
