#!/usr/bin/env python
"""Dynamic load balancing: work arrives while the balancer runs.

The paper's motivation (finite element simulations) generates work
continuously; this example runs discrete SOS against three online arrival
patterns — steady Poisson arrivals with matching departures, periodic
bursts, and fixed hotspots — and shows the imbalance stays bounded at a
small steady-state level in all three.

Run:  python examples/dynamic_workload.py
"""

import numpy as np

from repro import (
    BurstArrivals,
    DynamicSimulator,
    HotspotArrivals,
    LoadBalancingProcess,
    PoissonArrivals,
    SecondOrderScheme,
    beta_opt,
    torus_2d,
    torus_lambda,
    uniform_load,
)
from repro.viz import sparkline


def main() -> None:
    side, rounds = 24, 800
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    base = uniform_load(topo, 100)

    scenarios = [
        ("steady churn (Poisson 5/node in, 5/node out)",
         PoissonArrivals(rate=5.0, departure_rate=5.0)),
        ("bursts (20k tokens on a random node / 150 rounds)",
         BurstArrivals(burst=20_000, period=150)),
        ("hotspots (3 fixed nodes, +50 tokens each per round)",
         HotspotArrivals(nodes=[0, topo.n // 2, topo.n - 1], rate=50)),
    ]

    print(f"torus {side}x{side}, {rounds} rounds, base load 100/node\n")
    for name, model in scenarios:
        process = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        sim = DynamicSimulator(process, model, rng=np.random.default_rng(1))
        result = sim.run(base, rounds)
        print(name)
        print(f"  final total load       : {result.final_state.total_load:,.0f}")
        print(f"  steady-state imbalance : "
              f"{result.steady_state_imbalance():.1f} tokens above average")
        print("  max-avg over time (log): "
              + sparkline(result.series("max_minus_avg"), log=True))
        print()


if __name__ == "__main__":
    main()
