#!/usr/bin/env python
"""Render the torus load as images — the paper's Figures 9-11 and video.

Writes PGM frames of the diffusion wavefronts spreading from the loaded
corner of a torus (adaptive shading), plus before/after-switch threshold
renders showing how FOS smooths the SOS rounding noise.  Also prints small
ASCII previews so the wavefronts are visible without an image viewer.

Run:  python examples/render_wavefronts.py [outdir]
"""

import os
import sys

import numpy as np

from repro import (
    FixedRoundSwitch,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.viz import ascii_heatmap, load_to_grayscale, write_pgm


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "wavefront-frames"
    side = 64
    topo = torus_2d(side, side)
    beta = beta_opt(torus_lambda((side, side)))
    load = point_load(topo, 1000 * topo.n)

    process = LoadBalancingProcess(
        SecondOrderScheme(topo, beta=beta),
        rounding="randomized-excess",
        rng=np.random.default_rng(0),
    )
    switch_round = 700
    result = Simulator(
        process, switch_policy=FixedRoundSwitch(switch_round), keep_loads=True
    ).run(load, rounds=1100)

    os.makedirs(outdir, exist_ok=True)
    snapshots = [30, 60, 90, 130, 200]
    for t in snapshots:
        img = load_to_grayscale(result.loads_history[t], (side, side))
        write_pgm(os.path.join(outdir, f"wavefront-{t:04d}.pgm"), img)
        print(f"round {t:4d} (adaptive shading):")
        print(ascii_heatmap(result.loads_history[t], (side, side), width=48))
        print()

    avg = load.sum() / topo.n
    for label, t in [("before-switch", switch_round), ("after-switch", 1100)]:
        img = load_to_grayscale(
            result.loads_history[t], (side, side),
            mode="threshold", threshold=10.0, average=avg,
        )
        path = write_pgm(os.path.join(outdir, f"{label}.pgm"), img)
        white = float((img == 255).mean())
        print(f"{label} (round {t}): {100 * white:.1f}% of nodes within "
              f"10 tokens of optimal -> {path}")


if __name__ == "__main__":
    main()
