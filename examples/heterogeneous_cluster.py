#!/usr/bin/env python
"""Heterogeneous network: balance load proportional to processor speeds.

Models a cluster where 10% of the machines are 8x faster: the goal state
gives node ``i`` a load of ``m * s_i / s`` (Section II-c of the paper).
Shows that the discrete SOS process drives every node to within a few
tokens of its own speed-proportional target, and verifies the Theorem 9
deviation-bound shape against a paired continuous run.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    second_largest_eigenvalue,
    target_loads,
    theory,
    torus_2d,
    two_class_speeds,
)
from repro.core.deviation import run_paired


def main() -> None:
    side = 24
    topo = torus_2d(side, side)
    rng = np.random.default_rng(7)
    speeds = two_class_speeds(topo.n, fast_fraction=0.1, fast_speed=8.0, rng=rng)
    print(f"cluster: {topo.n} nodes, {int((speeds > 1).sum())} fast (8x) nodes")

    lam = second_largest_eigenvalue(topo, speeds)
    beta = beta_opt(lam)
    print(f"lambda = {lam:.6f}, beta_opt = {beta:.6f}")

    load = point_load(topo, 1000 * topo.n)
    targets = target_loads(float(load.sum()), speeds)
    process = LoadBalancingProcess(
        SecondOrderScheme(topo, beta=beta, speeds=speeds),
        rounding="randomized-excess",
        rng=rng,
    )
    result = Simulator(process, targets=targets).run(load, rounds=1500)

    final_load = result.final_state.load
    excess = final_load - targets
    fast = speeds > 1
    print(f"after 1500 rounds:")
    print(f"  fast-node mean load {final_load[fast].mean():8.1f} "
          f"(target {targets[fast].mean():8.1f})")
    print(f"  slow-node mean load {final_load[~fast].mean():8.1f} "
          f"(target {targets[~fast].mean():8.1f})")
    print(f"  worst deviation from target: {np.abs(excess).max():.1f} tokens")

    # Deviation from the continuous process vs the Theorem 9 bound shape.
    paired = run_paired(process, load, rounds=300)
    measured = paired.max_deviation_series().max()
    bound = theory.theorem9_deviation(
        max_degree=topo.max_degree, n=topo.n, smax=float(speeds.max()),
        lam=lam, scale=1.0,
    )
    print(f"  max deviation from continuous SOS: {measured:.1f} tokens "
          f"(Theorem 9 scale: {bound:.1f})")


if __name__ == "__main__":
    main()
