#!/usr/bin/env python
"""Run the balancing protocols as a true message-passing system.

The matrix engine computes global dynamics; this demo runs the *distributed*
implementation instead: every node is an autonomous agent that only sees
Hello/LoadAnnounce/TokenTransfer messages from its direct neighbours
(:mod:`repro.network`).  It also injects link faults — dropped shipments
bounce back to their senders, so load is conserved even on a flaky network,
and balancing still succeeds (slower).

Run:  python examples/message_passing_demo.py
"""

import numpy as np

from repro import beta_opt, point_load, torus_2d, torus_lambda
from repro.network import RandomLinkDrop, SyncNetwork
from repro.viz import ascii_heatmap


def run(topo, load, faults=None, seed=0, rounds=600):
    net = SyncNetwork(
        topo,
        load,
        scheme="sos",
        beta=beta_opt(torus_lambda((16, 16))),
        rounding="randomized-excess",
        seed=seed,
        faults=faults,
    )
    net.run(rounds)
    return net


def main() -> None:
    topo = torus_2d(16, 16)
    load = point_load(topo, 1000 * topo.n)

    print("reliable network:")
    net = run(topo, load)
    loads = net.loads()
    print(f"  total {loads.sum():.0f} (conserved), "
          f"max-avg {loads.max() - loads.mean():.1f}, "
          f"min transient {net.min_transients().min():.0f}")
    print(ascii_heatmap(loads, (16, 16), width=32))

    print("\nflaky network (20% of shipments dropped):")
    net = run(topo, load, faults=RandomLinkDrop(0.2, np.random.default_rng(1)))
    loads = net.loads()
    print(f"  total {loads.sum():.0f} (still conserved), "
          f"max-avg {loads.max() - loads.mean():.1f}")
    print(ascii_heatmap(loads, (16, 16), width=32))


if __name__ == "__main__":
    main()
