#!/usr/bin/env python
"""Compare all five balancing schemes on one workload.

Diffusion (FOS, SOS, Chebyshev) versus the classical matching family
(random matchings [17], dimension exchange) on a torus: the second-order
schemes dominate, the matching schemes land in the FOS regime because they
only activate ~1/d of the edges per round.

Run:  python examples/baselines_comparison.py
"""

import numpy as np

from repro import (
    ChebyshevScheme,
    DimensionExchangeScheme,
    FirstOrderScheme,
    LoadBalancingProcess,
    RandomMatchingScheme,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import convergence_round
from repro.viz import sparkline


def main() -> None:
    side, rounds = 32, 2500
    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    load = point_load(topo, 1000 * topo.n)

    schemes = [
        ("SOS (beta_opt)", SecondOrderScheme(topo, beta=beta_opt(lam))),
        ("Chebyshev", ChebyshevScheme(topo, lam)),
        ("FOS", FirstOrderScheme(topo)),
        ("dimension exchange", DimensionExchangeScheme(topo)),
        ("random matching", RandomMatchingScheme(topo, seed=0)),
    ]

    print(f"torus {side}x{side}, point load {1000 * topo.n} tokens, "
          f"lambda = {lam:.6f}\n")
    print(f"{'scheme':22s} {'rounds to <= 10':>16s}")
    for name, scheme in schemes:
        proc = LoadBalancingProcess(
            scheme, rounding="randomized-excess", rng=np.random.default_rng(0)
        )
        result = Simulator(proc).run(load, rounds)
        r = convergence_round(result, threshold=10.0, sustained=3)
        print(f"{name:22s} {str(r):>16s}  "
              + sparkline(result.series("max_minus_avg"), width=40, log=True))


if __name__ == "__main__":
    main()
