#!/usr/bin/env python
"""SOS vs FOS on the torus — the paper's Figure 1 at laptop scale.

Runs both schemes on the same workload and reports the round at which each
first pushes the maximum excess load below 10 tokens, the measured speed-up,
and the theoretical prediction ``~ 1/sqrt(1 - lambda)``.

Run:  python examples/torus_sos_vs_fos.py [side] [rounds]
"""

import sys

import numpy as np

from repro import (
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import measured_speedup, remaining_imbalance
from repro.viz import sparkline


def run(topo, scheme, seed):
    process = LoadBalancingProcess(
        scheme, rounding="randomized-excess", rng=np.random.default_rng(seed)
    )
    return Simulator(process)


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 2500

    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    beta = beta_opt(lam)
    load = point_load(topo, 1000 * topo.n)
    print(f"torus {side}x{side} (n={topo.n}), lambda={lam:.6f}, beta={beta:.6f}")

    sos_result = run(topo, SecondOrderScheme(topo, beta=beta), seed=0).run(load, rounds)
    fos_result = run(topo, FirstOrderScheme(topo), seed=1).run(load, rounds)

    report = measured_speedup(fos_result, sos_result, lam, threshold=10.0)
    print(report)

    for name, result in [("SOS", sos_result), ("FOS", fos_result)]:
        stats = remaining_imbalance(result)
        print(f"{name}: plateau max-avg ~ {stats.mean:.1f} tokens "
              f"(from round {stats.start_round})")
        print("  " + sparkline(result.series("max_minus_avg"), log=True))


if __name__ == "__main__":
    main()
