"""Tests for convergence measurement and FOS/SOS speed-up comparison."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import (
    convergence_round,
    decay_rate,
    measured_speedup,
    predicted_speedup,
)


def _run(topo, kind, rounds, beta=None, seed=0):
    scheme = (
        FirstOrderScheme(topo)
        if kind == "fos"
        else SecondOrderScheme(topo, beta=beta)
    )
    proc = LoadBalancingProcess(
        scheme, rounding="randomized-excess", rng=np.random.default_rng(seed)
    )
    return Simulator(proc).run(point_load(topo, 1000 * topo.n), rounds)


class TestConvergenceRound:
    def test_finds_first_sustained_round(self, small_torus):
        result = _run(small_torus, "fos", 400)
        r1 = convergence_round(result, threshold=50.0)
        r2 = convergence_round(result, threshold=10.0)
        assert r1 is not None and r2 is not None
        assert r1 <= r2

    def test_returns_none_when_never_reached(self, small_torus):
        result = _run(small_torus, "fos", 5)
        assert convergence_round(result, threshold=1e-9) is None

    def test_sustained_requirement(self, small_torus):
        result = _run(small_torus, "fos", 300)
        loose = convergence_round(result, threshold=20.0, sustained=1)
        strict = convergence_round(result, threshold=20.0, sustained=5)
        assert loose <= strict

    def test_validation(self, small_torus):
        result = _run(small_torus, "fos", 5)
        with pytest.raises(ConfigurationError):
            convergence_round(result, sustained=0)


class TestDecayRate:
    def test_pure_exponential(self):
        series = 100.0 * np.exp(-0.05 * np.arange(50))
        assert decay_rate(series) == pytest.approx(0.05, rel=1e-6)

    def test_skip_prefix(self):
        series = np.concatenate([np.full(10, 100.0), 100.0 * np.exp(-0.1 * np.arange(40))])
        rate = decay_rate(series, skip=10)
        assert rate == pytest.approx(0.1, rel=1e-6)

    def test_needs_two_positive_points(self):
        with pytest.raises(ConfigurationError):
            decay_rate([0.0, 0.0, 0.0])

    def test_continuous_fos_rate_matches_lambda(self):
        """Continuous FOS max-avg decays ~ lambda^t in the long run.

        Fit a window after transients have died but long before float noise
        dominates (the signal reaches ~1e-9 * initial by round ~90 here).
        """
        topo = torus_2d(6, 6)
        lam = torus_lambda((6, 6))
        proc = LoadBalancingProcess(FirstOrderScheme(topo))
        result = Simulator(proc).run(point_load(topo, 3600.0), rounds=80)
        series = result.series("max_minus_avg")[30:80]
        rate = decay_rate(series)
        assert rate == pytest.approx(-np.log(lam), rel=0.15)


class TestSpeedup:
    def test_predicted_formula(self):
        assert predicted_speedup(0.99) == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            predicted_speedup(1.0)

    def test_sos_beats_fos_on_torus(self):
        topo = torus_2d(16, 16)
        lam = torus_lambda((16, 16))
        fos = _run(topo, "fos", 1500)
        sos = _run(topo, "sos", 1500, beta=beta_opt(lam))
        report = measured_speedup(fos, sos, lam, threshold=10.0)
        assert report.sos_round is not None
        assert report.fos_round is not None
        assert report.measured is not None
        assert report.measured > 1.5  # SOS clearly faster
        assert "speedup" in str(report)

    def test_speedup_none_when_unconverged(self, small_torus):
        fos = _run(small_torus, "fos", 3)
        sos = _run(small_torus, "sos", 3, beta=1.6)
        report = measured_speedup(fos, sos, 0.9, threshold=1e-9)
        assert report.measured is None
        assert "n/a" in str(report)
