"""Tests for wavefront-collision bump detection."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import bump_period, detect_bumps


class TestDetectBumps:
    def test_finds_synthetic_bumps(self):
        y = np.full(300, 10.0)
        y[100] = 100.0
        y[200] = 80.0
        bumps = detect_bumps(y, window=20, min_rise=2.0)
        assert [b.position for b in bumps] == [100, 200]
        assert bumps[0].prominence == pytest.approx(10.0)

    def test_monotone_series_has_no_bumps(self):
        y = 1000.0 * 0.99 ** np.arange(400)
        assert detect_bumps(y) == []

    def test_skip_ignores_initial_spike(self):
        y = np.full(200, 10.0)
        y[0] = 1e6
        y[100] = 100.0
        bumps = detect_bumps(y, window=20, skip=25)
        assert [b.position for b in bumps] == [100]

    def test_period_estimation(self):
        y = np.full(500, 10.0)
        for pos in (100, 220, 340, 460):
            y[pos] = 200.0
        bumps = detect_bumps(y, window=20)
        assert bump_period(bumps) == pytest.approx(120.0)

    def test_period_none_with_single_bump(self):
        y = np.full(200, 10.0)
        y[100] = 200.0
        assert bump_period(detect_bumps(y, window=20)) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            detect_bumps([1, 2, 3], window=2)
        with pytest.raises(ConfigurationError):
            detect_bumps([1, 2, 3], min_rise=1.0)


class TestOnSimulatedTorus:
    def test_collision_bump_on_torus(self):
        """A point load on a k x k torus collides with itself after the
        fronts travel ~k/2 in each direction; a max-local-diff bump must
        appear in that window."""
        side = 30
        topo = torus_2d(side, side)
        beta = beta_opt(torus_lambda((side, side)))
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        result = Simulator(proc).run(point_load(topo, 1000 * topo.n), 400)
        bumps = detect_bumps(
            result.series("max_local_diff"), window=10, min_rise=1.2, skip=5
        )
        assert bumps, "expected at least one wavefront-collision bump"
        assert all(5 < b.position < 400 for b in bumps)
