"""Tests for remaining-imbalance / plateau detection."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    point_load,
)
from repro.analysis import plateau_start, remaining_imbalance


def _sos_result(topo, rounds, seed=0):
    proc = LoadBalancingProcess(
        SecondOrderScheme(topo, beta=1.6),
        rounding="randomized-excess",
        rng=np.random.default_rng(seed),
    )
    return Simulator(proc).run(point_load(topo, 1000 * topo.n), rounds)


class TestPlateauStart:
    def test_detects_plateau_in_converged_run(self, small_torus):
        result = _sos_result(small_torus, 300)
        pos = plateau_start(result)
        assert pos is not None
        # The plateau must start after the big initial decay.
        series = result.series("max_minus_avg")
        assert series[pos] < series[0] / 10

    def test_none_for_short_series(self, small_torus):
        result = _sos_result(small_torus, 5)
        assert plateau_start(result, window=20) is None

    def test_validation(self, small_torus):
        result = _sos_result(small_torus, 30)
        with pytest.raises(ConfigurationError):
            plateau_start(result, window=1)


class TestRemainingImbalance:
    def test_stats_fields(self, small_torus):
        result = _sos_result(small_torus, 300)
        stats = remaining_imbalance(result)
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.samples > 0
        assert stats.field == "max_minus_avg"
        assert "plateau" in str(stats)

    def test_discrete_sos_leaves_constant_residual(self, small_torus):
        """The paper's observation: the discrete residual is a small constant
        (it does not scale with the initial load)."""
        light = remaining_imbalance(_sos_result(small_torus, 300, seed=1))
        stats = remaining_imbalance(_sos_result(small_torus, 300, seed=2))
        assert stats.mean < 20.0
        assert light.mean < 20.0

    def test_local_diff_field(self, small_torus):
        result = _sos_result(small_torus, 300)
        stats = remaining_imbalance(result, field="max_local_diff")
        assert stats.field == "max_local_diff"
        assert stats.mean < 25.0

    def test_tail_fraction_fallback(self, small_torus):
        result = _sos_result(small_torus, 12)
        stats = remaining_imbalance(result, window=50, tail_fraction=0.5)
        assert stats.samples >= 6

    def test_validation(self, small_torus):
        result = _sos_result(small_torus, 30)
        with pytest.raises(ConfigurationError):
            remaining_imbalance(result, tail_fraction=0.0)
