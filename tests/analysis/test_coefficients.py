"""Tests for eigen-coefficient analysis (Figures 7/15 machinery)."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FirstOrderScheme,
    LoadBalancingProcess,
    Simulator,
    cycle,
    diffusion_matrix,
    point_load,
    torus_2d,
)
from repro.analysis import EigenbasisAnalyzer, TorusFourierAnalyzer


class TestEigenbasisAnalyzer:
    def test_coefficients_reconstruct_load(self, small_torus):
        analyzer = EigenbasisAnalyzer(small_torus)
        rng = np.random.default_rng(0)
        load = rng.random(small_torus.n) * 10
        coeff = analyzer.coefficients(load)
        # V a == x (homogeneous: sqrt_s = 1).
        recon = analyzer._basis @ coeff
        assert np.allclose(recon, load)

    def test_stationary_mode_first(self, small_torus):
        analyzer = EigenbasisAnalyzer(small_torus)
        assert analyzer.eigenvalues[0] == pytest.approx(1.0)
        assert np.all(np.diff(analyzer.eigenvalues) <= 1e-12)

    def test_balanced_load_has_only_stationary_mode(self, small_torus):
        analyzer = EigenbasisAnalyzer(small_torus)
        coeff = analyzer.coefficients(np.full(small_torus.n, 7.0))
        assert np.abs(coeff[1:]).max() < 1e-9

    def test_coefficients_decay_by_eigenvalue_under_fos(self, small_torus):
        """Each continuous FOS round multiplies a_i by mu_i (Section VI)."""
        analyzer = EigenbasisAnalyzer(small_torus)
        m = diffusion_matrix(small_torus)
        rng = np.random.default_rng(1)
        load = rng.random(small_torus.n) * 100
        before = analyzer.coefficients(load)
        after = analyzer.coefficients(m @ load)
        assert np.allclose(after, analyzer.eigenvalues * before, atol=1e-8)

    def test_leading_mode_excludes_stationary(self, small_torus):
        analyzer = EigenbasisAnalyzer(small_torus)
        idx, val = analyzer.leading_mode(point_load(small_torus, 640))
        assert idx != 0
        assert val > 0

    def test_trace_over_run(self, small_torus):
        proc = LoadBalancingProcess(FirstOrderScheme(small_torus))
        result = Simulator(proc, keep_loads=True).run(
            point_load(small_torus, 640.0), rounds=20
        )
        analyzer = EigenbasisAnalyzer(small_torus)
        trace = analyzer.trace(result.loads_history, keep_coefficients=True)
        assert trace.leading_value.shape == (21,)
        assert trace.coefficients.shape == (21, small_torus.n)
        # Continuous FOS: the leading coefficient never grows.
        assert np.all(np.diff(trace.leading_value) <= 1e-9)

    def test_shape_validation(self, small_torus):
        analyzer = EigenbasisAnalyzer(small_torus)
        with pytest.raises(ConfigurationError):
            analyzer.coefficients(np.ones(3))

    def test_refuses_large_graphs(self):
        from repro import hypercube

        with pytest.raises(ConfigurationError):
            EigenbasisAnalyzer(hypercube(13))

    def test_heterogeneous_orthonormality(self, rng):
        topo = cycle(10)
        speeds = 1.0 + rng.integers(0, 3, topo.n).astype(float)
        analyzer = EigenbasisAnalyzer(topo, speeds=speeds)
        load = rng.random(topo.n) * 10
        coeff = analyzer.coefficients(load)
        # Orthonormal transform: norms match in the scaled space.
        assert np.linalg.norm(coeff) == pytest.approx(
            np.linalg.norm(load / np.sqrt(speeds))
        )


class TestTorusFourierAnalyzer:
    def test_eigenvalues_match_dense(self):
        rows, cols = 6, 8
        fourier = TorusFourierAnalyzer(rows, cols)
        dense = EigenbasisAnalyzer(torus_2d(rows, cols))
        assert np.allclose(
            np.sort(fourier.eigenvalues), np.sort(dense.eigenvalues), atol=1e-9
        )

    def test_eigenspace_energies_match_dense(self):
        """Per-eigenvalue-class coefficient energy is basis-invariant, so the
        FFT and LAPACK decompositions must agree on it exactly (the leading
        *individual* coefficient is basis-dependent inside degenerate
        eigenspaces, so that is not comparable)."""
        rows = cols = 8
        topo = torus_2d(rows, cols)
        proc = LoadBalancingProcess(FirstOrderScheme(topo))
        result = Simulator(proc, keep_loads=True).run(
            point_load(topo, 6400.0), rounds=6
        )
        fourier = TorusFourierAnalyzer(rows, cols)
        dense = EigenbasisAnalyzer(topo)

        def energy_by_class(mags, eigs):
            out = {}
            for mag, mu in zip(mags, eigs):
                key = round(float(mu), 9)
                out[key] = out.get(key, 0.0) + float(mag) ** 2
            return out

        for load in result.loads_history[1:]:
            f = energy_by_class(fourier.coefficients(load), fourier.eigenvalues)
            d = energy_by_class(
                np.abs(dense.coefficients(load)), dense.eigenvalues
            )
            assert set(f) == set(d)
            for key in f:
                assert f[key] == pytest.approx(d[key], rel=1e-6, abs=1e-6)

    def test_balanced_load_only_dc(self):
        fourier = TorusFourierAnalyzer(6, 6)
        mags = fourier.coefficients(np.full(36, 5.0))
        assert mags[0] > 0
        assert np.abs(mags[1:]).max() < 1e-9

    def test_parseval_total_energy(self, rng):
        fourier = TorusFourierAnalyzer(6, 6)
        load = rng.random(36) * 10
        mags = fourier.coefficients(load)
        assert np.sum(mags**2) == pytest.approx(np.sum(load**2))

    def test_leading_mode_eigenvalue_reported(self):
        fourier = TorusFourierAnalyzer(8, 8)
        load = np.cos(2 * np.pi * np.arange(8) / 8)
        grid = np.tile(load, (8, 1))
        (a, b), mag, mu = fourier.leading_mode(grid.ravel())
        assert {a, b} <= {0, 1, 7}
        assert mu == pytest.approx((1 + 2 + 2 * np.cos(2 * np.pi / 8)) / 5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TorusFourierAnalyzer(2, 5)
        fourier = TorusFourierAnalyzer(4, 4)
        with pytest.raises(ConfigurationError):
            fourier.coefficients(np.ones(7))

    def test_trace_stable_leader_span(self, rng):
        fourier = TorusFourierAnalyzer(4, 4)
        loads = [rng.random(16) for _ in range(3)]
        # Force identical leading mode by reusing one load.
        loads = [loads[0]] * 5 + loads
        trace = fourier.trace(loads)
        start, end = trace.stable_leader_span()
        assert end - start >= 5
