"""Doc-sync tests: the documentation set must track the code.

Three contracts, all cheap enough for the tier-1 suite:

* every ``simulate``/``figure`` CLI flag in the argparse spec appears in
  ``docs/user_guide.md`` (new flags must be documented in the same PR);
* every engine name in the registry appears in ``docs/engines.md`` (and
  in the user guide's ``--engine`` row);
* the fenced ``bash``/``python`` quickstart blocks in the README parse,
  and the runnable ones execute at tiny scale;
* every relative markdown link in ``docs/`` and the README resolves to a
  file in the repository (the CI docs job runs this module as the link
  check).
"""

import ast
import os
import re
import subprocess
import sys

import pytest

from repro.cli import build_parser
from repro.engines import ENGINES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
SRC_DIR = os.path.join(REPO_ROOT, "src")


def _read(*parts) -> str:
    with open(os.path.join(REPO_ROOT, *parts)) as fh:
        return fh.read()


def _subcommand_flags(name: str):
    """All option strings (and positional names) of one CLI subcommand."""
    parser = build_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    command = sub.choices[name]
    flags = []
    for action in command._actions:
        if action.option_strings:
            flags.extend(
                s for s in action.option_strings if s.startswith("--")
            )
        elif action.dest not in ("help",):
            flags.append(action.dest)
    return flags


class TestCliFlagsDocumented:
    @pytest.mark.parametrize("command", ["simulate", "figure"])
    def test_every_flag_in_user_guide(self, command):
        guide = _read("docs", "user_guide.md")
        missing = [
            flag
            for flag in _subcommand_flags(command)
            if flag != "--help" and f"`{flag}`" not in guide
        ]
        assert not missing, (
            f"repro-lb {command} flags missing from docs/user_guide.md: "
            f"{missing} — document new flags in the same PR that adds them"
        )

    def test_guide_mentions_every_subcommand(self):
        guide = _read("docs", "user_guide.md")
        parser = build_parser()
        sub = parser._subparsers._group_actions[0]
        for command in sub.choices:
            assert f"`{command}`" in guide or f"cli {command}" in guide, (
                f"subcommand {command!r} undocumented in docs/user_guide.md"
            )


class TestEnginesDocumented:
    def test_every_registered_engine_in_engine_guide(self):
        guide = _read("docs", "engines.md")
        missing = [
            name for name in ENGINES if f"`{name}`" not in guide
        ]
        assert not missing, (
            f"registered engines missing from docs/engines.md: {missing}"
        )

    def test_every_registered_engine_in_user_guide_and_readme(self):
        """The user guide's ``--engine`` row and the README backend list
        track the registry — adding a backend must document it in both."""
        guide = _read("docs", "user_guide.md")
        readme = _read("README.md")
        for name in ENGINES:
            assert f"`{name}`" in guide, (
                f"engine {name!r} missing from docs/user_guide.md"
            )
            assert f"`{name}`" in readme or name in readme, (
                f"engine {name!r} missing from README.md"
            )

    def test_engine_config_fields_in_knob_table(self):
        """Every EngineConfig field appears as a knob row in engines.md."""
        import dataclasses

        from repro.engines import EngineConfig

        guide = _read("docs", "engines.md")
        missing = [
            f.name
            for f in dataclasses.fields(EngineConfig)
            if f"`{f.name}`" not in guide
        ]
        assert not missing, (
            f"EngineConfig fields missing from docs/engines.md: {missing}"
        )


FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def _readme_blocks(language: str):
    return [
        block for lang, block in FENCE.findall(_read("README.md"))
        if lang == language
    ]


class TestReadmeSnippets:
    def test_bash_blocks_parse_and_reference_real_entry_points(self):
        blocks = _readme_blocks("bash")
        assert blocks, "README lost its bash quickstart blocks"
        for block in blocks:
            joined = block.replace("\\\n", " ")  # fold line continuations
            for line in joined.splitlines():
                line = line.split("#", 1)[0].strip()
                if not line:
                    continue
                # every documented command drives pytest or the repro CLI
                assert ("python -m" in line or line.startswith("cd ")), (
                    f"unexpected README command: {line!r}"
                )

    def test_python_blocks_compile(self):
        for block in _readme_blocks("python"):
            ast.parse(block)
        for name in ("user_guide.md", "engines.md", "benchmarks.md",
                     "index.md", "architecture.md"):
            for lang, block in FENCE.findall(_read("docs", name)):
                if lang == "python":
                    ast.parse(block)

    def test_first_quickstart_commands_run_tiny(self):
        """The README's first quickstart block works verbatim (tiny args)."""
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        for args in (
            ["-m", "repro.cli", "list"],
            ["-m", "repro.cli", "table1", "--scale", "tiny"],
            [
                "-m", "repro.cli", "simulate", "--graph", "torus-100",
                "--scale", "tiny", "--rounds", "5", "--engine", "sharded",
                "--workers", "2", "--replicas", "4",
            ],
        ):
            proc = subprocess.run(
                [sys.executable, *args], env=env, cwd=REPO_ROOT,
                capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr

    def test_user_guide_python_snippets_run_tiny(self):
        """The guide's python snippets execute after downscaling."""
        blocks = [
            b for b in (
                block for lang, block in FENCE.findall(
                    _read("docs", "user_guide.md")
                ) if lang == "python"
            )
        ]
        assert len(blocks) >= 3
        shrunk = []
        for block in blocks:
            block = block.replace("torus_2d(16, 16)", "torus_2d(5, 5)")
            block = block.replace("rounds=200", "rounds=8")
            block = block.replace("n_replicas=32", "n_replicas=4")
            shrunk.append(block)
        script = "\n\n".join(shrunk)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=dict(os.environ, PYTHONPATH=SRC_DIR),
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr


LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)\s]*)?\)")


class TestMarkdownLinks:
    def _markdown_files(self):
        files = [os.path.join(REPO_ROOT, "README.md")]
        for root, _, names in os.walk(DOCS_DIR):
            files.extend(
                os.path.join(root, n) for n in names if n.endswith(".md")
            )
        return files

    def test_relative_links_resolve(self):
        broken = []
        for path in self._markdown_files():
            with open(path) as fh:
                text = fh.read()
            # drop fenced code blocks — they contain ``[x](y)``-ish noise
            text = FENCE.sub("", text)
            for target, _anchor in LINK.findall(text):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target)
                )
                if not os.path.exists(resolved):
                    broken.append(f"{os.path.relpath(path, REPO_ROOT)} -> {target}")
        assert not broken, f"broken relative markdown links: {broken}"

    def test_docs_set_is_complete(self):
        """The documented docs set exists and the index links all of it."""
        expected = {
            "index.md", "user_guide.md", "engines.md", "benchmarks.md",
            "architecture.md",
        }
        present = {
            n for n in os.listdir(DOCS_DIR) if n.endswith(".md")
        }
        assert expected <= present
        index = _read("docs", "index.md")
        for name in sorted(expected - {"index.md"}):
            assert name in index, f"docs/index.md does not link {name}"
