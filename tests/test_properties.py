"""Cross-cutting property-based tests (hypothesis).

These nail the library's global invariants on randomly generated graphs,
speed vectors, loads and parameters:

* load conservation for every scheme x rounding,
* integrality of discrete loads,
* Lemma 2 as an exact identity on random instances,
* diffusion matrix structure for random heterogeneous networks,
* convergence of the continuous schemes to the speed-proportional target.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    Topology,
    check_diffusion_matrix,
    contribution_matrices,
    diffusion_matrix,
    lemma2_rhs,
    run_paired,
    target_loads,
)

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graph(draw, min_nodes=4, max_nodes=14):
    """Random connected graph: random spanning tree + random extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    edges = set()
    order = rng.permutation(n)
    for i in range(1, n):
        a, b = int(order[i]), int(order[rng.integers(0, i)])
        edges.add((min(a, b), max(a, b)))
    extra = draw(st.integers(0, 2 * n))
    for _ in range(extra):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            edges.add((min(int(a), int(b)), max(int(a), int(b))))
    return Topology(n, sorted(edges))


@st.composite
def scheme_config(draw):
    """(topology, speeds, scheme, rounding) tuple."""
    topo = draw(connected_graph())
    hetero = draw(st.booleans())
    if hetero:
        seed = draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        speeds = 1.0 + rng.integers(0, 4, topo.n).astype(float)
    else:
        speeds = np.ones(topo.n)
    kind = draw(st.sampled_from(["fos", "sos"]))
    beta = draw(st.floats(1.05, 1.9)) if kind == "sos" else None
    rounding = draw(
        st.sampled_from(
            ["identity", "floor", "nearest", "ceil", "unbiased-edge",
             "randomized-excess"]
        )
    )
    if kind == "fos":
        scheme = FirstOrderScheme(topo, speeds=speeds)
    else:
        scheme = SecondOrderScheme(topo, beta=beta, speeds=speeds)
    return topo, speeds, scheme, rounding


@settings(**SETTINGS)
@given(config=scheme_config(), seed=st.integers(0, 2**31), total=st.integers(0, 5000))
def test_property_load_conservation(config, seed, total):
    """Total load is conserved exactly by every scheme x rounding combo."""
    topo, _, scheme, rounding = config
    rng = np.random.default_rng(seed)
    load = np.bincount(
        rng.integers(0, topo.n, size=total), minlength=topo.n
    ).astype(float)
    proc = LoadBalancingProcess(scheme, rounding=rounding, rng=rng)
    state = proc.run(load, rounds=8)
    assert state.total_load == pytest.approx(float(total), abs=1e-6)


@settings(**SETTINGS)
@given(config=scheme_config(), seed=st.integers(0, 2**31))
def test_property_discrete_loads_integral(config, seed):
    """Discrete roundings keep every node's load integral forever."""
    topo, _, scheme, rounding = config
    if rounding == "identity":
        return
    rng = np.random.default_rng(seed)
    load = np.bincount(
        rng.integers(0, topo.n, size=300), minlength=topo.n
    ).astype(float)
    proc = LoadBalancingProcess(scheme, rounding=rounding, rng=rng)
    state = proc.run(load, rounds=10)
    assert np.allclose(state.load, np.round(state.load))


@settings(**SETTINGS)
@given(config=scheme_config(), seed=st.integers(0, 2**31))
def test_property_lemma2_identity(config, seed):
    """Lemma 2 holds exactly on random graphs/speeds/schemes/roundings."""
    topo, _, scheme, rounding = config
    rng = np.random.default_rng(seed)
    load = np.bincount(
        rng.integers(0, topo.n, size=500), minlength=topo.n
    ).astype(float)
    proc = LoadBalancingProcess(scheme, rounding=rounding, rng=rng)
    rounds = 7
    paired = run_paired(proc, load, rounds=rounds)
    mats = contribution_matrices(scheme, rounds)
    lhs = paired.deviation(rounds)
    rhs = lemma2_rhs(topo, mats, paired.errors, rounds)
    assert np.abs(lhs - rhs).max() < 1e-8


@settings(**SETTINGS)
@given(graph=connected_graph(), seed=st.integers(0, 2**31))
def test_property_diffusion_matrix_structure(graph, seed):
    """M is column-stochastic with non-negative entries and fixes speeds."""
    rng = np.random.default_rng(seed)
    speeds = 1.0 + 7.0 * rng.random(graph.n)
    m = diffusion_matrix(graph, speeds)
    ok, msg = check_diffusion_matrix(m, speeds)
    assert ok, msg


@settings(**SETTINGS)
@given(graph=connected_graph(max_nodes=10), seed=st.integers(0, 2**31))
def test_property_continuous_fos_converges_to_target(graph, seed):
    """Continuous FOS converges to the speed-proportional target vector."""
    rng = np.random.default_rng(seed)
    speeds = 1.0 + rng.integers(0, 3, graph.n).astype(float)
    load = np.bincount(
        rng.integers(0, graph.n, size=1000), minlength=graph.n
    ).astype(float)
    proc = LoadBalancingProcess(FirstOrderScheme(graph, speeds=speeds))
    state = proc.run(load, rounds=4000)
    targets = target_loads(1000.0, speeds)
    assert np.abs(state.load - targets).max() < 0.5


@settings(**SETTINGS)
@given(config=scheme_config(), seed=st.integers(0, 2**31))
def test_property_flows_respect_rounding_error_bound(config, seed):
    """Per-round rounding error never reaches a full token under-send."""
    topo, _, scheme, rounding = config
    if rounding == "identity":
        return
    rng = np.random.default_rng(seed)
    load = np.bincount(
        rng.integers(0, topo.n, size=400), minlength=topo.n
    ).astype(float)
    proc = LoadBalancingProcess(scheme, rounding=rounding, rng=rng)
    state = proc.initial_state(load)
    for _ in range(6):
        state, info = proc.step(state)
        signed = info.errors * np.sign(info.scheduled)
        assert signed.max(initial=0.0) < 1.0 + 1e-9


# ----------------------------------------------------------------------
# Token conservation under churn x faults x arrivals (the robustness
# tentpole): whatever the schedule does to the topology, whatever the
# fault model drops, and however the workload churns, the ledger
# balances: final total == initial total + arrived - departed.
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    engine=st.sampled_from(["reference", "batched", "network", "async"]),
    rounding=st.sampled_from(
        ["floor", "nearest", "ceil", "unbiased-edge", "randomized-excess"]
    ),
    churn_rate=st.floats(0.0, 1.0),
    drop_p=st.one_of(st.none(), st.floats(0.01, 0.5)),
    arrivals=st.sampled_from(
        [None, "poisson:2.0,depart=1.0", "burst:40/5", "hotspot:0,3:3"]
    ),
    seed=st.integers(0, 2**16),
)
def test_property_conservation_under_churn_faults_arrivals(
    engine, rounding, churn_rate, drop_p, arrivals, seed
):
    from repro import torus_2d
    from repro.engines import EngineConfig, make_engine

    if drop_p is not None and engine not in ("network", "async"):
        drop_p = None  # matrix engines model a reliable network
    topo = torus_2d(4, 4)
    rng = np.random.default_rng(seed)
    loads = rng.integers(0, 40, (1, topo.n)).astype(np.float64)
    config = EngineConfig(
        rounds=10,
        scheme="sos",
        rounding=rounding,
        seed=seed,
        churn=f"random:{churn_rate}",
        faults=None if drop_p is None else f"drop:{drop_p}",
        arrivals=arrivals,
    )
    eng = make_engine(engine)
    if arrivals is None:
        result = eng.run(topo, config, loads)[0]
        totals = result.table.column("total_load")
        assert (totals == loads.sum()).all()
    else:
        result = eng.run_dynamic(topo, config, loads)[0]
        totals = result.table.column("total_load")
        arrived = result.table.column("arrived")
        departed = result.table.column("departed")
        expected = loads.sum() + np.cumsum(arrived - departed)
        np.testing.assert_allclose(totals, expected)
