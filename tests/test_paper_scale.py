"""Paper-scale instance construction: the original Table I sizes build fine.

The evaluation benches default to CI-scale instances, but nothing in the
library caps the size: these tests construct the paper's million-node
graphs (torus 1000x1000, hypercube 2^20) and run a few balancing rounds on
them, confirming paper-scale experiments are a matter of runtime, not
capability.  Kept to a handful of rounds so the suite stays fast.
"""

import numpy as np
import pytest

from repro import (
    LoadBalancingProcess,
    SecondOrderScheme,
    beta_opt,
    hypercube,
    hypercube_lambda,
    point_load,
    torus_2d,
    torus_lambda,
)


class TestPaperScaleTorus:
    def test_build_and_step_million_node_torus(self):
        topo = torus_2d(1000, 1000)
        assert topo.n == 10**6
        assert topo.m_edges == 2 * 10**6
        assert topo.min_degree == topo.max_degree == 4

        beta = beta_opt(torus_lambda((1000, 1000)))
        assert beta == pytest.approx(1.9920836447, abs=5e-7)  # Table I

        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        state = proc.run(point_load(topo, 1000 * topo.n), rounds=3)
        assert state.total_load == 1000 * topo.n
        assert np.allclose(state.load, np.round(state.load))


class TestPaperScaleHypercube:
    def test_build_and_step_2_pow_20_hypercube(self):
        topo = hypercube(20)
        assert topo.n == 2**20
        assert topo.min_degree == topo.max_degree == 20

        beta = beta_opt(hypercube_lambda(20))
        assert beta == pytest.approx(1.4026054847, abs=5e-9)  # Table I

        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        state = proc.run(point_load(topo, 10 * topo.n), rounds=2)
        assert state.total_load == 10 * topo.n
