"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Topology,
    complete,
    cycle,
    hypercube,
    path,
    star,
    torus_2d,
)


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_torus():
    """An 8x8 torus — the workhorse small graph."""
    return torus_2d(8, 8)


@pytest.fixture
def tiny_cycle():
    return cycle(8)


@pytest.fixture(
    params=["cycle", "path", "complete", "star", "torus", "hypercube"],
)
def any_small_graph(request) -> Topology:
    """A parametrised family of small graphs of different shapes."""
    builders = {
        "cycle": lambda: cycle(9),
        "path": lambda: path(7),
        "complete": lambda: complete(6),
        "star": lambda: star(8),
        "torus": lambda: torus_2d(4, 5),
        "hypercube": lambda: hypercube(4),
    }
    return builders[request.param]()


def random_connected_graph(rng: np.random.Generator, n: int, extra_edges: int = 0):
    """A random connected graph: a random spanning tree plus extra edges."""
    edges = set()
    order = rng.permutation(n)
    for i in range(1, n):
        a = int(order[i])
        b = int(order[rng.integers(0, i)])
        edges.add((min(a, b), max(a, b)))
    attempts = 0
    while len(edges) < n - 1 + extra_edges and attempts < 20 * (extra_edges + 1):
        a, b = rng.integers(0, n, size=2)
        attempts += 1
        if a == b:
            continue
        edges.add((min(int(a), int(b)), max(int(a), int(b))))
    return Topology(n, sorted(edges), name=f"random-{n}")
