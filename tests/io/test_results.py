"""Tests for experiment record persistence."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.io import ExperimentRecord, list_records, load_record, save_record


class TestRecord:
    def test_json_round_trip(self):
        record = ExperimentRecord(
            name="fig01",
            params={"n": 100, "beta": 1.92},
            summary={"speedup": 3.5, "rounds": None},
            series={"max": [5.0, 3.0, 1.0]},
        )
        back = ExperimentRecord.from_json(record.to_json())
        assert back == record

    def test_numpy_values_serialised(self):
        record = ExperimentRecord(
            name="x",
            params={"n": np.int64(5)},
            summary={"v": np.float64(1.5), "arr": np.arange(3)},
        )
        back = ExperimentRecord.from_json(record.to_json())
        assert back.params["n"] == 5
        assert back.summary["arr"] == [0, 1, 2]

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRecord.from_json("{}")


class TestPersistence:
    def test_save_and_load(self, tmp_path):
        record = ExperimentRecord(name="table1", summary={"ok": 1})
        path = save_record(record, str(tmp_path / "out"))
        assert path.endswith("table1.json")
        assert load_record(path) == record

    def test_list_records(self, tmp_path):
        directory = str(tmp_path / "out")
        assert list_records(directory) == []
        save_record(ExperimentRecord(name="b"), directory)
        save_record(ExperimentRecord(name="a"), directory)
        names = [p.split("/")[-1] for p in list_records(directory)]
        assert names == ["a.json", "b.json"]
