"""Tests for experiment record persistence."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.io import ExperimentRecord, list_records, load_record, save_record


class TestRecord:
    def test_json_round_trip(self):
        record = ExperimentRecord(
            name="fig01",
            params={"n": 100, "beta": 1.92},
            summary={"speedup": 3.5, "rounds": None},
            series={"max": [5.0, 3.0, 1.0]},
        )
        back = ExperimentRecord.from_json(record.to_json())
        assert back == record

    def test_numpy_values_serialised(self):
        record = ExperimentRecord(
            name="x",
            params={"n": np.int64(5)},
            summary={"v": np.float64(1.5), "arr": np.arange(3)},
        )
        back = ExperimentRecord.from_json(record.to_json())
        assert back.params["n"] == 5
        assert back.summary["arr"] == [0, 1, 2]

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRecord.from_json("{}")


class TestPersistence:
    def test_save_and_load(self, tmp_path):
        record = ExperimentRecord(name="table1", summary={"ok": 1})
        path = save_record(record, str(tmp_path / "out"))
        assert path.endswith("table1.json")
        assert load_record(path) == record

    def test_list_records(self, tmp_path):
        directory = str(tmp_path / "out")
        assert list_records(directory) == []
        save_record(ExperimentRecord(name="b"), directory)
        save_record(ExperimentRecord(name="a"), directory)
        names = [p.split("/")[-1] for p in list_records(directory)]
        assert names == ["a.json", "b.json"]

class TestDynamicResultRecord:
    def _result(self):
        import numpy as np

        from repro import (
            DynamicSimulator,
            LoadBalancingProcess,
            PoissonArrivals,
            SecondOrderScheme,
            torus_2d,
            uniform_load,
        )

        topo = torus_2d(4, 4)
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=1.5),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        return DynamicSimulator(
            proc, PoissonArrivals(rate=2.0, departure_rate=1.0),
            rng=np.random.default_rng(1),
        ).run(uniform_load(topo, 20), rounds=15)

    def test_dynamic_record_series_and_summary(self):
        from repro.core.records import DYNAMIC_FLOAT_FIELDS
        from repro.io import dynamic_result_record

        result = self._result()
        record = dynamic_result_record(
            "dyn", result, params={"graph": "torus-4"}
        )
        assert record.name == "dyn"
        assert record.params == {"graph": "torus-4"}
        assert set(record.series) == {"round", *DYNAMIC_FLOAT_FIELDS}
        assert len(record.series["round"]) == 15
        assert record.summary["rounds_recorded"] == 15
        assert record.summary["final_total_load"] == result.series(
            "total_load"
        )[-1]
        assert record.summary["arrived_total"] == result.series("arrived").sum()
        assert record.summary["steady_state_imbalance"] == pytest.approx(
            result.steady_state_imbalance()
        )

    def test_dynamic_record_round_trips_json(self, tmp_path):
        from repro.io import dynamic_result_record, load_record, save_record

        record = dynamic_result_record("dyn", self._result(), fields=["total_load"])
        assert set(record.series) == {"round", "total_load"}
        path = save_record(record, str(tmp_path))
        loaded = load_record(path)
        assert loaded.series == record.series
        assert loaded.summary == record.summary
