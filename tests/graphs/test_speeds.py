"""Unit tests for heterogeneous speed vectors."""

import numpy as np
import pytest

from repro import (
    SpeedError,
    geometric_speeds,
    normalize_speeds,
    powerlaw_speeds,
    random_integer_speeds,
    two_class_speeds,
    uniform_speeds,
    validate_speeds,
)


class TestValidation:
    def test_accepts_valid_vector(self):
        arr = validate_speeds([1.0, 2.0, 4.0])
        assert arr.dtype == np.float64

    def test_rejects_below_one(self):
        with pytest.raises(SpeedError, match="minimum speed"):
            validate_speeds([0.5, 1.0])

    def test_rejects_nan_and_inf(self):
        with pytest.raises(SpeedError):
            validate_speeds([1.0, np.nan])
        with pytest.raises(SpeedError):
            validate_speeds([1.0, np.inf])

    def test_rejects_wrong_length(self):
        with pytest.raises(SpeedError, match="length"):
            validate_speeds([1.0, 2.0], n=3)

    def test_rejects_empty_and_2d(self):
        with pytest.raises(SpeedError):
            validate_speeds([])
        with pytest.raises(SpeedError):
            validate_speeds([[1.0, 2.0]])

    def test_normalize(self):
        arr = normalize_speeds([2.0, 4.0, 8.0])
        assert arr.min() == 1.0
        assert arr.tolist() == [1.0, 2.0, 4.0]

    def test_normalize_rejects_nonpositive(self):
        with pytest.raises(SpeedError):
            normalize_speeds([0.0, 1.0])


class TestGenerators:
    def test_uniform(self):
        assert np.all(uniform_speeds(5) == 1.0)
        with pytest.raises(SpeedError):
            uniform_speeds(0)

    def test_two_class(self, rng):
        speeds = two_class_speeds(100, fast_fraction=0.2, fast_speed=8.0, rng=rng)
        assert (speeds == 8.0).sum() == 20
        assert (speeds == 1.0).sum() == 80

    def test_two_class_validation(self, rng):
        with pytest.raises(SpeedError):
            two_class_speeds(10, fast_fraction=1.5, rng=rng)
        with pytest.raises(SpeedError):
            two_class_speeds(10, fast_speed=0.5, rng=rng)

    def test_powerlaw_bounds(self, rng):
        speeds = powerlaw_speeds(500, exponent=2.0, s_max=32.0, rng=rng)
        assert speeds.min() >= 1.0
        assert speeds.max() <= 32.0
        validate_speeds(speeds)

    def test_powerlaw_validation(self, rng):
        with pytest.raises(SpeedError):
            powerlaw_speeds(10, exponent=1.0, rng=rng)
        with pytest.raises(SpeedError):
            powerlaw_speeds(10, s_max=0.5, rng=rng)

    def test_geometric_levels(self, rng):
        speeds = geometric_speeds(300, levels=3, base=2.0, rng=rng)
        assert set(np.unique(speeds)).issubset({1.0, 2.0, 4.0})

    def test_random_integers(self, rng):
        speeds = random_integer_speeds(200, s_max=5, rng=rng)
        assert speeds.min() >= 1.0
        assert speeds.max() <= 5.0
        assert np.allclose(speeds, np.round(speeds))
