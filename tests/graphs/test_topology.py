"""Unit tests for the Topology substrate."""

import numpy as np
import pytest

from repro import Topology, TopologyError, cycle, torus_2d


class TestConstruction:
    def test_basic_triangle(self):
        topo = Topology(3, [(0, 1), (1, 2), (0, 2)])
        assert topo.n == 3
        assert topo.m_edges == 3
        assert topo.max_degree == 2
        assert topo.min_degree == 2

    def test_edge_order_is_normalised(self):
        topo = Topology(3, [(2, 1), (1, 0)])
        assert list(topo.edges()) == [(0, 1), (1, 2)]
        assert np.all(topo.edge_u < topo.edge_v)

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError, match="self loop"):
            Topology(3, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(TopologyError, match="duplicate"):
            Topology(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(TopologyError, match="out of range"):
            Topology(3, [(0, 5)])

    def test_rejects_empty_graph(self):
        with pytest.raises(TopologyError):
            Topology(0, [])

    def test_single_node_no_edges(self):
        topo = Topology(1, [])
        assert topo.n == 1
        assert topo.m_edges == 0
        assert topo.is_connected()

    def test_rejects_bad_edge_shape(self):
        with pytest.raises(TopologyError, match="pairs"):
            Topology(3, [(0, 1, 2)])

    def test_arrays_are_read_only(self):
        topo = cycle(5)
        with pytest.raises(ValueError):
            topo.edge_u[0] = 7


class TestLinkAttributes:
    def test_unset_by_default(self):
        topo = cycle(5)
        assert topo.link_latency is None
        assert topo.link_bandwidth is None

    def test_scalar_broadcast_and_chaining(self):
        topo = cycle(5).stamp_link_attrs(latency=1.5, bandwidth=8.0)
        assert topo.link_latency.shape == (5,)
        assert np.all(topo.link_latency == 1.5)
        assert np.all(topo.link_bandwidth == 8.0)

    def test_per_edge_array_aligned_with_edges(self):
        topo = cycle(4)
        lat = np.array([0.0, 1.0, 2.0, 3.0])
        topo.stamp_link_attrs(latency=lat)
        np.testing.assert_array_equal(topo.link_latency, lat)

    def test_stamped_arrays_are_read_only(self):
        topo = cycle(4).stamp_link_attrs(latency=1.0)
        with pytest.raises(ValueError):
            topo.link_latency[0] = 9.0

    def test_validation(self):
        with pytest.raises(TopologyError, match="latency"):
            cycle(4).stamp_link_attrs(latency=-1.0)
        with pytest.raises(TopologyError, match="bandwidth"):
            cycle(4).stamp_link_attrs(bandwidth=0.0)
        with pytest.raises(ValueError):
            cycle(4).stamp_link_attrs(latency=np.ones(3))

    def test_builders_stamp(self):
        topo = torus_2d(3, 4, link_latency=0.5, link_bandwidth=2.0)
        assert topo.link_latency.shape == (topo.m_edges,)
        assert np.all(topo.link_bandwidth == 2.0)
        assert torus_2d(3, 4).link_latency is None

    def test_attrs_do_not_affect_equality_or_hash(self):
        a, b = cycle(5), cycle(5).stamp_link_attrs(latency=2.0)
        assert a == b
        assert hash(a) == hash(b)


class TestAdjacency:
    def test_neighbors_sorted(self):
        topo = Topology(4, [(0, 3), (0, 1), (0, 2)])
        assert topo.neighbors(0).tolist() == [1, 2, 3]
        assert topo.degree(0) == 3
        assert topo.degree(1) == 1

    def test_incident_edges_align_with_neighbors(self):
        topo = Topology(4, [(0, 3), (0, 1), (2, 0)])
        for i in range(4):
            for nb, e in zip(topo.neighbors(i), topo.incident_edges(i)):
                u, v = int(topo.edge_u[e]), int(topo.edge_v[e])
                assert {u, v} == {i, int(nb)}

    def test_degree_sum_equals_twice_edges(self):
        topo = torus_2d(5, 4)
        assert topo.degrees.sum() == 2 * topo.m_edges

    def test_edge_id_lookup(self):
        topo = cycle(6)
        for k, (u, v) in enumerate(topo.edges()):
            assert topo.edge_id(u, v) == k
            assert topo.edge_id(v, u) == k

    def test_edge_id_missing_raises(self):
        topo = cycle(6)
        with pytest.raises(TopologyError):
            topo.edge_id(0, 3)

    def test_has_edge(self):
        topo = cycle(6)
        assert topo.has_edge(0, 1)
        assert topo.has_edge(5, 0)
        assert not topo.has_edge(0, 3)
        assert not topo.has_edge(0, 0)
        assert not topo.has_edge(0, 99)


class TestStructure:
    def test_connectivity(self):
        connected = cycle(5)
        assert connected.is_connected()
        disconnected = Topology(4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()
        with pytest.raises(TopologyError, match="not connected"):
            disconnected.require_connected()

    def test_components(self):
        topo = Topology(5, [(0, 1), (2, 3)])
        comps = sorted(topo.connected_components(), key=lambda c: c[0])
        assert [c.tolist() for c in comps] == [[0, 1], [2, 3], [4]]

    def test_bipartite_detection(self):
        assert cycle(6).is_bipartite()
        assert not cycle(5).is_bipartite()
        assert torus_2d(4, 4).is_bipartite()
        assert not torus_2d(5, 5).is_bipartite()

    def test_diameter_lower_bound_cycle(self):
        assert cycle(10).diameter_lower_bound() == 5


class TestConversions:
    def test_adjacency_matrix_symmetric(self):
        topo = torus_2d(3, 3)
        a = topo.adjacency_matrix()
        assert np.array_equal(a, a.T)
        assert a.sum() == 2 * topo.m_edges

    def test_laplacian_rows_sum_to_zero(self):
        lap = torus_2d(3, 4).laplacian_matrix()
        assert np.allclose(lap.sum(axis=1), 0.0)
        assert np.allclose(lap, lap.T)

    def test_networkx_round_trip(self):
        topo = torus_2d(3, 4)
        back = Topology.from_networkx(topo.to_networkx())
        assert back == topo

    def test_from_edge_list_infers_n(self):
        topo = Topology.from_edge_list([(0, 1), (1, 4)])
        assert topo.n == 5

    def test_equality_and_hash(self):
        a = cycle(5)
        b = cycle(5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != cycle(6)
