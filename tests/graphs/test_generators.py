"""Unit tests for the graph generators (Table I families + standard)."""

import numpy as np
import pytest

from repro import (
    TopologyError,
    barbell,
    binary_tree,
    circulant,
    complete,
    complete_bipartite,
    configuration_model,
    cycle,
    expander,
    grid_2d,
    hypercube,
    lollipop,
    paper_cm_degree,
    paper_rgg_radius,
    path,
    random_geometric,
    random_regular_strict,
    star,
    torus_2d,
    torus_coordinates,
    torus_nd,
    torus_node_id,
)


class TestTorus:
    def test_2d_torus_is_4_regular(self):
        topo = torus_2d(5, 7)
        assert topo.n == 35
        assert topo.min_degree == topo.max_degree == 4
        assert topo.m_edges == 2 * topo.n
        assert topo.is_connected()

    def test_torus_wraps_around(self):
        topo = torus_2d(4, 4)
        # node (0,0)=0 is adjacent to (0,3)=3 and (3,0)=12.
        assert topo.has_edge(0, 3)
        assert topo.has_edge(0, 12)

    def test_side_two_has_single_edges(self):
        topo = torus_nd((2, 2))
        # 2x2 torus is a 4-cycle: each node degree 2, 4 edges.
        assert topo.m_edges == 4
        assert topo.max_degree == 2

    def test_side_one_dimension_is_skipped(self):
        topo = torus_nd((1, 5))
        assert topo.n == 5
        assert topo.max_degree == 2  # just a 5-cycle

    def test_3d_torus(self):
        topo = torus_nd((3, 3, 3))
        assert topo.n == 27
        assert topo.min_degree == topo.max_degree == 6

    def test_invalid_shape(self):
        with pytest.raises(TopologyError):
            torus_nd(())
        with pytest.raises(TopologyError):
            torus_nd((0, 3))

    def test_coordinate_round_trip(self):
        shape = (6, 9)
        for node in (0, 13, 53):
            coords = torus_coordinates(node, shape)
            assert torus_node_id(coords, shape) == node

    def test_node_id_wraps_coordinates(self):
        assert torus_node_id((6, 0), (6, 9)) == 0
        assert torus_node_id((-1, 0), (6, 9)) == torus_node_id((5, 0), (6, 9))

    def test_grid_has_no_wraparound(self):
        topo = grid_2d(3, 3)
        assert topo.m_edges == 12
        assert not topo.has_edge(0, 2)
        assert topo.degree(4) == 4  # centre
        assert topo.degree(0) == 2  # corner


class TestHypercube:
    def test_dimension_and_regularity(self):
        topo = hypercube(5)
        assert topo.n == 32
        assert topo.min_degree == topo.max_degree == 5
        assert topo.m_edges == 5 * 32 // 2
        assert topo.is_connected()

    def test_edges_differ_in_one_bit(self):
        topo = hypercube(4)
        for u, v in topo.edges():
            xor = u ^ v
            assert xor and (xor & (xor - 1)) == 0

    def test_zero_dimension(self):
        assert hypercube(0).n == 1

    def test_rejects_negative_and_huge(self):
        with pytest.raises(TopologyError):
            hypercube(-1)
        with pytest.raises(TopologyError):
            hypercube(30)


class TestConfigurationModel:
    def test_paper_degree(self):
        assert paper_cm_degree(10**6) == 19
        assert paper_cm_degree(4096) == 12

    def test_connected_and_near_regular(self, rng):
        topo = configuration_model(500, 8, rng=rng)
        assert topo.is_connected()
        assert topo.n == 500
        # Erasure removes few edges at this density.
        assert topo.degrees.mean() > 7.0
        assert topo.max_degree <= 8

    def test_default_degree_is_paper_law(self, rng):
        topo = configuration_model(256, rng=rng)
        assert topo.max_degree <= paper_cm_degree(256)

    def test_strict_regular(self, rng):
        topo = random_regular_strict(20, 3, rng=rng)
        assert np.all(topo.degrees == 3)
        assert topo.is_connected()

    def test_strict_rejects_odd_parity(self, rng):
        with pytest.raises(TopologyError):
            random_regular_strict(5, 3, rng=rng)

    def test_invalid_parameters(self, rng):
        with pytest.raises(TopologyError):
            configuration_model(1, 1, rng=rng)
        with pytest.raises(TopologyError):
            configuration_model(10, 0, rng=rng)
        with pytest.raises(TopologyError):
            configuration_model(10, 10, rng=rng)


class TestRandomGeometric:
    def test_paper_radius(self):
        assert paper_rgg_radius(10**4) == pytest.approx(
            4.0 * np.sqrt(np.log(10**4))
        )

    def test_connected_after_stitching(self, rng):
        topo = random_geometric(200, radius=1.0, rng=rng)
        assert topo.is_connected()

    def test_positions_returned(self, rng):
        topo, pos = random_geometric(50, radius=3.0, rng=rng, return_positions=True)
        assert pos.shape == (50, 2)
        side = np.sqrt(50)
        assert pos.min() >= 0.0 and pos.max() <= side

    def test_edges_respect_radius(self, rng):
        radius = 2.0
        topo, pos = random_geometric(150, radius=radius, rng=rng, return_positions=True)
        # All original (non-stitched) edges must respect the radius; count
        # violations — only stitching edges (at most #components-1) may exceed.
        dist = np.linalg.norm(pos[topo.edge_u] - pos[topo.edge_v], axis=1)
        assert (dist > radius).sum() <= topo.n
        assert (dist <= radius).sum() >= topo.m_edges - 20

    def test_invalid_parameters(self, rng):
        with pytest.raises(TopologyError):
            random_geometric(1, rng=rng)
        with pytest.raises(TopologyError):
            random_geometric(10, radius=0.0, rng=rng)

    def test_dense_radius_gives_near_complete(self, rng):
        topo = random_geometric(30, radius=100.0, rng=rng)
        assert topo.m_edges == 30 * 29 // 2


class TestStandardGraphs:
    def test_cycle(self):
        topo = cycle(6)
        assert topo.m_edges == 6
        assert topo.min_degree == topo.max_degree == 2

    def test_path(self):
        topo = path(5)
        assert topo.m_edges == 4
        assert topo.degree(0) == 1
        assert topo.degree(2) == 2

    def test_complete(self):
        topo = complete(5)
        assert topo.m_edges == 10
        assert topo.min_degree == 4

    def test_star(self):
        topo = star(7)
        assert topo.degree(0) == 6
        assert topo.max_degree == 6
        assert topo.min_degree == 1

    def test_complete_bipartite(self):
        topo = complete_bipartite(2, 3)
        assert topo.n == 5
        assert topo.m_edges == 6
        assert topo.is_bipartite()

    def test_binary_tree(self):
        topo = binary_tree(3)
        assert topo.n == 15
        assert topo.m_edges == 14
        assert topo.degree(0) == 2

    def test_circulant(self):
        topo = circulant(10, [1, 2])
        assert topo.min_degree == topo.max_degree == 4
        assert topo.is_connected()

    def test_circulant_half_offset(self):
        topo = circulant(6, [3])
        assert topo.m_edges == 3  # perfect matching

    def test_expander_is_connected(self, rng):
        topo = expander(64, rng=rng)
        assert topo.is_connected()

    def test_lollipop_and_barbell(self):
        lolli = lollipop(4, 3)
        assert lolli.n == 7
        assert lolli.is_connected()
        bar = barbell(3, 2)
        assert bar.n == 8
        assert bar.is_connected()

    def test_invalid_sizes(self):
        with pytest.raises(TopologyError):
            cycle(2)
        with pytest.raises(TopologyError):
            path(1)
        with pytest.raises(TopologyError):
            complete(1)
        with pytest.raises(TopologyError):
            star(1)
        with pytest.raises(TopologyError):
            circulant(10, [])
