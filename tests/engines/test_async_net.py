"""Engine-level tests for the ``async`` backend and its config knobs.

Bit-level zero-latency equivalence against every other backend lives in
``test_cross_engine.py``; this file covers the async-only surface —
latency specs, the ``max_skew``/``faults`` knobs, the guard rejections on
the other backends, and the seeded-fault reproducibility regression.
"""

import numpy as np
import pytest

from repro import ConfigurationError, point_load, torus_2d
from repro.engines import EngineConfig, make_engine
from repro.engines.async_net import LATENCY_STREAM_KEY, resolve_link_latency
from repro.engines.base import parse_latency_spec
from repro.network import LinkOutage, RandomLinkDrop

TORUS = torus_2d(6, 6)


class TestLatencySpecs:
    def test_parse_forms(self):
        assert parse_latency_spec(None) is None
        assert parse_latency_spec(1.5) == ("fixed", 1.5)
        assert parse_latency_spec("2") == ("fixed", 2.0)
        assert parse_latency_spec("fixed:0.5") == ("fixed", 0.5)
        assert parse_latency_spec("uniform:0.5,2.5") == ("uniform", 0.5, 2.5)
        assert parse_latency_spec("exp:1.25") == ("exp", 1.25)

    @pytest.mark.parametrize(
        "bad",
        ["-1", "fixed:-2", "uniform:2,1", "uniform:1", "exp:-1",
         "gaussian:1", "fixed:abc", ""],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_latency_spec(bad)

    def test_resolve_fixed(self):
        cfg = EngineConfig(latency_model=1.5, seed=0)
        lat = resolve_link_latency(TORUS, cfg)
        assert lat.shape == (TORUS.m_edges,)
        assert np.all(lat == 1.5)

    def test_resolve_none_defers_to_topology(self):
        assert resolve_link_latency(TORUS, EngineConfig(seed=0)) is None

    def test_random_spec_is_seeded_and_replica_independent(self):
        cfg = EngineConfig(latency_model="uniform:0.5,2.5", seed=9)
        a = resolve_link_latency(TORUS, cfg)
        b = resolve_link_latency(TORUS, cfg)
        np.testing.assert_array_equal(a, b)
        assert np.all((a >= 0.5) & (a <= 2.5))
        expected = np.random.default_rng([9, LATENCY_STREAM_KEY]).uniform(
            0.5, 2.5, size=TORUS.m_edges
        )
        np.testing.assert_array_equal(a, expected)
        other = resolve_link_latency(
            TORUS, EngineConfig(latency_model="uniform:0.5,2.5", seed=10)
        )
        assert not np.array_equal(a, other)


class TestGuards:
    @pytest.mark.parametrize("engine", ["reference", "batched", "network"])
    def test_latency_model_rejected_off_async(self, engine):
        cfg = EngineConfig(rounds=2, latency_model=1.0)
        with pytest.raises(ConfigurationError, match="async engine only"):
            make_engine(engine).run(TORUS, cfg, point_load(TORUS, 100))

    @pytest.mark.parametrize("engine", ["reference", "batched", "network"])
    def test_max_skew_rejected_off_async(self, engine):
        cfg = EngineConfig(rounds=2, max_skew=1)
        with pytest.raises(ConfigurationError, match="async engine only"):
            make_engine(engine).run(TORUS, cfg, point_load(TORUS, 100))

    @pytest.mark.parametrize("engine", ["reference", "batched"])
    def test_faults_rejected_off_network(self, engine):
        cfg = EngineConfig(rounds=2, faults=RandomLinkDrop(0.1))
        with pytest.raises(ConfigurationError, match="network/async"):
            make_engine(engine).run(TORUS, cfg, point_load(TORUS, 100))

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(max_skew=-1).validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(latency_model="uniform:2,1").validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(faults="drop-everything").validate()


class TestAsyncBackend:
    def test_latency_run_converges_and_records(self):
        # FOS is the latency-robust scheme (SOS momentum on stale state is
        # unstable for beta well above 1 — the bench measures exactly that);
        # the recorded total_load excludes tokens in flight, so it sits a
        # little under the injected total while links are busy.
        total = 500 * TORUS.n
        cfg = EngineConfig(
            scheme="fos", rounding="randomized-excess",
            rounds=40, seed=2, latency_model=1.5,
        )
        result = make_engine("async").run(
            TORUS, cfg, point_load(TORUS, total)
        )[0]
        final_total = result.series("total_load")[-1]
        assert 0.9 * total <= final_total <= total
        assert result.final_state.load.max() - total / TORUS.n < 0.2 * total
        assert len(result.records) == 41

    def test_max_skew_run_through_engine(self):
        cfg = EngineConfig(
            scheme="fos", rounding="floor", rounds=20, seed=1,
            latency_model="exp:1.0", max_skew=2,
        )
        result = make_engine("async").run(
            TORUS, cfg, point_load(TORUS, 200 * TORUS.n)
        )[0]
        assert result.final_state.load.sum() <= 200 * TORUS.n  # rest in flight

    def test_seeded_faults_reproduce_engine_level(self):
        """Same seed => same fault schedule => identical trajectory (the
        RandomLinkDrop default used to be an unseeded fresh generator)."""
        cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="randomized-excess",
            rounds=30, seed=4, faults=RandomLinkDrop(0.3),
        )
        for engine in ("network", "async"):
            a = make_engine(engine).run(
                TORUS, cfg, point_load(TORUS, 1000 * TORUS.n)
            )[0]
            b = make_engine(engine).run(
                TORUS, cfg, point_load(TORUS, 1000 * TORUS.n)
            )[0]
            np.testing.assert_array_equal(
                a.final_state.load, b.final_state.load
            )
            for field in ("max_minus_avg", "total_load", "round_traffic"):
                np.testing.assert_array_equal(
                    a.series(field), b.series(field), err_msg=field
                )

    def test_seeded_faults_pinned_trajectory(self):
        """Pinned checksum so a silent change to the fault-rng derivation
        (seed -> [seed, FAULT_STREAM_KEY]) cannot slip through."""
        topo = torus_2d(4, 4)
        cfg = EngineConfig(
            scheme="fos", rounding="floor", rounds=12, seed=0,
            faults=RandomLinkDrop(0.5),
        )
        result = make_engine("network").run(
            topo, cfg, point_load(topo, 1600)
        )[0]
        load = result.final_state.load
        assert load.sum() == 1600.0
        pinned = [
            130.0, 113.0, 101.0, 118.0, 116.0, 87.0, 73.0, 99.0,
            104.0, 93.0, 65.0, 90.0, 129.0, 94.0, 67.0, 121.0,
        ]
        np.testing.assert_array_equal(load, pinned)

    def test_outage_faults_through_async_engine(self):
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding="nearest", rounds=15, seed=0,
            faults=LinkOutage([(0, 1)], start=2, end=6),
        )
        ref = make_engine("network").run(
            TORUS, cfg, point_load(TORUS, 300 * TORUS.n)
        )[0]
        got = make_engine("async").run(
            TORUS, cfg, point_load(TORUS, 300 * TORUS.n)
        )[0]
        np.testing.assert_array_equal(
            got.final_state.load, ref.final_state.load
        )
