"""Engine protocol, registry, and backend-behaviour tests."""

import numpy as np
import pytest

from repro import ConfigurationError, RoundingError, SchemeError, point_load, torus_2d
from repro.engines import (
    ENGINES,
    EngineConfig,
    make_engine,
    make_switch_policy,
    run_replicas,
)
from repro.core.hybrid import FixedRoundSwitch


class TestRegistry:
    def test_known_engines(self):
        assert set(ENGINES) == {
            "reference", "batched", "sharded", "network", "async",
            "staleness",
        }

    def test_make_engine_by_name_and_passthrough(self):
        engine = make_engine("batched")
        assert engine.name == "batched"
        assert make_engine(engine) is engine

    def test_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            make_engine("gpu")


class TestConfig:
    def test_validate_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(scheme="chebyshev").validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(rounds=-1).validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(record_every=0).validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(precision="float16").validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(switch=("sometimes", 3)).validate()

    def test_switch_policy_factory(self):
        assert make_switch_policy(None) is None
        assert isinstance(make_switch_policy(("fixed", 5)), FixedRoundSwitch)
        # each call builds a fresh policy: replicas must not share state
        assert make_switch_policy(("fixed", 5)) is not make_switch_policy(
            ("fixed", 5)
        )

    def test_switch_policy_instances_rejected(self):
        # a shared instance would interleave every replica's history
        with pytest.raises(ConfigurationError):
            make_switch_policy(FixedRoundSwitch(2))
        with pytest.raises(ConfigurationError):
            EngineConfig(switch=FixedRoundSwitch(2)).validate()

    def test_batched_rejects_bad_beta_and_rounding(self, small_torus):
        load = point_load(small_torus, 100)
        with pytest.raises(SchemeError):
            make_engine("batched").prepare(
                small_torus, EngineConfig(scheme="sos", beta=2.5), load
            )
        with pytest.raises(RoundingError):
            make_engine("batched").prepare(
                small_torus, EngineConfig(rounding="stochastic"), load
            )

    def test_float32_only_on_batched(self, small_torus):
        load = point_load(small_torus, 100)
        config = EngineConfig(rounding="nearest", rounds=2, precision="float32")
        for name in ("reference", "network"):
            with pytest.raises(ConfigurationError):
                make_engine(name).prepare(small_torus, config, load)
        results = make_engine("batched").run(small_torus, config, load)
        assert results[0].final_state.load.sum() == 100.0


@pytest.mark.parametrize("engine", ["reference", "batched", "network"])
class TestProtocol:
    def test_prepare_step_metrics(self, engine, small_torus):
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=6, seed=0
        )
        backend = make_engine(engine)
        load = point_load(small_torus, 1000 * small_torus.n)
        handle = backend.prepare(small_torus, config, load)
        for expected_round in range(1, 7):
            batch = backend.step(handle)
            assert batch.round_index == expected_round
            assert batch.loads.shape == (1, small_torus.n)
            assert batch.flows.shape == (1, small_torus.m_edges)
            assert batch.min_transient.shape == (1,)
            assert batch.traffic.shape == (1,)
        results = backend.metrics(handle).results()
        assert len(results) == 1
        result = results[0]
        assert result.final_state.round_index == 6
        assert len(result.table) == 7  # round 0 + 6 rounds
        assert result.final_state.load.sum() == 1000 * small_torus.n

    def test_run_batch_returns_per_replica_results(self, engine, small_torus):
        loads = np.stack(
            [point_load(small_torus, 640 * small_torus.n, node=i) for i in range(3)]
        )
        config = EngineConfig(scheme="fos", rounding="floor", rounds=5, seed=0)
        results = make_engine(engine).run(small_torus, config, loads)
        assert len(results) == 3
        for b, result in enumerate(results):
            assert result.final_state.load.sum() == 640 * small_torus.n
            assert result.series("total_load").shape == (6,)
            assert result.switched_at is None

    def test_engine_does_not_mutate_initial_loads(self, engine, small_torus):
        load = point_load(small_torus, 1000 * small_torus.n)
        baseline = load.copy()
        config = EngineConfig(scheme="sos", beta=1.5, rounding="nearest", rounds=8)
        make_engine(engine).run(small_torus, config, load)
        np.testing.assert_array_equal(load, baseline)

    def test_keep_loads_history(self, engine, small_torus):
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=6,
            record_every=2, keep_loads=True,
        )
        load = point_load(small_torus, 1000 * small_torus.n)
        result = make_engine(engine).run(small_torus, config, load)[0]
        assert result.rounds.tolist() == [0, 2, 4, 6]
        assert len(result.loads_history) == 4
        assert result.loads_history[0].shape == (small_torus.n,)
        np.testing.assert_array_equal(
            result.loads_history[-1], result.final_state.load
        )

    def test_terminal_record_forced(self, engine, small_torus):
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=7, record_every=3
        )
        load = point_load(small_torus, 1000 * small_torus.n)
        result = make_engine(engine).run(small_torus, config, load)[0]
        assert result.rounds.tolist() == [0, 3, 6, 7]


class TestRunReplicas:
    def test_convenience_wrapper(self):
        topo = torus_2d(4, 4)
        loads = np.tile(point_load(topo, 1000 * topo.n), (4, 1))
        config = EngineConfig(scheme="sos", beta=1.5, rounding="nearest", rounds=10)
        results = run_replicas(topo, config, loads)  # batched by default
        assert len(results) == 4
        # identical inputs + deterministic rounding => identical replicas
        for result in results[1:]:
            np.testing.assert_array_equal(
                result.final_state.load, results[0].final_state.load
            )

    def test_bad_shape_rejected(self, small_torus):
        config = EngineConfig(rounds=1)
        with pytest.raises(ConfigurationError):
            run_replicas(small_torus, config, np.zeros((2, small_torus.n + 1)))


class TestBatchedSwitching:
    def test_per_replica_local_diff_switching(self):
        """Replicas with different starts switch at different rounds."""
        topo = torus_2d(6, 6)
        loads = np.stack(
            [
                point_load(topo, 200 * topo.n),  # heavy: switches late
                np.full(topo.n, 200.0),  # already balanced: switches instantly
            ]
        )
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=120,
            switch=("local-diff", 10.0, 1),
        )
        results = make_engine("batched").run(topo, config, loads)
        assert results[1].switched_at == 1
        assert results[0].switched_at is None or results[0].switched_at > 1

    def test_step_reports_switch_round(self, small_torus):
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=5,
            switch=("fixed", 3),
        )
        backend = make_engine("batched")
        handle = backend.prepare(
            small_torus, config, point_load(small_torus, 1000 * small_torus.n)
        )
        switch_rounds = [
            backend.step(handle).switched.tolist() for _ in range(5)
        ]
        assert switch_rounds == [[False], [False], [True], [False], [False]]
