"""The closed-form continuous fast path: matmul and spectral tiers.

The identity-rounding SOS recurrence ``x(t+1) = beta M x(t) + (1-beta)
x(t-1)`` must reproduce the edge-wise batched path to float accumulation
accuracy (ulp-level over short horizons), agree with the dense spectral
theory of ``core/spectral.py``, honour the eligibility rules, and fill the
excluded transient/traffic columns with NaN.
"""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    point_load,
    random_load,
    torus_2d,
)
from repro.core.spectral import q_matrix_at, torus_rfft_eigenvalues
from repro.core.matrices import diffusion_matrix
from repro.engines import EngineConfig, make_engine
from repro.graphs import random_regular_strict

#: Every record column the fast path can compute (no edge-space history).
NODE_FIELDS = (
    "max_minus_avg", "min_minus_avg", "potential_per_node", "min_load",
    "total_load", "max_local_diff",
)

TORUS = torus_2d(10, 12)
RR = random_regular_strict(36, 4, rng=np.random.default_rng(2))


def _loads(topo, n_replicas):
    rng = np.random.default_rng(11)
    rows = [point_load(topo, 1000 * topo.n)]
    rows += [
        random_load(topo, 500 * topo.n, rng=rng) for _ in range(n_replicas - 1)
    ]
    return np.stack(rows)


def _config(**kwargs):
    base = dict(
        scheme="sos", beta=1.6, rounding="identity", rounds=60,
        record_every=4, seed=0, record_fields=NODE_FIELDS,
    )
    base.update(kwargs)
    return EngineConfig(**base)


class TestEquivalence:
    @pytest.mark.parametrize("mode", ["matmul", "spectral"])
    @pytest.mark.parametrize("scheme,beta", [("fos", 1.0), ("sos", 1.6)])
    @pytest.mark.parametrize("n_replicas", [1, 5])
    def test_matches_edgewise_identity(self, mode, scheme, beta, n_replicas):
        topo = TORUS
        loads = _loads(topo, n_replicas)
        edge = make_engine("batched").run(
            topo, _config(scheme=scheme, beta=beta, fast_path="never"), loads
        )
        fast = make_engine("batched").run(
            topo, _config(scheme=scheme, beta=beta, fast_path=mode), loads
        )
        for f_res, e_res in zip(fast, edge):
            np.testing.assert_allclose(
                f_res.final_state.load, e_res.final_state.load,
                rtol=1e-10, atol=1e-7,
            )
            np.testing.assert_array_equal(f_res.rounds, e_res.rounds)
            for fieldname in NODE_FIELDS:
                np.testing.assert_allclose(
                    f_res.series(fieldname), e_res.series(fieldname),
                    rtol=1e-8, atol=1e-6, err_msg=fieldname,
                )

    def test_matmul_on_unstructured_graph(self):
        loads = _loads(RR, 3)
        edge = make_engine("batched").run(RR, _config(fast_path="never"), loads)
        fast = make_engine("batched").run(RR, _config(fast_path="auto"), loads)
        for f_res, e_res in zip(fast, edge):
            np.testing.assert_allclose(
                f_res.final_state.load, e_res.final_state.load,
                rtol=1e-10, atol=1e-7,
            )

    def test_heterogeneous_speeds_matmul(self):
        topo = TORUS
        speeds = 1.0 + np.random.default_rng(5).random(topo.n)
        loads = _loads(topo, 2)
        edge = make_engine("batched").run(
            topo, _config(fast_path="never", speeds=speeds), loads
        )
        fast = make_engine("batched").run(
            topo, _config(fast_path="auto", speeds=speeds), loads
        )
        for f_res, e_res in zip(fast, edge):
            np.testing.assert_allclose(
                f_res.final_state.load, e_res.final_state.load,
                rtol=1e-9, atol=1e-6,
            )

    def test_matches_reference_engine(self):
        """End to end: fast path == classic simulator identity process."""
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        ref = make_engine("reference").run(
            topo,
            EngineConfig(scheme="sos", beta=1.6, rounding="identity",
                         rounds=50, seed=0),
            load,
        )[0]
        fast = make_engine("batched").run(topo, _config(rounds=50), load)[0]
        np.testing.assert_allclose(
            fast.final_state.load, ref.final_state.load, rtol=1e-10, atol=1e-7
        )


class TestSpectralTheory:
    def test_fos_matches_q_matrix_power(self):
        """FOS identity: x(t) = M^t x(0) = Q(t)|_{beta=1} x(0) exactly."""
        topo = TORUS
        load = point_load(topo, 1000.0 * topo.n)
        t = 20
        fast = make_engine("batched").run(
            topo, _config(scheme="fos", beta=1.0, rounds=t, record_every=t),
            load,
        )[0]
        m_dense = diffusion_matrix(topo)
        predicted = q_matrix_at(m_dense, 1.0, t) @ load
        np.testing.assert_allclose(
            fast.final_state.load, predicted, rtol=1e-8, atol=1e-6
        )

    def test_sos_matches_dense_recurrence(self):
        """SOS identity (FOS opening round) == the dense three-term
        recurrence iterated with numpy — an implementation-independent
        check of both fast tiers."""
        topo = TORUS
        beta = 1.6
        load = random_load(topo, 800 * topo.n, rng=np.random.default_rng(9))
        t = 25
        m_dense = diffusion_matrix(topo)
        x_prev = load.copy()
        x = m_dense @ load
        for _ in range(2, t + 1):
            x, x_prev = beta * (m_dense @ x) + (1.0 - beta) * x_prev, x
        for mode in ("matmul", "spectral"):
            fast = make_engine("batched").run(
                topo,
                _config(beta=beta, rounds=t, record_every=t, fast_path=mode),
                load,
            )[0]
            np.testing.assert_allclose(
                fast.final_state.load, x, rtol=1e-9, atol=1e-6, err_msg=mode
            )

    def test_torus_rfft_eigenvalues_match_dense_spectrum(self):
        """The rfftn-layout eigenvalues are exactly the dense spectrum."""
        topo = torus_2d(6, 7)
        alpha = 1.0 / 5.0
        mu = torus_rfft_eigenvalues((6, 7), alpha)
        assert mu.shape == (6, 7 // 2 + 1)
        dense = np.sort(np.linalg.eigvalsh(diffusion_matrix(topo)))
        # Expand the half-spectrum back to full multiplicity.
        full = np.empty((6, 7))
        full[:, : 7 // 2 + 1] = mu
        for a2 in range(7 // 2 + 1, 7):
            full[:, a2] = mu[:, 7 - a2]
        np.testing.assert_allclose(np.sort(full.ravel()), dense, atol=1e-12)

    def test_rejects_bad_torus_sides(self):
        with pytest.raises(ConfigurationError):
            torus_rfft_eigenvalues((2, 5), 0.2)


class TestEligibility:
    def test_auto_requires_identity(self):
        """Discrete roundings never take the fast path: bit-exactness of the
        cross-engine suite is the proof, here we just check the records
        still carry real transient data with default fields."""
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=20, seed=0
        )
        res = make_engine("batched").run(topo, config, load)[0]
        assert np.isfinite(res.series("min_transient")).all()
        assert np.isfinite(res.series("round_traffic")).all()

    def test_forced_fast_path_needs_identity(self):
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        config = _config(rounding="nearest", fast_path="matmul")
        with pytest.raises(ConfigurationError, match="blocked"):
            make_engine("batched").run(topo, config, load)

    def test_forced_fast_path_needs_trimmed_fields(self):
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        config = _config(record_fields=None, fast_path="spectral")
        with pytest.raises(ConfigurationError, match="min_transient"):
            make_engine("batched").run(topo, config, load)

    def test_forced_spectral_needs_torus(self):
        load = point_load(RR, 1000 * RR.n)
        with pytest.raises(ConfigurationError, match="grid_shape"):
            make_engine("batched").run(RR, _config(fast_path="spectral"), load)

    def test_forced_spectral_needs_uniform_speeds(self):
        load = point_load(TORUS, 1000 * TORUS.n)
        speeds = 1.0 + np.arange(TORUS.n, dtype=np.float64) / TORUS.n
        config = _config(fast_path="spectral", speeds=speeds)
        with pytest.raises(ConfigurationError, match="speeds"):
            make_engine("batched").run(TORUS, config, load)

    def test_forced_spectral_needs_uniform_alphas(self):
        load = point_load(TORUS, 1000 * TORUS.n)
        alphas = np.full(TORUS.m_edges, 0.2)
        alphas[0] = 0.1
        config = _config(fast_path="spectral", alphas=alphas)
        with pytest.raises(ConfigurationError, match="alphas"):
            make_engine("batched").run(TORUS, config, load)

    def test_auto_falls_back_to_matmul_on_heterogeneous_speeds(self):
        """auto on a torus with heterogeneous speeds: still fast, matmul."""
        load = point_load(TORUS, 1000 * TORUS.n)
        speeds = 1.0 + np.arange(TORUS.n, dtype=np.float64) / TORUS.n
        edge = make_engine("batched").run(
            TORUS, _config(fast_path="never", speeds=speeds), load
        )[0]
        auto = make_engine("batched").run(
            TORUS, _config(fast_path="auto", speeds=speeds), load
        )[0]
        np.testing.assert_allclose(
            auto.final_state.load, edge.final_state.load, rtol=1e-9, atol=1e-6
        )

    def test_switch_blocks_fast_path(self):
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        config = _config(switch=("fixed", 10), fast_path="matmul")
        with pytest.raises(ConfigurationError, match="switch"):
            make_engine("batched").run(topo, config, load)

    def test_prepare_rejects_forced_fast_path(self):
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        with pytest.raises(ConfigurationError, match="prepare"):
            make_engine("batched").prepare(topo, _config(fast_path="matmul"), load)

    def test_excluded_columns_are_nan(self):
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        res = make_engine("batched").run(topo, _config(), load)[0]
        assert np.isnan(res.series("min_transient")).all()
        assert np.isnan(res.series("round_traffic")).all()
        assert np.isfinite(res.series("max_minus_avg")).all()
        # zero flows: the continuous scheduled flows are never materialised
        np.testing.assert_array_equal(
            res.final_state.flows, np.zeros(topo.m_edges)
        )

    def test_keep_loads_on_fast_path(self):
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        res = make_engine("batched").run(
            topo, _config(keep_loads=True, rounds=12, record_every=4), load
        )[0]
        assert len(res.loads_history) == len(res.rounds)
        np.testing.assert_allclose(
            res.loads_history[-1], res.final_state.load, rtol=1e-12
        )

    def test_reference_engine_rejects_batched_only_options(self):
        topo = TORUS
        load = point_load(topo, 1000 * topo.n)
        for kwargs in (
            dict(record_fields=NODE_FIELDS),
            dict(tile_size=8),
            dict(record_mode="summary"),
            dict(fast_path="matmul"),
        ):
            config = EngineConfig(
                scheme="sos", beta=1.6, rounding="identity", rounds=5, **kwargs
            )
            with pytest.raises(ConfigurationError, match="batched"):
                make_engine("reference").run(topo, config, load)


class TestHypercubeSpectral:
    """The Walsh–Hadamard spectral tier (cube_dim hint, FWHT kernel)."""

    CUBE = None

    @classmethod
    def setup_class(cls):
        from repro.graphs import hypercube

        cls.CUBE = hypercube(6)

    def test_cube_dim_hint_set(self):
        assert self.CUBE.cube_dim == 6
        assert TORUS.cube_dim is None

    @pytest.mark.parametrize("scheme,beta", [("fos", 1.0), ("sos", 1.5)])
    @pytest.mark.parametrize("n_replicas", [1, 4])
    def test_matches_edgewise_identity(self, scheme, beta, n_replicas):
        topo = self.CUBE
        loads = _loads(topo, n_replicas)
        edge = make_engine("batched").run(
            topo, _config(scheme=scheme, beta=beta, fast_path="never"), loads
        )
        fast = make_engine("batched").run(
            topo, _config(scheme=scheme, beta=beta, fast_path="spectral"),
            loads,
        )
        for f_res, e_res in zip(fast, edge):
            np.testing.assert_allclose(
                f_res.final_state.load, e_res.final_state.load,
                rtol=1e-10, atol=1e-7,
            )
            for fieldname in NODE_FIELDS:
                np.testing.assert_allclose(
                    f_res.series(fieldname), e_res.series(fieldname),
                    rtol=1e-8, atol=1e-6, err_msg=fieldname,
                )

    def test_auto_prefers_spectral_on_hypercube(self):
        topo = self.CUBE
        loads = _loads(topo, 2)
        auto = make_engine("batched").run(topo, _config(), loads)
        forced = make_engine("batched").run(
            topo, _config(fast_path="spectral"), loads
        )
        for a_res, f_res in zip(auto, forced):
            np.testing.assert_array_equal(
                a_res.final_state.load, f_res.final_state.load
            )

    def test_sos_matches_dense_recurrence(self):
        topo = self.CUBE
        beta = 1.5
        load = random_load(topo, 800 * topo.n, rng=np.random.default_rng(3))
        t = 20
        m_dense = diffusion_matrix(topo)
        x_prev = load.copy()
        x = m_dense @ load
        for _ in range(2, t + 1):
            x, x_prev = beta * (m_dense @ x) + (1.0 - beta) * x_prev, x
        fast = make_engine("batched").run(
            topo,
            _config(beta=beta, rounds=t, record_every=t, fast_path="spectral"),
            load,
        )[0]
        np.testing.assert_allclose(
            fast.final_state.load, x, rtol=1e-9, atol=1e-6
        )

    def test_float32_spectral_runs(self):
        topo = self.CUBE
        res = make_engine("batched").run(
            topo, _config(precision="float32", fast_path="spectral"),
            point_load(topo, 1000 * topo.n),
        )[0]
        np.testing.assert_allclose(
            res.series("total_load")[-1], 1000.0 * topo.n, rtol=1e-4
        )


def test_fast_path_validates_beta_range():
    """The fused run() enforces the SOS beta range even when the fast path
    bypasses prepare()."""
    from repro import SchemeError

    load = point_load(TORUS, 1000 * TORUS.n)
    for fast_path in ("never", "auto"):
        with pytest.raises(SchemeError, match="beta"):
            make_engine("batched").run(
                TORUS, _config(beta=2.5, fast_path=fast_path), load
            )
