"""Cross-engine dynamic equivalence: all backends, trace for trace.

For deterministic roundings every dynamic run — arrivals applied, then one
balancing step, per round — must agree *bit for bit* across the reference,
batched, and network backends, on the torus, the hypercube, and a
random-regular graph, with Poisson, burst, and hotspot arrival models, for
B=1 and B>1.  The engine stream layout also makes engine replica 0
reproduce a standalone ``DynamicSimulator`` seeded with
``arrival_stream(seed, 0)`` exactly.
"""

import numpy as np
import pytest

from repro import (
    BurstArrivals,
    DynamicSimulator,
    HotspotArrivals,
    LoadBalancingProcess,
    PoissonArrivals,
    SecondOrderScheme,
    arrival_stream,
    hypercube,
    point_load,
    torus_2d,
    uniform_load,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.graphs import random_regular_strict
from repro.engines import EngineConfig, make_engine, run_dynamic_replicas

ENGINE_NAMES = ["reference", "batched", "network"]

#: Dynamic record columns that must be bit-identical across engines for
#: deterministic roundings (the potential column is a sum of squares whose
#: accumulation order differs between 1-D and batched reductions, so it is
#: compared at 1e-12 like the static suite does).
EXACT_FIELDS = (
    "round_index",
    "total_load",
    "arrived",
    "departed",
    "clamped",
    "max_minus_avg",
    "max_local_diff",
)


def _topologies():
    rng = np.random.default_rng(7)
    return {
        "torus": torus_2d(5, 6),
        "hypercube": hypercube(5),
        "random-regular": random_regular_strict(24, 3, rng=rng),
    }


TOPOLOGIES = _topologies()

MODELS = {
    "poisson": lambda: PoissonArrivals(rate=2.0, departure_rate=1.0),
    "burst": lambda: BurstArrivals(burst=150, period=7),
    "hotspot": lambda: HotspotArrivals(nodes=[0, 3], rate=4),
}


def _config(model, rounds=25, seed=3, **kwargs):
    return EngineConfig(
        scheme=kwargs.pop("scheme", "sos"),
        beta=kwargs.pop("beta", 1.7),
        rounding=kwargs.pop("rounding", "nearest"),
        rounds=rounds,
        seed=seed,
        arrivals=model,
        **kwargs,
    )


def _assert_same_dynamic(result, reference):
    np.testing.assert_array_equal(
        result.final_state.load, reference.final_state.load
    )
    for fieldname in EXACT_FIELDS:
        np.testing.assert_array_equal(
            result.series(fieldname),
            reference.series(fieldname),
            err_msg=fieldname,
        )
    np.testing.assert_allclose(
        result.series("potential_per_node"),
        reference.series("potential_per_node"),
        rtol=1e-12,
    )


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_single_replica_equivalence(topo_name, model_name):
    topo = TOPOLOGIES[topo_name]
    load = uniform_load(topo, 50)
    reference = make_engine("reference").run_dynamic(
        topo, _config(MODELS[model_name]()), load
    )[0]
    for name in ("batched", "network"):
        result = make_engine(name).run_dynamic(
            topo, _config(MODELS[model_name]()), load
        )[0]
        _assert_same_dynamic(result, reference)


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_engine_replica_matches_plain_dynamic_simulator(model_name):
    """Replica 0 of every backend IS a DynamicSimulator run under the
    engine stream layout (rounding default_rng(seed), arrivals
    arrival_stream(seed, 0)) — the tentpole's B=1 bit-exactness contract."""
    topo = TOPOLOGIES["torus"]
    load = uniform_load(topo, 50)
    seed = 3
    process = LoadBalancingProcess(
        SecondOrderScheme(topo, beta=1.7),
        rounding="nearest",
        rng=np.random.default_rng(seed),
    )
    plain = DynamicSimulator(
        process, MODELS[model_name](), rng=arrival_stream(seed, 0)
    ).run(load, 25)
    for name in ENGINE_NAMES:
        result = make_engine(name).run_dynamic(
            topo, _config(MODELS[model_name](), seed=seed), load
        )[0]
        _assert_same_dynamic(result, plain)


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_multi_replica_batch_matches_reference_rows(topo_name, model_name):
    """B > 1: every row of the batched and network runs equals its own
    reference replica — same spawned arrival stream per row."""
    topo = TOPOLOGIES[topo_name]
    loads = np.stack(
        [
            uniform_load(topo, 50),
            point_load(topo, 40 * topo.n),
            uniform_load(topo, 10),
        ]
    )
    config = _config(MODELS[model_name](), rounds=20)
    reference = make_engine("reference").run_dynamic(topo, config, loads)
    for name in ("batched", "network"):
        results = make_engine(name).run_dynamic(topo, config, loads)
        assert len(results) == len(reference) == 3
        for result, ref in zip(results, reference):
            _assert_same_dynamic(result, ref)


@pytest.mark.parametrize("rounding", ["floor", "ceil"])
def test_other_deterministic_roundings_agree(rounding):
    topo = TOPOLOGIES["hypercube"]
    load = uniform_load(topo, 30)
    config = _config(MODELS["poisson"](), rounding=rounding)
    reference = make_engine("reference").run_dynamic(topo, config, load)[0]
    for name in ("batched", "network"):
        result = make_engine(name).run_dynamic(topo, config, load)[0]
        _assert_same_dynamic(result, reference)


def test_fos_dynamic_equivalence():
    topo = TOPOLOGIES["torus"]
    load = uniform_load(topo, 50)
    config = _config(MODELS["poisson"](), scheme="fos", beta=1.0)
    reference = make_engine("reference").run_dynamic(topo, config, load)[0]
    for name in ("batched", "network"):
        result = make_engine(name).run_dynamic(topo, config, load)[0]
        _assert_same_dynamic(result, reference)


def test_protocol_level_arrive_step_loop_matches_fused_run():
    """Driving arrive()/step() by hand equals the fused run_dynamic()."""
    topo = TOPOLOGIES["torus"]
    load = uniform_load(topo, 50)
    for name in ENGINE_NAMES:
        engine = make_engine(name)
        fused = engine.run_dynamic(topo, _config(MODELS["poisson"]()), load)[0]
        handle = engine.prepare(topo, _config(MODELS["poisson"]()), load)
        for _ in range(25):
            batch = engine.arrive(handle)
            assert batch.arrived.shape == (1,)
            assert np.all(batch.arrived >= 0.0)
            assert np.all(batch.departed >= 0.0)
            assert np.all(batch.clamped >= 0.0)
            engine.step(handle)
        manual = engine.metrics(handle).dynamic_results()[0]
        _assert_same_dynamic(manual, fused)


def test_randomized_rounding_conserves_and_plateaus():
    """Randomized draws differ across engines, but the token accounting is
    exact everywhere and both land on the same bounded plateau."""
    topo = torus_2d(8, 8)
    load = uniform_load(topo, 100)
    config = _config(
        PoissonArrivals(rate=3.0, departure_rate=3.0),
        rounds=150,
        rounding="randomized-excess",
        seed=5,
    )
    results = {
        name: make_engine(name).run_dynamic(topo, config, load)[0]
        for name in ENGINE_NAMES
    }
    for name, result in results.items():
        totals = result.series("total_load")
        replay = float(load.sum()) + np.cumsum(
            result.series("arrived") - result.series("departed")
        )
        np.testing.assert_array_equal(totals, replay, err_msg=name)
        assert result.steady_state_imbalance() < 40.0, name
    # Arrival draws share the stream layout, so the injected volumes agree
    # bit for bit even though the rounding streams differ.
    np.testing.assert_array_equal(
        results["reference"].series("arrived"),
        results["batched"].series("arrived"),
    )
    np.testing.assert_array_equal(
        results["reference"].series("arrived"),
        results["network"].series("arrived"),
    )


def test_dynamic_rejects_switch_and_static_run():
    topo = TOPOLOGIES["torus"]
    load = uniform_load(topo, 50)
    with pytest.raises(ConfigurationError):
        EngineConfig(
            arrivals=PoissonArrivals(1.0), switch=("fixed", 5)
        ).validate()
    for name in ENGINE_NAMES:
        engine = make_engine(name)
        with pytest.raises(ConfigurationError):
            engine.run(topo, _config(MODELS["poisson"]()), load)
        with pytest.raises(ConfigurationError):
            engine.run_dynamic(
                topo,
                EngineConfig(scheme="sos", beta=1.7, rounds=5),
                load,
            )


def test_double_arrive_raises():
    topo = TOPOLOGIES["torus"]
    load = uniform_load(topo, 50)
    for name in ENGINE_NAMES:
        engine = make_engine(name)
        handle = engine.prepare(topo, _config(MODELS["poisson"]()), load)
        engine.arrive(handle)
        with pytest.raises(SimulationError):
            engine.arrive(handle)


def test_float32_dynamic_stays_integral_and_conserved():
    topo = torus_2d(8, 8)
    load = uniform_load(topo, 100)
    config = _config(
        PoissonArrivals(rate=2.0, departure_rate=1.0),
        rounds=100,
        rounding="randomized-excess",
        precision="float32",
    )
    result = run_dynamic_replicas(topo, config, load, engine="batched")[0]
    final = result.final_state.load
    assert np.all(final == np.round(final))
    replay = float(load.sum()) + np.cumsum(
        result.series("arrived") - result.series("departed")
    )
    np.testing.assert_array_equal(result.series("total_load"), replay)
