"""Differential harness: ``staleness`` vs ``AsyncNetwork`` vs zero-latency
sync.

The staleness engine's headline contract is **bit-identity to the
event-driven async backend** whenever the event queue stays in per-round
lockstep: integer latency buckets, every bucket ``<= max_skew`` (or no
gate), deterministic roundings — static, dynamic, and under per-message
faults.  This module drives both implementations over a grid of integer
latency assignments × ``max_skew`` × rounding × faults × batch widths
and compares whole recorded trajectories bit for bit, plus the exact
token-conservation ledger (in-flight/bucketed tokens).

Zero latency everywhere collapses the contract further: staleness ==
async == sync network == batched, so the same harness pins the engine to
the synchronous semantics too.
"""

import numpy as np
import pytest

from repro import ConfigurationError, point_load, torus_2d
from repro.core.records import DYNAMIC_FIELDS, RECORD_FIELDS
from repro.engines import EngineConfig, ReplicaParams, make_engine
from repro.engines.staleness import quantize_link_latency

TORUS = torus_2d(4, 4)
#: A second topology carrying *stamped* random integer buckets in 0..3
#: (the per-edge assignment regime, as opposed to a uniform latency spec).
BUCKETS = np.random.default_rng(7).integers(0, 4, TORUS.m_edges).astype(float)
STAMPED = torus_2d(4, 4).stamp_link_attrs(latency=BUCKETS)

ROUNDS = 10


def _loads(topo, B):
    base = point_load(topo, 100 * topo.n)
    return np.stack([np.roll(base, 3 * b) for b in range(B)])


def _run(engine, topo, config, loads):
    return make_engine(engine).run(topo, config, loads)


def assert_results_identical(got, want):
    """Whole-trajectory bit equality: every record column of every
    replica, the final load/flow state, and the switch bookkeeping."""
    assert len(got) == len(want)
    for b, (g, w) in enumerate(zip(got, want)):
        for name in RECORD_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(g.table.column(name)),
                np.asarray(w.table.column(name)),
                err_msg=f"replica {b}, column {name!r}",
            )
        np.testing.assert_array_equal(g.final_state.load, w.final_state.load)
        np.testing.assert_array_equal(g.final_state.flows, w.final_state.flows)
        assert g.final_state.round_index == w.final_state.round_index
        assert g.switched_at == w.switched_at


def assert_dynamic_identical(got, want):
    assert len(got) == len(want)
    for b, (g, w) in enumerate(zip(got, want)):
        for name in DYNAMIC_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(g.table.column(name)),
                np.asarray(w.table.column(name)),
                err_msg=f"replica {b}, column {name!r}",
            )
        np.testing.assert_array_equal(g.final_state.load, w.final_state.load)


#: (label, topology, latency_model, max_skew) — integer assignments whose
#: buckets all sit at or under the skew gate (the lockstep regime).
SCENARIOS = [
    ("zero", TORUS, None, None),
    ("fixed2", TORUS, "2", None),
    ("fixed3-skew5", TORUS, "fixed:3", 5),
    ("buckets", STAMPED, None, None),
    ("buckets-skew", STAMPED, None, 3),
]

FAULT_SPECS = [None, "drop:0.3", "outage:0:1:2:6"]


class TestDifferentialGrid:
    @pytest.mark.parametrize("faults", FAULT_SPECS)
    @pytest.mark.parametrize("rounding", ["floor", "nearest", "ceil"])
    @pytest.mark.parametrize(
        "label,topo,latency,skew", SCENARIOS, ids=[s[0] for s in SCENARIOS]
    )
    def test_static_bit_identity(self, label, topo, latency, skew, rounding, faults):
        for B in (1, 8):
            cfg = EngineConfig(
                scheme="sos", beta=1.6, rounding=rounding, rounds=ROUNDS,
                seed=3, latency_model=latency, max_skew=skew, faults=faults,
                record_every=3, switch=("fixed", 6),
            )
            loads = _loads(topo, B)
            assert_results_identical(
                _run("staleness", topo, cfg, loads),
                _run("async", topo, cfg, loads),
            )

    @pytest.mark.parametrize("faults", FAULT_SPECS)
    def test_fos_bit_identity(self, faults):
        cfg = EngineConfig(
            scheme="fos", rounding="floor", rounds=ROUNDS, seed=1,
            latency_model="fixed:2", faults=faults,
        )
        loads = _loads(TORUS, 8)
        assert_results_identical(
            _run("staleness", TORUS, cfg, loads),
            _run("async", TORUS, cfg, loads),
        )

    @pytest.mark.parametrize("engine", ["network", "batched"])
    def test_zero_latency_matches_sync(self, engine):
        """With every bucket at 0 the async regime *is* the synchronous
        one, so staleness must match the sync backends bit for bit too."""
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding="floor", rounds=ROUNDS,
            seed=0, record_every=2,
        )
        loads = _loads(TORUS, 4)
        assert_results_identical(
            _run("staleness", TORUS, cfg, loads),
            _run(engine, TORUS, cfg, loads),
        )


class TestDynamicDifferential:
    @pytest.mark.parametrize("faults", [None, "drop:0.25"])
    @pytest.mark.parametrize("latency,skew", [("fixed:2", 4), (None, None)])
    def test_dynamic_bit_identity(self, latency, skew, faults):
        cfg = EngineConfig(
            scheme="fos", rounding="floor", rounds=8, seed=2,
            latency_model=latency, max_skew=skew, faults=faults,
            arrivals="poisson:40",
        )
        for B in (1, 8):
            loads = _loads(STAMPED, B)
            got = make_engine("staleness").run_dynamic(STAMPED, cfg, loads)
            want = make_engine("async").run_dynamic(STAMPED, cfg, loads)
            assert_dynamic_identical(got, want)


class TestConservationLedger:
    def test_in_flight_ledger_is_exact(self):
        """loads + in-flight is constant every round of a faulted run on
        random buckets, and the whole ledger (amount, message count,
        delivered/bounced totals, staleness stats) matches the event
        engine's counters replica for replica."""
        B = 4
        cfg = EngineConfig(
            scheme="fos", rounding="floor", rounds=12, seed=5,
            faults="drop:0.3", max_skew=6,
        )
        loads = _loads(STAMPED, B)
        eng_s, eng_a = make_engine("staleness"), make_engine("async")
        hs = eng_s.prepare(STAMPED, cfg, loads)
        ha = eng_a.prepare(STAMPED, cfg, loads)
        total0 = hs.core.total_load().copy()
        np.testing.assert_array_equal(total0, loads.sum(axis=1))
        for _ in range(12):
            eng_s.step(hs)
            eng_a.step(ha)
            # Exact conservation: shipped and bounced tokens never leak.
            np.testing.assert_array_equal(hs.core.total_load(), total0)
        for b in range(B):
            net = ha.replicas[b].net
            assert hs.core.total_load()[b] == net.total_load
            assert hs.core.in_flight_amount[b] == net._in_flight_amount
            assert hs.core.in_flight_messages[b] == net.in_flight
            assert hs.core.delivered_count[b] == net.delivered_count
            assert hs.core.bounced_count[b] == net.bounced_count
            assert hs.core.max_staleness == net.max_staleness
            assert hs.core.mean_staleness == pytest.approx(
                net.mean_staleness, abs=1e-12
            )

    def test_dynamic_ledger_moves_by_injections_only(self):
        cfg = EngineConfig(
            scheme="fos", rounding="floor", rounds=10, seed=4,
            faults="drop:0.2", arrivals="poisson:25",
        )
        loads = _loads(STAMPED, 2)
        eng = make_engine("staleness")
        handle = eng.prepare(STAMPED, cfg, loads)
        expected = handle.core.total_load().copy()
        for _ in range(10):
            batch = eng.arrive(handle)
            expected += np.asarray(batch.arrived) - np.asarray(batch.departed)
            eng.step(handle)
            np.testing.assert_array_equal(handle.core.total_load(), expected)


class TestComposition:
    def test_replica_params_compose(self):
        B = 8
        params = ReplicaParams(
            betas=np.linspace(1.2, 1.9, B),
            load_scales=np.linspace(0.5, 2.0, B),
            switch_rounds=[-1, 3, 5, -1, 8, 2, -1, 9],
        )
        cfg = EngineConfig(
            scheme="sos", beta=1.5, rounding="nearest", rounds=ROUNDS,
            seed=1, latency_model="fixed:2", faults="drop:0.2",
            replica_params=params, record_every=4,
        )
        loads = _loads(TORUS, B)
        assert_results_identical(
            _run("staleness", TORUS, cfg, loads),
            _run("async", TORUS, cfg, loads),
        )

    def test_sharded_routes_staleness_configs(self):
        """A latency/fault config shards bit-identically: the delayed
        planes slice by column, so worker shards merge into exactly the
        dense staleness batch."""
        loads = _loads(STAMPED, 8)
        dense = EngineConfig(
            scheme="sos", beta=1.6, rounding="floor", rounds=ROUNDS,
            seed=4, faults="drop:0.2", max_skew=4,
        )
        sharded = EngineConfig(
            scheme="sos", beta=1.6, rounding="floor", rounds=ROUNDS,
            seed=4, faults="drop:0.2", max_skew=4, workers=2,
        )
        assert_results_identical(
            _run("sharded", STAMPED, sharded, loads),
            _run("staleness", STAMPED, dense, loads),
        )

    def test_sharded_routes_dynamic_staleness_configs(self):
        loads = _loads(STAMPED, 8)
        kw = dict(
            scheme="fos", rounding="floor", rounds=6, seed=4,
            latency_model="fixed:1", arrivals="poisson:30",
        )
        got = make_engine("sharded").run_dynamic(
            STAMPED, EngineConfig(workers=2, **kw), loads
        )
        want = make_engine("staleness").run_dynamic(
            STAMPED, EngineConfig(**kw), loads
        )
        assert_dynamic_identical(got, want)

    def test_tiled_excess_dispatch_is_bit_identical(self):
        """tile_size bounds the excess-token scratch only — tiled and
        dense staleness runs agree bit for bit (the batched contract)."""
        loads = _loads(STAMPED, 4)
        base = dict(
            scheme="fos", rounding="randomized-excess", rounds=ROUNDS,
            seed=6, max_skew=5,
        )
        assert_results_identical(
            _run("staleness", STAMPED, EngineConfig(tile_size=5, **base), loads),
            _run("staleness", STAMPED, EngineConfig(**base), loads),
        )


class TestQuantisation:
    def test_bucket_policies(self):
        lat = np.array([0.0, 1.0, 1.5, 2.4, 2.6])
        np.testing.assert_array_equal(
            quantize_link_latency(lat, "ceil", 5), [0, 1, 2, 3, 3]
        )
        np.testing.assert_array_equal(
            quantize_link_latency(lat, "floor", 5), [0, 1, 1, 2, 2]
        )
        np.testing.assert_array_equal(
            quantize_link_latency(lat, "nearest", 5), [0, 1, 2, 2, 3]
        )
        np.testing.assert_array_equal(
            quantize_link_latency(None, "ceil", 3), [0, 0, 0]
        )
        np.testing.assert_array_equal(
            quantize_link_latency(2.0, "exact", 3), [2, 2, 2]
        )

    def test_exact_policy_rejects_fractional(self):
        with pytest.raises(ConfigurationError, match="integer link latencies"):
            quantize_link_latency(1.5, "exact", 4)

    def test_unknown_policy_and_bad_latency(self):
        with pytest.raises(ConfigurationError, match="latency_buckets"):
            quantize_link_latency(1.0, "stochastic", 4)
        with pytest.raises(ConfigurationError, match=">= 0"):
            quantize_link_latency(-1.0, "ceil", 4)
        with pytest.raises(ConfigurationError, match="finite"):
            quantize_link_latency(np.inf, "ceil", 4)

    def test_ceil_quantised_run_equals_integer_run(self):
        """latency 1.5 under the default ceil policy runs exactly like
        latency 2 — the quantisation happens before the planes exist."""
        load = point_load(TORUS, 1600)
        base = dict(scheme="fos", rounding="floor", rounds=8, seed=0)
        assert_results_identical(
            _run("staleness", TORUS,
                 EngineConfig(latency_model="fixed:1.5", **base), load),
            _run("staleness", TORUS,
                 EngineConfig(latency_model="fixed:2", **base), load),
        )

    def test_skew_clamp_bounds_bucket_depth(self):
        cfg = EngineConfig(
            scheme="fos", rounding="floor", rounds=8, seed=0,
            latency_model="fixed:9", max_skew=2,
        )
        eng = make_engine("staleness")
        handle = eng.prepare(TORUS, cfg, point_load(TORUS, 1600))
        assert handle.core.D == 3  # min(9, max_skew + 1)
        for _ in range(8):
            eng.step(handle)
        assert handle.core.max_staleness <= cfg.max_skew + 1


class TestGuards:
    def test_rejects_churn(self):
        cfg = EngineConfig(rounds=2, churn="crash:1:0.1")
        with pytest.raises(ConfigurationError, match="churn"):
            make_engine("staleness").run(TORUS, cfg, point_load(TORUS, 100))

    def test_rejects_stamped_bandwidth(self):
        topo = torus_2d(3, 3).stamp_link_attrs(bandwidth=5.0)
        cfg = EngineConfig(rounds=2)
        with pytest.raises(ConfigurationError, match="link_bandwidth"):
            make_engine("staleness").run(topo, cfg, point_load(topo, 90))

    def test_rejects_batched_only_knobs(self):
        for kw in (
            {"fast_path": "matmul"},
            {"record_mode": "summary"},
            {"arrival_sampling": "batch", "arrivals": "poisson:5"},
        ):
            cfg = EngineConfig(rounds=2, **kw)
            with pytest.raises(ConfigurationError, match="staleness engine"):
                make_engine("staleness").prepare(
                    TORUS, cfg, point_load(TORUS, 100)
                )

    def test_latency_buckets_rejected_elsewhere(self):
        cfg = EngineConfig(rounds=2, latency_buckets="exact", latency_model=1.0)
        with pytest.raises(ConfigurationError, match="staleness engine only"):
            make_engine("async").run(TORUS, cfg, point_load(TORUS, 100))
