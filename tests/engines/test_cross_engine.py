"""Cross-engine equivalence: batched == reference == network == async, trace for trace.

For deterministic roundings all integral traces must agree *bit for bit*
across every backend and batch size — on the torus, the hypercube, and a
random-regular graph, with and without mid-run hybrid switching.  The
continuous identity process agrees to float accumulation accuracy, and the
randomized roundings agree statistically (same plateau, exact conservation).
"""

import numpy as np
import pytest

from repro import hypercube, point_load, random_load, torus_2d
from repro.graphs import random_regular_strict
from repro.engines import EngineConfig, make_engine

DETERMINISTIC = ["floor", "nearest", "ceil"]
ENGINE_NAMES = ["reference", "batched", "network", "async"]

EXACT_FIELDS = (
    "round_index",
    "scheme",
    "max_minus_avg",
    "min_minus_avg",
    "max_local_diff",
    "min_load",
    "min_transient",
    "total_load",
    "round_traffic",
)


def _topologies():
    rng = np.random.default_rng(7)
    return {
        "torus": torus_2d(5, 6),
        "hypercube": hypercube(5),
        "random-regular": random_regular_strict(24, 3, rng=rng),
    }


TOPOLOGIES = _topologies()


def _assert_same_result(result, reference, exact: bool):
    if exact:
        np.testing.assert_array_equal(
            result.final_state.load, reference.final_state.load
        )
        np.testing.assert_array_equal(
            result.final_state.flows, reference.final_state.flows
        )
        for fieldname in EXACT_FIELDS:
            np.testing.assert_array_equal(
                result.series(fieldname),
                reference.series(fieldname),
                err_msg=fieldname,
            )
        np.testing.assert_allclose(
            result.series("potential_per_node"),
            reference.series("potential_per_node"),
            rtol=1e-12,
        )
    else:
        np.testing.assert_allclose(
            result.final_state.load, reference.final_state.load, atol=1e-9
        )
    assert result.switched_at == reference.switched_at


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("rounding", DETERMINISTIC + ["identity"])
@pytest.mark.parametrize("scheme,beta", [("fos", 1.0), ("sos", 1.7)])
def test_single_replica_equivalence(topo_name, rounding, scheme, beta):
    topo = TOPOLOGIES[topo_name]
    load = point_load(topo, 1000 * topo.n)
    config = EngineConfig(
        scheme=scheme, beta=beta, rounding=rounding, rounds=30, seed=0
    )
    reference = make_engine("reference").run(topo, config, load)[0]
    for name in ("batched", "network", "async"):
        result = make_engine(name).run(topo, config, load)[0]
        _assert_same_result(result, reference, exact=rounding != "identity")


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
def test_multi_replica_batch_matches_reference_rows(topo_name):
    """B > 1: every row of the batched run equals its own reference run."""
    topo = TOPOLOGIES[topo_name]
    rng = np.random.default_rng(3)
    loads = np.stack(
        [
            point_load(topo, 1000 * topo.n, node=0),
            point_load(topo, 500 * topo.n, node=topo.n - 1),
            random_load(topo, 400 * topo.n, rng=rng),
        ]
    )
    config = EngineConfig(scheme="sos", beta=1.7, rounding="nearest", rounds=40)
    batched = make_engine("batched").run(topo, config, loads)
    reference = make_engine("reference").run(topo, config, loads)
    assert len(batched) == len(reference) == 3
    for result, ref in zip(batched, reference):
        _assert_same_result(result, ref, exact=True)


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("rounding", ["floor", "nearest"])
def test_hybrid_switch_equivalence(topo_name, rounding):
    """Mid-run SOS -> FOS switching: all the exact engines agree bit for bit,
    including the scheme column flipping at the right record."""
    topo = TOPOLOGIES[topo_name]
    load = point_load(topo, 1000 * topo.n)
    config = EngineConfig(
        scheme="sos", beta=1.7, rounding=rounding, rounds=40,
        switch=("fixed", 15), seed=0,
    )
    reference = make_engine("reference").run(topo, config, load)[0]
    assert reference.switched_at == 15
    schemes = reference.series("scheme")
    assert schemes[15] == "SecondOrderScheme"
    assert schemes[16] == "FirstOrderScheme"
    for name in ("batched", "network", "async"):
        result = make_engine(name).run(topo, config, load)[0]
        _assert_same_result(result, reference, exact=True)


def test_local_diff_switch_equivalence():
    """The metric-triggered policy fires at the same round on batched and
    reference (the network engine is fixed-switch only)."""
    topo = TOPOLOGIES["torus"]
    load = point_load(topo, 1000 * topo.n)
    config = EngineConfig(
        scheme="sos", beta=1.7, rounding="nearest", rounds=200,
        switch=("local-diff", 10.0, 1), seed=0,
    )
    reference = make_engine("reference").run(topo, config, load)[0]
    batched = make_engine("batched").run(topo, config, load)[0]
    assert reference.switched_at is not None
    _assert_same_result(batched, reference, exact=True)


@pytest.mark.parametrize("rounding", ["unbiased-edge", "randomized-excess"])
def test_randomized_engines_agree_statistically(rounding):
    """Randomized draws differ across engines, but conservation is exact and
    both land on the same plateau."""
    topo = torus_2d(8, 8)
    load = point_load(topo, 1000 * topo.n)
    config = EngineConfig(
        scheme="sos", beta=1.6, rounding=rounding, rounds=250, seed=5
    )
    reference = make_engine("reference").run(topo, config, load)[0]
    batched = make_engine("batched").run(topo, config, load)[0]
    a, b = batched.final_state.load, reference.final_state.load
    assert a.sum() == b.sum()
    assert np.all(a == np.round(a))  # integral token counts
    assert abs((a.max() - a.mean()) - (b.max() - b.mean())) <= 12.0


def test_float32_mode_matches_float64_statistically():
    """The throughput precision mode keeps loads integral and conserved and
    reaches the same plateau as the float64 engine."""
    topo = torus_2d(8, 8)
    load = point_load(topo, 1000 * topo.n)
    base = dict(scheme="sos", beta=1.6, rounding="randomized-excess",
                rounds=250, seed=5)
    r64 = make_engine("batched").run(topo, EngineConfig(**base), load)[0]
    r32 = make_engine("batched").run(
        topo, EngineConfig(**base, precision="float32"), load
    )[0]
    a, b = r32.final_state.load, r64.final_state.load
    assert a.sum() == b.sum() == 1000 * topo.n
    assert np.all(a == np.round(a))
    assert abs((a.max() - a.mean()) - (b.max() - b.mean())) <= 12.0
