"""EngineSession: incremental runs, live injection, checkpoint/resume.

The session contract has three legs:

* **replica equivalence** — ``EngineSession(topo, config, replica=b)``
  advanced to ``config.rounds`` reproduces replica ``b`` of the reference
  engine (and hence of every bit-identical engine), static and dynamic,
  every rounding;
* **checkpoint/resume is bit-for-bit** — a run interrupted at any round
  and resumed from its JSON checkpoint produces exactly the
  uninterrupted run's tables, final state and RNG-dependent tail;
* **injection is exact** — deltas queued through :meth:`inject` are
  indistinguishable from an arrival model that generated them, which the
  :class:`~repro.core.dynamic.TraceArrivals` cross-check pins.
"""

import numpy as np
import pytest

from repro import ConfigurationError, torus_2d
from repro.core.dynamic import TraceArrivals, make_arrival_model
from repro.engines import (
    EngineConfig,
    EngineSession,
    run_dynamic_replicas,
    run_replicas,
)
from repro.exceptions import SimulationError
from repro.io import load_arrival_trace, save_arrival_trace

TOPO = torus_2d(6, 6)
STATIC_FIELDS = (
    "round_index", "scheme", "max_minus_avg", "min_minus_avg",
    "max_local_diff", "potential_per_node", "min_load", "min_transient",
    "total_load", "round_traffic",
)
DYNAMIC_FIELDS = (
    "round_index", "total_load", "arrived", "departed", "clamped",
    "max_minus_avg", "max_local_diff", "potential_per_node",
)


def _loads(B=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 60, size=(B, TOPO.n))


def _static_config(**kw):
    base = dict(scheme="sos", beta=1.7, rounds=25, seed=11,
                rounding="randomized-excess", record_every=5)
    base.update(kw)
    return EngineConfig(**base)


def _dynamic_config(**kw):
    base = dict(scheme="fos", rounds=20, seed=3,
                rounding="randomized-excess", arrivals="poisson:4,depart=2")
    base.update(kw)
    return EngineConfig(**base)


def assert_tables_equal(a, b, fields):
    for f in fields:
        np.testing.assert_array_equal(
            np.asarray(a.table.column(f)), np.asarray(b.table.column(f)),
            err_msg=f,
        )


class TestReplicaEquivalence:
    @pytest.mark.parametrize(
        "rounding",
        ["ceil", "floor", "identity", "nearest", "randomized-excess",
         "unbiased-edge"],
    )
    def test_static_matches_reference(self, rounding):
        cfg = _static_config(rounding=rounding, switch=("plateau", 6, 0.2, 3))
        loads = _loads()
        ref = run_replicas(TOPO, cfg, loads, engine="reference")
        for b in range(loads.shape[0]):
            session = EngineSession(TOPO, cfg, replica=b).start(loads[b])
            session.advance(cfg.rounds)
            res = session.finish()
            assert_tables_equal(res, ref[b], STATIC_FIELDS)
            assert res.switched_at == ref[b].switched_at
            np.testing.assert_array_equal(
                res.final_state.load, ref[b].final_state.load
            )

    def test_dynamic_matches_reference(self):
        cfg = _dynamic_config()
        loads = _loads()
        ref = run_dynamic_replicas(TOPO, cfg, loads, engine="reference")
        for b in range(loads.shape[0]):
            session = EngineSession(TOPO, cfg, replica=b).start(loads[b])
            session.advance(cfg.rounds)
            res = session.finish()
            assert_tables_equal(res, ref[b], DYNAMIC_FIELDS)
            np.testing.assert_array_equal(
                res.final_state.load, ref[b].final_state.load
            )

    def test_records_streams_incrementally(self):
        cfg = _static_config(record_every=5)
        s = EngineSession(TOPO, cfg).start(_loads()[0])
        first = s.records()
        assert len(first) == 1 and first[0]["round_index"] == 0
        s.advance(5)
        (row,) = s.records()
        assert row["round_index"] == 5
        s.advance(3)  # not a record round yet
        assert s.records() == []


class TestCheckpointResume:
    @pytest.mark.parametrize("cut", [1, 13, 29])
    def test_static_bit_for_bit(self, tmp_path, cut):
        cfg = _static_config(rounds=30, record_every=3, keep_loads=True,
                             switch=("plateau", 6, 0.2, 3))
        load = _loads()[0]
        full = EngineSession(TOPO, cfg).start(load)
        full.advance(cfg.rounds)
        want = full.finish()

        half = EngineSession(TOPO, cfg).start(load)
        half.advance(cut)
        half.records()
        path = str(tmp_path / "ckpt.json")
        half.checkpoint(path)
        resumed = EngineSession.resume(TOPO, cfg, path)
        assert resumed.round_index == cut
        resumed.advance(cfg.rounds - cut)
        got = resumed.finish()
        assert_tables_equal(got, want, STATIC_FIELDS)
        assert got.switched_at == want.switched_at
        np.testing.assert_array_equal(got.final_state.load, want.final_state.load)
        np.testing.assert_array_equal(got.final_state.flows, want.final_state.flows)
        assert len(got.loads_history) == len(want.loads_history)
        for a, b in zip(got.loads_history, want.loads_history):
            np.testing.assert_array_equal(a, b)

    def test_dynamic_bit_for_bit(self, tmp_path):
        cfg = _dynamic_config(rounds=24)
        load = _loads()[0]
        full = EngineSession(TOPO, cfg).start(load)
        full.advance(cfg.rounds)
        want = full.finish()

        half = EngineSession(TOPO, cfg).start(load)
        half.advance(11)
        path = str(tmp_path / "ckpt.json")
        half.checkpoint(path)
        resumed = EngineSession.resume(TOPO, cfg, path)
        resumed.advance(cfg.rounds - 11)
        got = resumed.finish()
        assert_tables_equal(got, want, DYNAMIC_FIELDS)
        np.testing.assert_array_equal(got.final_state.load, want.final_state.load)

    def test_queued_injection_survives_resume(self, tmp_path):
        cfg = _dynamic_config(arrivals="none", rounds=6)
        load = _loads()[0]
        extra = np.linspace(-2, 4, TOPO.n)
        a = EngineSession(TOPO, cfg).start(load)
        a.advance(2)
        a.inject(extra)
        path = str(tmp_path / "ckpt.json")
        a.checkpoint(path)
        b = EngineSession.resume(TOPO, cfg, path)
        a.advance(4)
        b.advance(4)
        np.testing.assert_array_equal(
            a.finish().final_state.load, b.finish().final_state.load
        )

    def test_config_digest_mismatch_rejected(self, tmp_path):
        cfg = _static_config()
        path = str(tmp_path / "ckpt.json")
        s = EngineSession(TOPO, cfg).start(_loads()[0])
        s.advance(2)
        s.checkpoint(path)
        with pytest.raises(ConfigurationError, match="different config"):
            EngineSession.resume(TOPO, _static_config(rounds=26), path)

    def test_mode_mismatch_rejected(self, tmp_path):
        cfg = _static_config()
        path = str(tmp_path / "ckpt.json")
        s = EngineSession(TOPO, cfg).start(_loads()[0])
        s.advance(2)
        s.checkpoint(path)
        dyn = _dynamic_config()
        with pytest.raises(ConfigurationError, match="static session"):
            EngineSession.resume(TOPO, dyn, path)

    def test_malformed_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError, match="checkpoint"):
            EngineSession.resume(TOPO, _static_config(), str(path))
        with pytest.raises(ConfigurationError, match="not found"):
            EngineSession.resume(TOPO, _static_config(), str(tmp_path / "no.json"))


class TestInjection:
    def test_inject_matches_trace_replay(self, tmp_path):
        rng = np.random.default_rng(1)
        trace = np.round(rng.uniform(-3, 6, size=(10, TOPO.n)), 3)
        load = _loads()[0]
        tcfg = _dynamic_config(rounds=10, seed=5, arrivals=TraceArrivals(trace))
        want = run_dynamic_replicas(TOPO, tcfg, load[None], engine="reference")[0]

        ncfg = _dynamic_config(rounds=10, seed=5, arrivals="none")
        s = EngineSession(TOPO, ncfg).start(load)
        for r in range(10):
            s.inject(trace[r])
            s.advance()
        got = s.finish()
        assert_tables_equal(got, want, DYNAMIC_FIELDS)
        np.testing.assert_array_equal(got.final_state.load, want.final_state.load)

    def test_inject_accumulates_and_guards(self):
        cfg = _dynamic_config(arrivals="none", rounds=3)
        s = EngineSession(TOPO, cfg).start(_loads()[0])
        s.inject(np.ones(TOPO.n))
        s.inject(np.ones(TOPO.n))  # same round: accumulates
        s.advance()
        assert s.finish().table.column("arrived")[0] == 2.0 * TOPO.n

    def test_inject_rejects_static_and_bad_shapes(self):
        static = EngineSession(TOPO, _static_config()).start(_loads()[0])
        with pytest.raises(ConfigurationError, match="dynamic"):
            static.inject(np.ones(TOPO.n))
        dyn = EngineSession(TOPO, _dynamic_config()).start(_loads()[0])
        with pytest.raises(ConfigurationError, match="shape"):
            dyn.inject(np.ones(TOPO.n + 1))
        with pytest.raises(ConfigurationError, match="finite"):
            dyn.inject(np.full(TOPO.n, np.nan))


class TestLifecycleGuards:
    def test_start_twice_and_unstarted_access(self):
        s = EngineSession(TOPO, _static_config())
        with pytest.raises(SimulationError, match="not started"):
            s.advance()
        with pytest.raises(SimulationError, match="not started"):
            _ = s.round_index
        s.start(_loads()[0])
        with pytest.raises(SimulationError, match="already started"):
            s.start(_loads()[0])

    def test_finished_session_refuses_work(self):
        s = EngineSession(TOPO, _static_config()).start(_loads()[0])
        s.advance(2)
        first = s.finish()
        assert s.finish() is first  # idempotent
        with pytest.raises(SimulationError, match="finished"):
            s.advance()

    def test_rejected_configs(self):
        for kw, msg in [
            (dict(churn="random:0.1"), "churn"),
            (dict(latency_model=1.0), "session"),
            (dict(workers=2), "session"),
            (dict(precision="float32"), "precision"),
            (dict(record_mode="summary"), "session"),
        ]:
            with pytest.raises(ConfigurationError, match=msg):
                EngineSession(TOPO, _static_config(**kw))
        with pytest.raises(ConfigurationError, match="replica"):
            EngineSession(TOPO, _static_config(), replica=-1)


class TestArrivalTraces:
    def test_round_trip(self, tmp_path):
        trace = np.arange(12, dtype=np.float64).reshape(3, 4)
        path = str(tmp_path / "trace.json")
        save_arrival_trace(path, trace)
        np.testing.assert_array_equal(load_arrival_trace(path), trace)

    def test_trace_spec_parses_and_replays(self, tmp_path):
        rng = np.random.default_rng(2)
        trace = np.round(rng.uniform(0, 4, size=(6, TOPO.n)), 3)
        path = str(tmp_path / "trace.json")
        save_arrival_trace(path, trace)
        load = _loads()[0]
        for engine in ("reference", "batched"):
            want = run_dynamic_replicas(
                TOPO, _dynamic_config(rounds=6, arrivals=TraceArrivals(trace)),
                load[None], engine=engine,
            )[0]
            got = run_dynamic_replicas(
                TOPO, _dynamic_config(rounds=6, arrivals=f"trace:{path}"),
                load[None], engine=engine,
            )[0]
            assert_tables_equal(got, want, DYNAMIC_FIELDS)

    def test_rounds_past_trace_end_inject_nothing(self):
        model = TraceArrivals(np.ones((2, TOPO.n)))
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(
            model.deltas(TOPO, 5, rng), np.zeros(TOPO.n)
        )

    def test_parser_rejections(self, tmp_path):
        with pytest.raises(ConfigurationError, match="trace:FILE"):
            make_arrival_model("trace:")
        with pytest.raises(ConfigurationError, match="not found"):
            make_arrival_model("trace:/nonexistent/trace.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ConfigurationError, match="JSON"):
            make_arrival_model(f"trace:{bad}")
        bad.write_text('{"format": "other"}')
        with pytest.raises(ConfigurationError, match="format marker"):
            make_arrival_model(f"trace:{bad}")

    def test_save_rejects_bad_arrays(self, tmp_path):
        path = str(tmp_path / "t.json")
        with pytest.raises(ConfigurationError, match="2D"):
            save_arrival_trace(path, np.ones(4))
        with pytest.raises(ConfigurationError, match="finite"):
            save_arrival_trace(path, np.full((2, 2), np.inf))

    def test_wrong_node_count_rejected_at_use(self):
        model = TraceArrivals(np.ones((3, 5)))
        with pytest.raises(ConfigurationError, match="n=5"):
            model.deltas(TOPO, 0, np.random.default_rng(0))
