"""Per-replica parameter planes (``EngineConfig.replica_params``).

Three contracts:

* **cross-engine bit-identity** — a batch whose replicas carry their own
  switch round / beta / alpha scale / load scale / arrival scale produces
  the same per-replica trajectories on the reference, batched and sharded
  engines (bit for bit for deterministic roundings, static and dynamic),
  and the network engine agrees on the planes it supports;
* **sweep folding** — a fused one-call sweep is bit-identical per replica
  to the old per-point loop (one engine call per sweep point);
* **broadcasting/validation properties** (hypothesis) — scalars broadcast
  to planes, length mismatches and out-of-range values are rejected, and
  shard-boundary placement never changes a replica's trajectory.
"""

import numpy as np
import pytest
from dataclasses import replace
from hypothesis import given, settings, strategies as st

from repro import ConfigurationError, point_load, torus_2d
from repro.engines import (
    EngineConfig,
    ReplicaParams,
    make_engine,
    plan_shards,
    resolve_replica_params,
    uniform_plane_value,
)

TOPO = torus_2d(6, 6)
BASE = point_load(TOPO, 500 * TOPO.n)

SWITCHES = [-1, 5, 10, 15, None]
BETAS = [1.3, 1.5, 1.7, 1.1, 1.9]
ALPHA_SCALES = [1.0, 0.5, 0.75, 1.2, 1.0]
LOAD_SCALES = [1.0, 2.0, 0.5, 1.0, 3.0]
ARRIVAL_SCALES = [1.0, 0.0, 2.0, 0.5, 1.5]
B = len(SWITCHES)


def _loads():
    return np.tile(BASE, (B, 1))


def _static_config(**kwargs):
    base = dict(
        scheme="sos",
        beta=1.5,
        rounding="floor",
        rounds=30,
        seed=1,
        replica_params=ReplicaParams(
            switch_rounds=SWITCHES,
            betas=BETAS,
            alpha_scales=ALPHA_SCALES,
            load_scales=LOAD_SCALES,
        ),
    )
    base.update(kwargs)
    return EngineConfig(**base)


def _dynamic_config(**kwargs):
    base = dict(
        scheme="sos",
        beta=1.5,
        rounding="nearest",
        rounds=25,
        seed=2,
        arrivals="poisson:2.0,depart=1.0",
        replica_params=ReplicaParams(
            betas=BETAS,
            arrival_scales=ARRIVAL_SCALES,
            load_scales=LOAD_SCALES,
        ),
    )
    base.update(kwargs)
    return EngineConfig(**base)


STATIC_FIELDS = (
    "max_minus_avg", "max_local_diff", "potential_per_node",
    "min_transient", "round_traffic",
)
DYNAMIC_FIELDS = (
    "total_load", "arrived", "departed", "clamped", "max_minus_avg",
)


class TestCrossEngineBitIdentity:
    @pytest.mark.parametrize("rounding", ["floor", "nearest", "ceil"])
    def test_static_reference_batched_sharded(self, rounding):
        config = _static_config(rounding=rounding)
        ref = make_engine("reference").run(TOPO, config, _loads())
        bat = make_engine("batched").run(TOPO, config, _loads())
        shd = make_engine("sharded").run(
            TOPO, replace(config, workers=2), _loads()
        )
        for b in range(B):
            np.testing.assert_array_equal(
                ref[b].final_state.load, bat[b].final_state.load
            )
            np.testing.assert_array_equal(
                bat[b].final_state.load, shd[b].final_state.load
            )
            for name in STATIC_FIELDS:
                np.testing.assert_array_equal(
                    np.asarray(ref[b].series(name)),
                    np.asarray(bat[b].series(name)),
                    err_msg=name,
                )
                np.testing.assert_array_equal(
                    np.asarray(bat[b].series(name)),
                    np.asarray(shd[b].series(name)),
                    err_msg=name,
                )
            assert ref[b].switched_at == bat[b].switched_at == shd[b].switched_at

    def test_dynamic_all_engines(self):
        config = _dynamic_config()
        ref = make_engine("reference").run_dynamic(TOPO, config, _loads())
        bat = make_engine("batched").run_dynamic(TOPO, config, _loads())
        shd = make_engine("sharded").run_dynamic(
            TOPO, replace(config, workers=2), _loads()
        )
        net = make_engine("network").run_dynamic(TOPO, config, _loads())
        for b in range(B):
            np.testing.assert_array_equal(
                ref[b].final_state.load, bat[b].final_state.load
            )
            np.testing.assert_array_equal(
                bat[b].final_state.load, shd[b].final_state.load
            )
            np.testing.assert_array_equal(
                ref[b].final_state.load, net[b].final_state.load
            )
            for name in DYNAMIC_FIELDS:
                np.testing.assert_array_equal(
                    np.asarray(ref[b].series(name)),
                    np.asarray(bat[b].series(name)),
                    err_msg=name,
                )
                np.testing.assert_array_equal(
                    np.asarray(bat[b].series(name)),
                    np.asarray(shd[b].series(name)),
                    err_msg=name,
                )

    def test_network_static_planes(self):
        config = _static_config(
            replica_params=ReplicaParams(
                switch_rounds=SWITCHES, betas=BETAS, load_scales=LOAD_SCALES
            )
        )
        ref = make_engine("reference").run(TOPO, config, _loads())
        net = make_engine("network").run(TOPO, config, _loads())
        for b in range(B):
            np.testing.assert_array_equal(
                ref[b].final_state.load, net[b].final_state.load
            )
            assert ref[b].switched_at == net[b].switched_at

    def test_network_rejects_alpha_scales(self):
        with pytest.raises(ConfigurationError, match="alpha_scales"):
            make_engine("network").run(TOPO, _static_config(), _loads())

    def test_tiled_matches_dense(self):
        config = _static_config(rounding="randomized-excess")
        dense = make_engine("batched").run(TOPO, config, _loads())
        tiled = make_engine("batched").run(
            TOPO, replace(config, tile_size=7), _loads()
        )
        for d, t in zip(dense, tiled):
            np.testing.assert_array_equal(
                d.final_state.load, t.final_state.load
            )

    def test_float32_accepts_planes(self):
        config = _static_config(precision="float32", rounding="nearest")
        results = make_engine("batched").run(TOPO, config, _loads())
        assert len(results) == B
        totals = [r.series("total_load")[-1] for r in results]
        expected = [BASE.sum() * s for s in LOAD_SCALES]
        np.testing.assert_allclose(totals, expected, rtol=1e-4)


class TestSweepFolding:
    """One fused call == the old one-call-per-point loop, replica for replica."""

    def test_switch_sweep_matches_per_point_loop(self):
        engine = make_engine("batched")
        n_seeds = 3
        points = [None, 8, 16]
        fused_cfg = EngineConfig(
            scheme="sos", beta=1.8, rounding="nearest", rounds=30, seed=4,
            replica_params=ReplicaParams(
                switch_rounds=[p for p in points for _ in range(n_seeds)]
            ),
            replica_keys=[s for _ in points for s in range(n_seeds)],
        )
        fused = engine.run(TOPO, fused_cfg, np.tile(BASE, (9, 1)))
        for i, point in enumerate(points):
            solo_cfg = EngineConfig(
                scheme="sos", beta=1.8, rounding="nearest", rounds=30, seed=4,
                switch=("fixed", point) if point is not None else None,
            )
            solo = engine.run(TOPO, solo_cfg, np.tile(BASE, (n_seeds, 1)))
            for s in range(n_seeds):
                a, b = fused[i * n_seeds + s], solo[s]
                np.testing.assert_array_equal(
                    a.final_state.load, b.final_state.load
                )
                np.testing.assert_array_equal(
                    np.asarray(a.series("max_minus_avg")),
                    np.asarray(b.series("max_minus_avg")),
                )
                assert a.switched_at == b.switched_at

    def test_randomized_rounding_shares_streams_on_switch_points(self):
        """With pinned replica_keys the fused sweep consumes exactly the
        per-point calls' rounding streams (switch points run the same
        beta-row kernel on both sides, so they agree bit for bit)."""
        engine = make_engine("batched")
        points = [8, 16]
        fused_cfg = EngineConfig(
            scheme="sos", beta=1.8, rounding="randomized-excess", rounds=30,
            seed=4,
            replica_params=ReplicaParams(switch_rounds=[8, 16]),
            replica_keys=[0, 0],
        )
        fused = engine.run(TOPO, fused_cfg, np.tile(BASE, (2, 1)))
        for i, point in enumerate(points):
            solo_cfg = EngineConfig(
                scheme="sos", beta=1.8, rounding="randomized-excess",
                rounds=30, seed=4, switch=("fixed", point),
            )
            solo = engine.run(TOPO, solo_cfg, BASE)[0]
            np.testing.assert_array_equal(
                fused[i].final_state.load, solo.final_state.load
            )


class TestFastPathPlanes:
    NODE_FIELDS = ("max_minus_avg", "total_load", "max_local_diff")

    def _config(self, **kwargs):
        base = dict(
            scheme="sos", beta=1.5, rounding="identity", rounds=25, seed=0,
            record_fields=self.NODE_FIELDS,
            replica_params=ReplicaParams(
                betas=[1.2, 1.7, 1.3],
                alpha_scales=[1.0, 0.5, 0.8],
                load_scales=[1.0, 2.0, 0.5],
            ),
        )
        base.update(kwargs)
        return EngineConfig(**base)

    def test_matmul_planes_match_edgewise(self):
        loads = np.tile(BASE, (3, 1))
        fast = make_engine("batched").run(TOPO, self._config(), loads)
        edge = make_engine("batched").run(
            TOPO, self._config(fast_path="never"), loads
        )
        for f, e in zip(fast, edge):
            np.testing.assert_allclose(
                f.final_state.load, e.final_state.load, rtol=1e-9, atol=1e-6
            )
            for name in self.NODE_FIELDS:
                np.testing.assert_allclose(
                    f.series(name), e.series(name), rtol=1e-8, atol=1e-6,
                    err_msg=name,
                )

    def test_forced_spectral_rejects_varying_planes(self):
        loads = np.tile(BASE, (3, 1))
        with pytest.raises(ConfigurationError, match="vary"):
            make_engine("batched").run(
                TOPO, self._config(fast_path="spectral"), loads
            )

    def test_uniform_planes_fold_into_spectral(self):
        """All-equal beta/alpha planes are scalars — spectral stays legal."""
        loads = np.tile(BASE, (3, 1))
        config = self._config(
            replica_params=ReplicaParams(
                betas=[1.4, 1.4, 1.4], alpha_scales=0.5,
                load_scales=[1.0, 2.0, 0.5],
            ),
            fast_path="spectral",
        )
        fast = make_engine("batched").run(TOPO, config, loads)
        edge = make_engine("batched").run(
            TOPO, replace(config, fast_path="never"), loads
        )
        for f, e in zip(fast, edge):
            np.testing.assert_allclose(
                f.final_state.load, e.final_state.load, rtol=1e-9, atol=1e-6
            )

    def test_switch_rounds_block_fast_path(self):
        config = self._config(
            replica_params=ReplicaParams(switch_rounds=[5, 10, -1]),
            fast_path="matmul",
        )
        with pytest.raises(ConfigurationError, match="switch"):
            make_engine("batched").run(TOPO, config, np.tile(BASE, (3, 1)))


class TestValidation:
    def test_switch_conflict(self):
        config = EngineConfig(
            switch=("fixed", 10),
            replica_params=ReplicaParams(switch_rounds=[5, 10]),
        )
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            config.validate()

    def test_switch_rounds_reject_dynamic(self):
        config = EngineConfig(
            arrivals="poisson:1.0",
            replica_params=ReplicaParams(switch_rounds=[5, 10]),
        )
        with pytest.raises(ConfigurationError, match="dynamic"):
            config.validate()

    def test_betas_need_sos(self):
        config = EngineConfig(
            scheme="fos", replica_params=ReplicaParams(betas=[1.0, 1.2])
        )
        with pytest.raises(ConfigurationError, match="sos"):
            config.validate()

    def test_arrival_scales_need_arrivals(self):
        config = EngineConfig(
            replica_params=ReplicaParams(arrival_scales=[1.0, 2.0])
        )
        with pytest.raises(ConfigurationError, match="arrival"):
            config.validate()

    def test_bad_values_rejected(self):
        for kwargs in (
            dict(betas=[0.0]),
            dict(betas=[2.0]),
            dict(alpha_scales=[0.0]),
            dict(alpha_scales=[-1.0]),
            dict(arrival_scales=[-0.5]),
            dict(load_scales=[float("inf")]),
            dict(betas=[[1.0, 1.2]]),  # not a flat sequence
        ):
            with pytest.raises(ConfigurationError):
                resolve_replica_params(ReplicaParams(**kwargs), 1)

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            resolve_replica_params({"gamma": [1.0]}, 2)

    def test_dict_spec_accepted(self):
        resolved = resolve_replica_params({"betas": 1.5}, 3)
        np.testing.assert_array_equal(resolved.betas, [1.5, 1.5, 1.5])


class TestBroadcastProperties:
    """Hypothesis: broadcasting, rejection, and shard invariance."""

    @given(
        scalar=st.floats(min_value=0.01, max_value=1.99),
        n=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=25, deadline=None)
    def test_scalar_broadcasts_to_plane(self, scalar, n):
        resolved = resolve_replica_params(ReplicaParams(betas=scalar), n)
        assert resolved.betas.shape == (n,)
        assert uniform_plane_value(resolved.betas) == pytest.approx(scalar)
        explicit = resolve_replica_params(
            ReplicaParams(betas=[scalar] * n), n
        )
        np.testing.assert_array_equal(resolved.betas, explicit.betas)

    @given(
        n=st.integers(min_value=2, max_value=16),
        extra=st.integers(min_value=1, max_value=5),
        field_name=st.sampled_from(
            ["betas", "alpha_scales", "load_scales", "switch_rounds"]
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_length_mismatch_rejected(self, n, extra, field_name):
        values = (
            [10] * (n + extra)
            if field_name == "switch_rounds"
            else [1.0] * (n + extra)
        )
        with pytest.raises(ConfigurationError, match="replicas"):
            resolve_replica_params(
                ReplicaParams(**{field_name: values}), n
            )

    @given(
        entries=st.lists(
            st.one_of(st.none(), st.integers(min_value=-3, max_value=40)),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_switch_round_none_means_never(self, entries):
        resolved = resolve_replica_params(
            ReplicaParams(switch_rounds=entries), len(entries)
        )
        for entry, value in zip(entries, resolved.switch_rounds):
            if entry is None:
                assert value == -1
            else:
                assert value == entry

    @given(
        n=st.integers(min_value=2, max_value=24),
        n_shards=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_shard_slices_reassemble(self, n, n_shards, data):
        """Slicing the planes along any shard plan loses nothing: the
        concatenated shard planes equal the full planes — the invariant
        behind shard-boundary-independent trajectories."""
        n_shards = min(n_shards, n)
        betas = data.draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.99),
                min_size=n,
                max_size=n,
            )
        )
        resolved = resolve_replica_params(ReplicaParams(betas=betas), n)
        pieces = [
            resolve_replica_params(resolved.shard(lo, hi), hi - lo).betas
            for lo, hi in plan_shards(n, n_shards)
        ]
        np.testing.assert_array_equal(
            np.concatenate(pieces), resolved.betas
        )

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_shard_boundary_invariance_end_to_end(self, seed):
        """A replica's trajectory does not depend on the worker count."""
        topo = torus_2d(4, 5)
        base = point_load(topo, 200 * topo.n)
        loads = np.tile(base, (4, 1))
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="randomized-excess", rounds=12,
            seed=seed,
            replica_params=ReplicaParams(
                switch_rounds=[-1, 4, 8, -1], load_scales=[1.0, 2.0, 1.0, 0.5]
            ),
        )
        one = make_engine("sharded").run(
            topo, replace(config, workers=1), loads
        )
        two = make_engine("sharded").run(
            topo, replace(config, workers=2), loads
        )
        for a, b in zip(one, two):
            np.testing.assert_array_equal(
                a.final_state.load, b.final_state.load
            )
