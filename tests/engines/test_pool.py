"""Persistent worker pool: bit-identity, reuse, teardown and zero-copy layout.

The pool's contract mirrors the sharded engine's — pooling must be
*invisible* in the results — plus three properties of its own: workers
(and their topology/operator caches) persist across calls, shared-memory
blocks never leak (success, worker error, or worker death), and worker
failures surface as :class:`ConfigurationError` naming the failing
shard's replica range.
"""

import glob
import os
from dataclasses import replace

import numpy as np
import pytest

from repro import ConfigurationError, point_load, random_load, torus_2d
from repro.core.dynamic import HotspotArrivals
from repro.engines import (
    EngineConfig,
    ShardedWorkerPool,
    default_pool,
    make_engine,
    topology_fingerprint,
)
from repro.engines.batched import BatchedVectorEngine
from repro.engines.pool import _execute_task, _write_shared

TOPO = torus_2d(6, 6)
ROUNDINGS = [
    "ceil", "floor", "identity", "nearest", "randomized-excess",
    "unbiased-edge",
]


def _loads(B=6, seed=3):
    rng = np.random.default_rng(seed)
    rows = [point_load(TOPO, 800 * TOPO.n)]
    rows += [random_load(TOPO, 500 * TOPO.n, rng=rng) for _ in range(B - 1)]
    return np.stack(rows)


def _config(**kw):
    base = dict(scheme="sos", beta=1.7, rounds=15, seed=5,
                rounding="randomized-excess", record_every=4, workers=2)
    base.update(kw)
    return EngineConfig(**base)


def _shm_names():
    return set(glob.glob("/dev/shm/psm_*"))


def assert_static_identical(a, b):
    np.testing.assert_array_equal(a.final_state.load, b.final_state.load)
    np.testing.assert_array_equal(a.final_state.flows, b.final_state.flows)
    assert a.switched_at == b.switched_at
    np.testing.assert_array_equal(a.rounds, b.rounds)
    for name in (
        "max_minus_avg", "min_minus_avg", "max_local_diff",
        "potential_per_node", "min_load", "min_transient", "total_load",
        "round_traffic",
    ):
        np.testing.assert_array_equal(
            np.asarray(a.series(name)), np.asarray(b.series(name)),
            err_msg=name,
        )


def assert_dynamic_identical(a, b):
    np.testing.assert_array_equal(a.final_state.load, b.final_state.load)
    for name in (
        "round_index", "total_load", "arrived", "departed", "clamped",
        "max_minus_avg", "max_local_diff", "potential_per_node",
    ):
        np.testing.assert_array_equal(
            np.asarray(a.table.column(name)), np.asarray(b.table.column(name)),
            err_msg=name,
        )


@pytest.fixture
def pool():
    with ShardedWorkerPool(workers=2) as p:
        yield p


class TestBitIdentity:
    @pytest.mark.parametrize("rounding", ROUNDINGS)
    def test_static_every_rounding(self, pool, rounding):
        cfg = _config(rounding=rounding, switch=("fixed", 6))
        loads = _loads()
        percall = make_engine("sharded").run(TOPO, cfg, loads)
        pooled = pool.run_batch(TOPO, cfg, loads).results()
        for a, b in zip(pooled, percall):
            assert_static_identical(a, b)

    def test_dynamic(self, pool):
        cfg = _config(arrivals="poisson:3,depart=1")
        loads = _loads()
        percall = make_engine("sharded").run_dynamic(TOPO, cfg, loads)
        pooled = pool.run_batch(TOPO, cfg, loads, dynamic=True).dynamic_results()
        for a, b in zip(pooled, percall):
            assert_dynamic_identical(a, b)

    def test_engine_routes_pool_instance(self, pool):
        cfg = _config()
        loads = _loads()
        percall = make_engine("sharded").run(TOPO, cfg, loads)
        routed = make_engine("sharded").run(TOPO, replace(cfg, pool=pool), loads)
        for a, b in zip(routed, percall):
            assert_static_identical(a, b)
        assert pool.calls_served == 1

    def test_pool_true_routes_default_pool(self):
        cfg = _config(pool=True)
        loads = _loads(B=4)
        before = default_pool().calls_served
        results = make_engine("sharded").run(TOPO, cfg, loads)
        assert default_pool().calls_served == before + 1
        percall = make_engine("sharded").run(TOPO, replace(cfg, pool=None), loads)
        for a, b in zip(results, percall):
            assert_static_identical(a, b)


class TestPersistence:
    def test_workers_survive_across_calls(self, pool):
        cfg = _config()
        loads = _loads()
        pool.run_batch(TOPO, cfg, loads)
        pids = [p.pid for p in pool._procs]
        for _ in range(3):
            pool.run_batch(TOPO, cfg, loads)
        assert [p.pid for p in pool._procs] == pids
        assert pool.calls_served == 4
        # The topology shipped once; later tasks reuse the worker cache.
        key = topology_fingerprint(TOPO)
        assert all(key in known for known in pool._known)

    def test_fingerprint_distinguishes_topologies(self):
        assert topology_fingerprint(TOPO) == topology_fingerprint(torus_2d(6, 6))
        assert topology_fingerprint(TOPO) != topology_fingerprint(torus_2d(6, 7))

    def test_closed_pool_refuses(self):
        p = ShardedWorkerPool(workers=2)
        p.close()
        with pytest.raises(ConfigurationError, match="closed"):
            p.run_batch(TOPO, _config(), _loads())
        p.close()  # idempotent


class TestFallback:
    """Ineligible configs skip zero-copy but stay pooled and bit-identical."""

    @pytest.mark.parametrize(
        "kw",
        [
            dict(keep_loads=True),
            dict(churn="random:0.1"),
            dict(record_mode="summary"),
        ],
    )
    def test_pickle_fallback_matches_percall(self, pool, kw):
        cfg = _config(**kw)
        loads = _loads()
        assert not pool._zero_copy_ok(TOPO, cfg, [], [], False)
        percall = make_engine("sharded").run(TOPO, cfg, loads)
        pooled = make_engine("sharded").run(TOPO, replace(cfg, pool=pool), loads)
        for a, b in zip(pooled, percall):
            np.testing.assert_array_equal(
                a.final_state.load, b.final_state.load
            )
            np.testing.assert_array_equal(
                np.asarray(a.series("max_minus_avg")),
                np.asarray(b.series("max_minus_avg")),
            )

    def test_fast_path_shard_falls_back(self, pool):
        # identity rounding + trimmed node fields engages the closed-form
        # fast path inside the workers — prebuilt results, so no zero-copy.
        cfg = _config(
            rounding="identity",
            record_fields=(
                "max_minus_avg", "min_minus_avg", "max_local_diff",
                "potential_per_node", "min_load", "total_load",
            ),
        )
        loads = _loads()
        percall = make_engine("sharded").run(TOPO, cfg, loads)
        pooled = make_engine("sharded").run(TOPO, replace(cfg, pool=pool), loads)
        for a, b in zip(pooled, percall):
            np.testing.assert_array_equal(
                np.asarray(a.series("max_minus_avg")),
                np.asarray(b.series("max_minus_avg")),
            )


class TestTeardown:
    def test_no_shm_leak_on_success(self, pool):
        before = _shm_names()
        batch = pool.run_batch(TOPO, _config(), _loads())
        results = batch.results()
        assert _shm_names() - before == set()
        # The unlinked mappings stay readable through the escaped views.
        assert np.isfinite(results[0].final_state.load).all()
        assert np.isfinite(np.asarray(results[0].series("max_minus_avg"))).all()

    def test_worker_error_names_shard_and_leaks_nothing(self, pool):
        # Hotspot nodes outside the graph blow up inside the workers at
        # deltas() time — after dispatch, mid-run.
        cfg = _config(arrivals=HotspotArrivals(nodes=[TOPO.n + 5], rate=2))
        before = _shm_names()
        with pytest.raises(ConfigurationError, match=r"replicas \[\d+:\d+\)"):
            pool.run_batch(TOPO, cfg, _loads(), dynamic=True)
        assert _shm_names() - before == set()
        # The pool survives the error: workers still alive, next call runs.
        out = pool.run_batch(TOPO, _config(), _loads()).results()
        assert len(out) == 6

    def test_pool_close_leaves_no_processes(self):
        p = ShardedWorkerPool(workers=2)
        p.run_batch(TOPO, _config(), _loads())
        procs = list(p._procs)
        p.close()
        assert all(not proc.is_alive() for proc in procs)


class TestSpawnStart:
    def test_spawn_start_method(self, pool, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDED_START", "spawn")
        cfg = _config(rounds=6)
        loads = _loads(B=4)
        with ShardedWorkerPool(workers=2) as spawned:
            pooled = spawned.run_batch(TOPO, cfg, loads).results()
        percall = make_engine("batched").run(TOPO, replace(cfg, workers=None), loads)
        for a, b in zip(pooled, percall):
            np.testing.assert_array_equal(
                a.final_state.load, b.final_state.load
            )


class TestWorkerBodyInProcess:
    """The forked worker body as pure functions, for coverage and layout."""

    def _task(self, cfg, loads, lo, hi, shared, loads_shm, topo=TOPO):
        return {
            "graph_key": topology_fingerprint(topo),
            "topo": topo,
            "config": cfg,
            "lo": lo,
            "hi": hi,
            "dynamic": cfg.arrivals is not None,
            "loads_name": loads_shm.name,
            "loads_shape": loads.shape,
            "shared": shared,
            "write_grid": True,
        }

    @pytest.fixture
    def loads_shm(self):
        from multiprocessing import shared_memory

        loads = _loads(B=4)
        shm = shared_memory.SharedMemory(create=True, size=loads.nbytes)
        np.ndarray(loads.shape, dtype=np.float64, buffer=shm.buf)[:] = loads
        yield loads, shm
        shm.close()
        shm.unlink()

    def test_execute_task_fills_operator_cache(self, loads_shm):
        loads, shm = loads_shm
        cfg = replace(_config(), workers=None)
        topo_cache, op_caches = {}, {}
        task = self._task(cfg, loads, 0, 4, None, shm)
        batch = _execute_task(task, topo_cache, op_caches)
        key = topology_fingerprint(TOPO)
        assert key in topo_cache and op_caches[key]  # CSR operators cached
        want = BatchedVectorEngine().run_batch(TOPO, cfg, loads)
        np.testing.assert_array_equal(batch.final_loads, want.final_loads)
        # Second call reuses the cached topology (task may omit it).
        task2 = dict(task, topo=None)
        batch2 = _execute_task(task2, topo_cache, op_caches)
        np.testing.assert_array_equal(batch2.final_loads, want.final_loads)

    def test_execute_task_cache_desync_raises(self, loads_shm):
        loads, shm = loads_shm
        cfg = replace(_config(), workers=None)
        task = self._task(cfg, loads, 0, 4, None, shm)
        task["topo"] = None  # parent thinks the worker knows the graph
        with pytest.raises(ConfigurationError, match="cache desync"):
            _execute_task(task, {}, {})

    def test_write_shared_rejects_layout_mismatch(self):
        cfg = replace(_config(), workers=None)
        batch = BatchedVectorEngine().run_batch(TOPO, cfg, _loads(B=4))
        spec = {
            "dynamic": False,
            "count": len(batch.round_index) + 1,  # wrong grid length
            "B": 4,
            "n": TOPO.n,
            "m": TOPO.m_edges,
            "fields": tuple(batch.columns),
        }
        with pytest.raises(ConfigurationError, match="layout mismatch"):
            _write_shared(batch, spec, 0, 4, True)


class TestConfigPlumbing:
    def test_validate_rejects_bogus_pool(self):
        with pytest.raises(ConfigurationError, match="pool"):
            _config(pool="bogus").validate()

    def test_batched_rejects_pool(self):
        cfg = EngineConfig(scheme="sos", beta=1.7, rounds=5, pool=True)
        with pytest.raises(ConfigurationError, match="sharded"):
            make_engine("batched").run(TOPO, cfg, _loads(B=2))
