"""Tiled streaming mode: bit-identical to dense mode at every tile size.

The tiled kernels (apply/transient loops over CSR row blocks, per-tile
metric reductions, gathered local differences, lazy excess-token planes,
tiled arrival clamping) must reproduce the dense whole-batch kernels bit
for bit whenever the summed quantities are integral — which is every
discrete rounding — including tile_size=1 and tile sizes past n (which
resolve to dense).  Streaming-summary records must reduce to exactly the
dense table's aggregates.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import ConfigurationError, point_load, random_load, torus_2d
from repro.core.records import DynamicRecordTable, RecordTable, StreamingStats
from repro.engines import EngineConfig, make_engine, resolve_tile_size
from repro.graphs import random_regular_strict

TORUS = torus_2d(9, 11)
RR = random_regular_strict(40, 4, rng=np.random.default_rng(4))
TILE_SIZES = (1, 3, 17, 64, 99, 200)  # 99 = n for the torus; 200 > n

STATIC_FIELDS = (
    "max_minus_avg", "min_minus_avg", "max_local_diff", "potential_per_node",
    "min_load", "min_transient", "total_load", "round_traffic",
)
DYNAMIC_EXACT_FIELDS = (
    "total_load", "arrived", "departed", "clamped", "max_minus_avg",
    "max_local_diff",
)


def _batch(topo, n_replicas=4):
    rng = np.random.default_rng(13)
    rows = [point_load(topo, 1000 * topo.n)]
    rows += [
        random_load(topo, 700 * topo.n, rng=rng) for _ in range(n_replicas - 1)
    ]
    return np.stack(rows)


class TestStaticTiled:
    @pytest.mark.parametrize("topo", [TORUS, RR], ids=["torus", "rr"])
    @pytest.mark.parametrize(
        "rounding", ["nearest", "floor", "ceil", "randomized-excess"]
    )
    def test_bit_identical_across_tile_sizes(self, topo, rounding):
        loads = _batch(topo)
        dense_cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding=rounding, rounds=40,
            record_every=3, seed=9,
        )
        dense = make_engine("batched").run(topo, dense_cfg, loads)
        for tile in TILE_SIZES:
            tiled = make_engine("batched").run(
                topo, replace(dense_cfg, tile_size=tile), loads
            )
            for t_res, d_res in zip(tiled, dense):
                np.testing.assert_array_equal(
                    t_res.final_state.load, d_res.final_state.load,
                    err_msg=f"tile={tile}",
                )
                np.testing.assert_array_equal(
                    t_res.final_state.flows, d_res.final_state.flows
                )
                for fieldname in STATIC_FIELDS:
                    np.testing.assert_array_equal(
                        t_res.series(fieldname), d_res.series(fieldname),
                        err_msg=f"tile={tile} field={fieldname}",
                    )

    def test_tiled_with_switch_policy(self):
        """Metric-triggered switching fires at the same round tiled."""
        loads = _batch(TORUS, 2)
        base = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=120,
            switch=("local-diff", 12.0, 1), seed=0,
        )
        dense = make_engine("batched").run(TORUS, base, loads)
        tiled = make_engine("batched").run(
            TORUS, replace(base, tile_size=7), loads
        )
        for t_res, d_res in zip(tiled, dense):
            assert t_res.switched_at == d_res.switched_at
            np.testing.assert_array_equal(
                t_res.final_state.load, d_res.final_state.load
            )

    def test_step_protocol_tiled(self):
        """The prepare/step protocol works tiled, bit-identical to dense."""
        loads = _batch(TORUS, 2)
        base = EngineConfig(
            scheme="sos", beta=1.6, rounding="floor", rounds=10, seed=1
        )
        engine = make_engine("batched")
        h_dense = engine.prepare(TORUS, base, loads)
        h_tiled = engine.prepare(TORUS, replace(base, tile_size=5), loads)
        for _ in range(10):
            s_dense = engine.step(h_dense)
            s_tiled = engine.step(h_tiled)
            np.testing.assert_array_equal(s_tiled.loads, s_dense.loads)
            np.testing.assert_array_equal(
                s_tiled.min_transient, s_dense.min_transient
            )
            np.testing.assert_array_equal(s_tiled.traffic, s_dense.traffic)

    def test_auto_tile_from_memory_budget(self):
        config = EngineConfig(tile_size="auto", memory_budget_mb=0.01)
        tile = resolve_tile_size(config, n=10_000, n_replicas=16, itemsize=8)
        assert tile is not None and 1 <= tile < 10_000
        roomy = EngineConfig(tile_size="auto", memory_budget_mb=4096.0)
        assert resolve_tile_size(roomy, n=100, n_replicas=1, itemsize=8) is None

    def test_tile_size_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(tile_size=0).validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(tile_size="big").validate()


class TestDynamicTiled:
    @pytest.mark.parametrize("arrivals", ["poisson:2.0,depart=1.5", "burst:300/7"])
    def test_dynamic_bit_identical(self, arrivals):
        loads = _batch(TORUS)
        dense_cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="randomized-excess", rounds=30,
            seed=3, arrivals=arrivals,
        )
        dense = make_engine("batched").run_dynamic(TORUS, dense_cfg, loads)
        for tile in (1, 13, 99):
            tiled = make_engine("batched").run_dynamic(
                TORUS, replace(dense_cfg, tile_size=tile), loads
            )
            for t_res, d_res in zip(tiled, dense):
                np.testing.assert_array_equal(
                    t_res.final_state.load, d_res.final_state.load
                )
                for fieldname in DYNAMIC_EXACT_FIELDS:
                    np.testing.assert_array_equal(
                        t_res.series(fieldname), d_res.series(fieldname),
                        err_msg=f"tile={tile} field={fieldname}",
                    )
                # the moving average is fractional, so the potential sum is
                # accumulation-accurate rather than bitwise tiled
                np.testing.assert_allclose(
                    t_res.series("potential_per_node"),
                    d_res.series("potential_per_node"),
                    rtol=1e-12,
                )


class TestStreamingSummary:
    def test_static_summary_equals_dense_reductions(self):
        loads = _batch(TORUS)
        dense_cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=50,
            record_every=4, seed=2,
        )
        dense = make_engine("batched").run(TORUS, dense_cfg, loads)
        summary = make_engine("batched").run(
            TORUS, replace(dense_cfg, record_mode="summary"), loads
        )
        for s_res, d_res in zip(summary, dense):
            s_sum, d_sum = s_res.table.summary(), d_res.table.summary()
            assert s_sum.keys() == d_sum.keys()
            for key in d_sum:
                s_val, d_val = s_sum[key], d_sum[key]
                assert s_val == d_val or (s_val != s_val and d_val != d_val), key
            # the single stored row is the terminal record
            assert len(s_res.table) == 1
            assert s_res.records[-1].round_index == d_res.records[-1].round_index
            assert s_res.records[-1].max_minus_avg == d_res.records[-1].max_minus_avg
            np.testing.assert_array_equal(
                s_res.final_state.load, d_res.final_state.load
            )

    def test_dynamic_summary_equals_dense_reductions(self):
        loads = _batch(TORUS, 3)
        dense_cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="randomized-excess", rounds=40,
            seed=6, arrivals="poisson:1.5,depart=1.0",
        )
        dense = make_engine("batched").run_dynamic(TORUS, dense_cfg, loads)
        summary = make_engine("batched").run_dynamic(
            TORUS, replace(dense_cfg, record_mode="summary"), loads
        )
        for s_res, d_res in zip(summary, dense):
            s_sum, d_sum = s_res.table.summary(), d_res.table.summary()
            for key in d_sum:
                s_val, d_val = s_sum[key], d_sum[key]
                assert s_val == d_val or (s_val != s_val and d_val != d_val), key

    def test_summary_composes_with_tiling(self):
        loads = _batch(TORUS)
        cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="floor", rounds=30,
            record_every=2, seed=8, record_mode="summary", tile_size=10,
        )
        dense_cfg = replace(cfg, record_mode="table", tile_size=None)
        summary = make_engine("batched").run(TORUS, cfg, loads)
        dense = make_engine("batched").run(TORUS, dense_cfg, loads)
        for s_res, d_res in zip(summary, dense):
            s_sum, d_sum = s_res.table.summary(), d_res.table.summary()
            for key in d_sum:
                assert s_sum[key] == d_sum[key], key

    def test_streaming_stats_unit(self):
        stats = StreamingStats(("a", "b"), width=2)
        stats.update(0, {"a": np.array([1.0, -1.0]), "b": np.array([2.0, 0.0])})
        stats.update(5, {"a": np.array([3.0, -4.0]), "b": np.array([0.5, 1.0])})
        rep = stats.replica_summary(1, all_fields=("a", "b", "c"))
        assert rep["rows"] == 2
        assert rep["first_round"] == 0 and rep["last_round"] == 5
        assert rep["a_min"] == -4.0 and rep["a_max"] == -1.0
        assert rep["a_sum"] == -5.0 and rep["a_mean"] == -2.5
        assert rep["a_last"] == -4.0
        assert rep["c_min"] != rep["c_min"]  # untracked fields are NaN

    def test_table_from_summary_roundtrip(self):
        table = RecordTable(capacity=4)
        for i in range(3):
            table.append(
                i * 2, "SecondOrderScheme",
                **{f: float(i + 1) for f in (
                    "max_minus_avg", "min_minus_avg", "max_local_diff",
                    "potential_per_node", "min_load", "min_transient",
                    "total_load", "round_traffic",
                )},
            )
        summary = table.summary()
        streaming = RecordTable.from_summary(
            4, "SecondOrderScheme", {"max_minus_avg": 3.0}, summary
        )
        assert streaming.summary() == summary
        assert len(streaming) == 1
        assert streaming.row(0)["max_minus_avg"] == 3.0
        assert np.isnan(streaming.row(0)["total_load"])

    def test_dynamic_table_summary(self):
        table = DynamicRecordTable(capacity=2)
        table.append(1, total_load=10.0, arrived=2.0, departed=1.0,
                     clamped=0.0, max_minus_avg=3.0, max_local_diff=2.0,
                     potential_per_node=1.5)
        s = table.summary()
        assert s["rows"] == 1 and s["total_load_last"] == 10.0
        streaming = DynamicRecordTable.from_summary(1, {"total_load": 10.0}, s)
        assert streaming.summary() == s


class TestBatchSampling:
    def test_poisson_batch_statistics(self):
        """Batch-sampled Poisson counts keep the model's distribution."""
        from repro.core.dynamic import PoissonArrivals, batch_arrival_stream

        model = PoissonArrivals(rate=4.0, departure_rate=0.0)
        rng = batch_arrival_stream(0)
        plane = model.batch_deltas(TORUS, 0, rng, 64)
        assert plane.shape == (TORUS.n, 64)
        mean = plane.mean()
        var = plane.var()
        assert abs(mean - 4.0) < 0.1
        assert abs(var - 4.0) < 0.3

    def test_batch_mode_runs_and_conserves(self):
        loads = _batch(TORUS)
        cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=40, seed=5,
            arrivals="poisson:2.0,depart=2.0", arrival_sampling="batch",
        )
        results = make_engine("batched").run_dynamic(TORUS, cfg, loads)
        for b, result in enumerate(results):
            replay = float(loads[b].sum()) + np.cumsum(
                result.series("arrived") - result.series("departed")
            )
            np.testing.assert_array_equal(result.series("total_load"), replay)
        # reproducible for a fixed seed
        again = make_engine("batched").run_dynamic(TORUS, cfg, loads)
        np.testing.assert_array_equal(
            results[0].final_state.load, again[0].final_state.load
        )
        # replicas draw different counts (one shared stream, not one copy)
        assert not np.array_equal(
            results[0].series("arrived"), results[1].series("arrived")
        )

    def test_batch_mode_differs_from_stream_mode(self):
        """The documented opt-out: batch sampling changes the streams."""
        loads = _batch(TORUS, 2)
        stream_cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=20, seed=5,
            arrivals="poisson:3.0",
        )
        batch_cfg = replace(stream_cfg, arrival_sampling="batch")
        stream = make_engine("batched").run_dynamic(TORUS, stream_cfg, loads)
        batch = make_engine("batched").run_dynamic(TORUS, batch_cfg, loads)
        assert not np.array_equal(
            stream[0].series("arrived"), batch[0].series("arrived")
        )

    def test_batch_mode_rejects_arrival_seeds(self):
        loads = _batch(TORUS, 2)
        cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=5, seed=0,
            arrivals="poisson:1.0", arrival_seeds=[7, 9],
            arrival_sampling="batch",
        )
        with pytest.raises(ConfigurationError, match="arrival_seeds"):
            make_engine("batched").run_dynamic(TORUS, cfg, loads)

    def test_batch_mode_rejects_per_replica_models(self):
        from repro.core.dynamic import PoissonArrivals

        loads = _batch(TORUS, 2)
        cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=5, seed=0,
            arrivals=[PoissonArrivals(1.0), PoissonArrivals(2.0)],
            arrival_sampling="batch",
        )
        with pytest.raises(ConfigurationError, match="shared"):
            make_engine("batched").run_dynamic(TORUS, cfg, loads)

    def test_reference_engine_rejects_batch_sampling(self):
        cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=5, seed=0,
            arrivals="poisson:1.0", arrival_sampling="batch",
        )
        with pytest.raises(ConfigurationError, match="batched"):
            make_engine("reference").run_dynamic(
                TORUS, cfg, point_load(TORUS, 100 * TORUS.n)
            )

    def test_default_model_batch_deltas_falls_back(self):
        """Models without a vectorised draw stack per-replica calls."""
        from repro.core.dynamic import BurstArrivals, batch_arrival_stream

        model = BurstArrivals(burst=50, period=3)
        plane = model.batch_deltas(TORUS, 0, batch_arrival_stream(1), 5)
        assert plane.shape == (TORUS.n, 5)
        np.testing.assert_array_equal(plane.sum(axis=0), np.full(5, 50.0))
