"""Unit tests for the columnar record table and its result integration."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    LoadBalancingProcess,
    RecordTable,
    RECORD_FIELDS,
    SecondOrderScheme,
    Simulator,
    point_load,
)
from repro.core.records import (
    DYNAMIC_FIELDS,
    DYNAMIC_FLOAT_FIELDS,
    DynamicRecordTable,
    FLOAT_FIELDS,
)


def _row(i):
    values = {name: float(i * 10 + k) for k, name in enumerate(FLOAT_FIELDS)}
    return values


class TestRecordTable:
    def test_append_and_columns(self):
        table = RecordTable(capacity=2)
        for i in range(5):  # forces growth past the initial capacity
            table.append(round_index=i, scheme="FirstOrderScheme", **_row(i))
        assert len(table) == 5
        assert table.column("round_index").tolist() == [0, 1, 2, 3, 4]
        assert table.column("scheme").tolist() == ["FirstOrderScheme"] * 5
        np.testing.assert_array_equal(
            table.column("max_minus_avg"),
            [_row(i)["max_minus_avg"] for i in range(5)],
        )

    def test_columns_are_readonly_views(self):
        table = RecordTable()
        table.append(round_index=0, scheme="s", **_row(0))
        col = table.column("min_load")
        with pytest.raises(ValueError):
            col[0] = 1.0

    def test_row_and_iter(self):
        table = RecordTable()
        table.append(round_index=3, scheme="SecondOrderScheme", **_row(1))
        row = table.row(0)
        assert row["round_index"] == 3
        assert row["scheme"] == "SecondOrderScheme"
        assert row["total_load"] == _row(1)["total_load"]
        assert table.row(-1) == row
        assert list(table.iter_rows()) == [row]
        with pytest.raises(IndexError):
            table.row(1)

    def test_unknown_column_rejected(self):
        table = RecordTable()
        with pytest.raises(ConfigurationError):
            table.column("nope")

    def test_to_columns_order(self):
        table = RecordTable()
        table.append(round_index=0, scheme="s", **_row(0))
        assert tuple(table.to_columns()) == RECORD_FIELDS

    def test_from_columns_roundtrip(self):
        table = RecordTable()
        for i in range(4):
            table.append(round_index=i, scheme="x", **_row(i))
        rebuilt = RecordTable.from_columns(
            table.column("round_index"),
            table.column("scheme"),
            {name: table.column(name) for name in FLOAT_FIELDS},
        )
        assert len(rebuilt) == 4
        for name in RECORD_FIELDS:
            np.testing.assert_array_equal(rebuilt.column(name), table.column(name))

    def test_from_columns_validates(self):
        with pytest.raises(ConfigurationError):
            RecordTable.from_columns(np.arange(3), np.array(["a"] * 3), {})


class TestSeriesMemoization:
    """Regression: repeated ``series()`` calls must not rebuild anything."""

    def test_series_returns_same_backing_array(self, small_torus):
        proc = LoadBalancingProcess(
            SecondOrderScheme(small_torus, beta=1.6),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        result = Simulator(proc).run(point_load(small_torus, 6400), rounds=30)
        first = result.series("max_minus_avg")
        second = result.series("max_minus_avg")
        # zero-copy views of the same table storage, identical content
        assert first.base is result.table._floats["max_minus_avg"]
        assert second.base is first.base
        np.testing.assert_array_equal(first, second)
        # and the view cannot mutate the table
        with pytest.raises(ValueError):
            first[0] = -1.0

    def test_records_materialised_lazily_once(self, small_torus):
        proc = LoadBalancingProcess(
            SecondOrderScheme(small_torus, beta=1.6),
            rounding="nearest",
        )
        result = Simulator(proc).run(point_load(small_torus, 6400), rounds=10)
        assert result._records is None  # nothing built until asked
        records = result.records
        assert result.records is records  # cached
        assert [r.round_index for r in records] == list(range(11))
        np.testing.assert_array_equal(
            result.series("total_load"), [r.total_load for r in records]
        )


class TestDynamicRecordTable:
    @staticmethod
    def _row(i):
        return {
            name: float(i * 10 + k)
            for k, name in enumerate(DYNAMIC_FLOAT_FIELDS)
        }

    def test_append_grow_and_columns(self):
        table = DynamicRecordTable(capacity=2)
        for i in range(5):  # forces growth past the initial capacity
            table.append(round_index=i + 1, **self._row(i))
        assert len(table) == 5
        assert table.column("round_index").tolist() == [1, 2, 3, 4, 5]
        np.testing.assert_array_equal(
            table.column("arrived"),
            [self._row(i)["arrived"] for i in range(5)],
        )
        col = table.column("total_load")
        with pytest.raises(ValueError):
            col[0] = 1.0  # read-only view

    def test_row_iter_and_order(self):
        table = DynamicRecordTable()
        table.append(round_index=7, **self._row(2))
        row = table.row(0)
        assert row["round_index"] == 7
        assert row["clamped"] == self._row(2)["clamped"]
        assert table.row(-1) == row
        assert list(table.iter_rows()) == [row]
        assert tuple(table.to_columns()) == DYNAMIC_FIELDS
        with pytest.raises(IndexError):
            table.row(1)
        with pytest.raises(ConfigurationError):
            table.column("scheme")  # static-only field

    def test_from_columns_roundtrip_and_validation(self):
        table = DynamicRecordTable()
        for i in range(4):
            table.append(round_index=i + 1, **self._row(i))
        rebuilt = DynamicRecordTable.from_columns(
            table.column("round_index"),
            {name: table.column(name) for name in DYNAMIC_FLOAT_FIELDS},
        )
        for name in DYNAMIC_FIELDS:
            np.testing.assert_array_equal(
                rebuilt.column(name), table.column(name)
            )
        with pytest.raises(ConfigurationError):
            DynamicRecordTable.from_columns(np.arange(3), {})
        with pytest.raises(ConfigurationError):
            DynamicRecordTable(capacity=0)

    def test_dynamic_result_series_zero_copy(self, small_torus):
        """DynamicResult.series is a zero-copy view of the table storage."""
        from repro import DynamicSimulator, PoissonArrivals

        proc = LoadBalancingProcess(
            SecondOrderScheme(small_torus, beta=1.6),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        result = DynamicSimulator(
            proc, PoissonArrivals(rate=2.0), rng=np.random.default_rng(1)
        ).run(point_load(small_torus, 6400), rounds=12)
        first = result.series("max_minus_avg")
        assert first.base is result.table._floats["max_minus_avg"]
        assert result.series("max_minus_avg").base is first.base
        records = result.records
        assert result.records is records  # cached
        np.testing.assert_array_equal(
            result.series("total_load"), [r.total_load for r in records]
        )
