"""Compiled kernel tier: bit-identity with the numpy tier everywhere.

The contract under test (see ``src/repro/kernels/__init__.py``): every
kernel provider — python, cffi, numba — produces *bit-identical* results
to the engine's own numpy kernels for every discrete rounding, across
dense/tiled/sharded execution, static and dynamic runs, B=1 and B>1,
``replica_params`` planes and both precisions.  Providers that are not
available in the environment (no numba, no C compiler) are skip-marked,
never failed; the pure-python provider always runs, so the orchestration
(mode resolution, RNG pre-draws, token walk, apply order) is validated on
every machine.
"""

import numpy as np
import pytest
from dataclasses import replace
from numpy.random import default_rng

from repro import ConfigurationError, point_load, random_load, torus_2d
from repro import kernels
from repro.engines import EngineConfig, make_engine
from repro.graphs import random_regular_strict

TORUS = torus_2d(6, 7)
RR = random_regular_strict(40, 4, rng=default_rng(4))

DISCRETE = list(kernels.DISCRETE_ROUNDINGS)

PROVIDERS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            kernels.get_provider(name) is None,
            reason=f"kernel provider {name!r} unavailable",
        ),
    )
    for name in ("python", "cffi", "numba")
]


def _batch(topo, n_replicas=4, total=4000.0):
    rng = default_rng(11)
    rows = [point_load(topo, total)]
    rows += [random_load(topo, 100.0, rng=rng) for _ in range(n_replicas - 1)]
    return np.stack(rows)


def _assert_same_batch(ref, got, dynamic=False):
    np.testing.assert_array_equal(ref.final_loads, got.final_loads)
    np.testing.assert_array_equal(ref.final_flows, got.final_flows)
    np.testing.assert_array_equal(ref.switched_at, got.switched_at)
    cols_ref = ref.dynamic_columns if dynamic else ref.columns
    cols_got = got.dynamic_columns if dynamic else got.columns
    for key in cols_ref:
        np.testing.assert_array_equal(cols_ref[key], cols_got[key])


class TestBitIdentityStatic:
    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("rounding", DISCRETE)
    def test_dense(self, rounding, kernel):
        eng = make_engine("batched")
        loads = _batch(TORUS)
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding=rounding, rounds=40,
            record_every=5, seed=3,
        )
        ref = eng.run_batch(TORUS, cfg, loads)
        got = eng.run_batch(TORUS, replace(cfg, kernel=kernel), loads)
        _assert_same_batch(ref, got)

    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("rounding", DISCRETE)
    def test_tiled(self, rounding, kernel):
        # Tiled-vs-tiled at the same tile width: the kernel rides the same
        # record/metric reductions, so the comparison is exact.
        eng = make_engine("batched")
        loads = _batch(TORUS)
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding=rounding, rounds=40,
            record_every=5, seed=3, tile_size=17,
        )
        ref = eng.run_batch(TORUS, cfg, loads)
        got = eng.run_batch(TORUS, replace(cfg, kernel=kernel), loads)
        _assert_same_batch(ref, got)

    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("rounding", DISCRETE)
    def test_sharded(self, rounding, kernel):
        # Sharded workers run the compiled tier; compare per-replica
        # results against the single-process numpy batched run.
        loads = _batch(TORUS, n_replicas=6)
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding=rounding, rounds=30,
            record_every=3, seed=3,
        )
        ref = make_engine("batched").run(TORUS, cfg, loads)
        got = make_engine("sharded").run(
            TORUS, replace(cfg, kernel=kernel, workers=2), loads
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(
                a.final_state.load, b.final_state.load
            )
            np.testing.assert_array_equal(
                [r.max_minus_avg for r in a.records],
                [r.max_minus_avg for r in b.records],
            )

    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("rounding", ["floor", "randomized-excess"])
    def test_b1_and_float32(self, rounding, kernel):
        eng = make_engine("batched")
        loads = _batch(TORUS)
        for precision, batch in (("float64", loads[:1]), ("float32", loads)):
            cfg = EngineConfig(
                scheme="sos", beta=1.7, rounding=rounding, rounds=40,
                record_every=5, seed=3, precision=precision,
            )
            ref = eng.run_batch(TORUS, cfg, batch)
            got = eng.run_batch(TORUS, replace(cfg, kernel=kernel), batch)
            _assert_same_batch(ref, got)

    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("rounding", DISCRETE)
    def test_speeds_fos_switch(self, rounding, kernel):
        # Non-uniform speeds (irregular graph), FOS opener, and the global
        # hybrid switch (vector beta path after the switch fires).
        eng = make_engine("batched")
        loads = _batch(RR, n_replicas=5)
        speeds = 1.0 + (np.arange(RR.n) % 3) * 0.5
        cfg = EngineConfig(
            scheme="sos", beta=1.6, rounding=rounding, rounds=30,
            record_every=3, seed=1, speeds=speeds, switch=("fixed", 10),
        )
        ref = eng.run_batch(RR, cfg, loads)
        got = eng.run_batch(RR, replace(cfg, kernel=kernel), loads)
        _assert_same_batch(ref, got)

    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("rounding", DISCRETE)
    def test_replica_params(self, rounding, kernel):
        # Per-replica betas + switch rounds + alpha scales: exercises the
        # vector-beta schedule and the broadcast alpha plane strides.
        eng = make_engine("batched")
        loads = _batch(RR, n_replicas=6)
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding=rounding, rounds=30,
            record_every=3, seed=2,
            replica_params=dict(
                betas=[1.0, 1.3, 1.7, 1.9, 1.5, 1.6],
                switch_rounds=[-1, 5, 10, 15, 20, -1],
                alpha_scales=[1.0, 0.9, 0.8, 1.0, 0.7, 1.0],
            ),
        )
        ref = eng.run_batch(RR, cfg, loads)
        got = eng.run_batch(RR, replace(cfg, kernel=kernel), loads)
        _assert_same_batch(ref, got)


class TestBitIdentityDynamic:
    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("rounding", DISCRETE)
    @pytest.mark.parametrize(
        "arrivals", ["poisson:1.5,depart=1.0", "burst:80/4", "hotspot:1:3"]
    )
    def test_dynamic(self, rounding, arrivals, kernel):
        eng = make_engine("batched")
        loads = _batch(TORUS)
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding=rounding, rounds=25, seed=5,
            arrivals=arrivals,
        )
        ref = eng.run_dynamic_batch(TORUS, cfg, loads)
        got = eng.run_dynamic_batch(TORUS, replace(cfg, kernel=kernel), loads)
        _assert_same_batch(ref, got, dynamic=True)


class TestConfigSurface:
    def test_validate_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="kernel"):
            EngineConfig(kernel="gpu").validate()

    def test_forced_kernel_blocked_by_identity(self):
        cfg = EngineConfig(rounding="identity", kernel="python")
        with pytest.raises(ConfigurationError, match="blocked"):
            make_engine("batched").run_batch(TORUS, cfg, _batch(TORUS))

    def test_forced_kernel_missing_names_pip_extra(self, monkeypatch):
        monkeypatch.setitem(kernels._PROVIDERS, "numba", None)
        cfg = EngineConfig(rounding="floor", kernel="numba", rounds=2)
        with pytest.raises(ConfigurationError, match=r"repro-lb\[compiled\]"):
            make_engine("batched").run_batch(TORUS, cfg, _batch(TORUS))

    def test_auto_identity_falls_back_and_fast_path_engages(self):
        # auto + identity: silent numpy fallback; the closed-form fast path
        # must still engage (a forced kernel would have raised instead).
        eng = make_engine("batched")
        loads = _batch(TORUS)
        cfg = EngineConfig(
            rounding="identity", kernel="auto", rounds=20, record_every=5,
            record_fields=("max_minus_avg",),
        )
        ref = eng.run_batch(TORUS, replace(cfg, kernel="numpy"), loads)
        got = eng.run_batch(TORUS, cfg, loads)
        np.testing.assert_array_equal(ref.final_loads, got.final_loads)

    def test_auto_no_providers_falls_back(self, monkeypatch):
        for name in kernels.AUTO_PREFERENCE:
            monkeypatch.setitem(kernels._PROVIDERS, name, None)
        eng = make_engine("batched")
        loads = _batch(TORUS)
        cfg = EngineConfig(rounding="floor", rounds=10, record_every=2, seed=3)
        ref = eng.run_batch(TORUS, cfg, loads)
        got = eng.run_batch(TORUS, replace(cfg, kernel="auto"), loads)
        _assert_same_batch(ref, got)

    def test_reference_engine_rejects_forced_kernel(self):
        cfg = EngineConfig(rounding="floor", kernel="python", rounds=2)
        with pytest.raises(ConfigurationError, match="kernel"):
            make_engine("reference").run(TORUS, cfg, point_load(TORUS, 100))

    def test_reference_engine_tolerates_auto(self):
        cfg = EngineConfig(rounding="floor", kernel="auto", rounds=2)
        make_engine("reference").run(TORUS, cfg, point_load(TORUS, 100))

    def test_warm_up_kernels_reports_availability(self):
        out = kernels.warm_up_kernels()
        assert out["python"] is True
        assert set(out) == {"python", "cffi", "numba"}
        assert all(isinstance(v, bool) for v in out.values())

    def test_have_flags_are_spec_checks(self):
        assert isinstance(kernels.HAVE_NUMBA, bool)
        assert isinstance(kernels.HAVE_CFFI, bool)

    def test_get_provider_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            kernels.get_provider("cuda")


class TestFallbackLogging:
    def test_auto_blocked_log_names_every_blocker(self, caplog, monkeypatch):
        # identity rounding AND an edgeless topology: the one-time log line
        # must join both blockers, not report only the first.
        monkeypatch.setattr(kernels, "_FALLBACKS_LOGGED", set())
        cfg = EngineConfig(rounding="identity", kernel="auto")
        with caplog.at_level("INFO", logger="repro.kernels"):
            assert kernels.resolve_kernel(cfg, m_edges=0) is None
        [record] = caplog.records
        assert "identity" in record.message
        assert "edgeless" in record.message
        assert " and " in record.message
        # memoised: the same blocked shape logs exactly once per process
        with caplog.at_level("INFO", logger="repro.kernels"):
            kernels.resolve_kernel(cfg, m_edges=0)
        assert len(caplog.records) == 1

    def test_forced_kernel_on_dynamic_run_notes_numpy_clamp(
        self, caplog, monkeypatch
    ):
        monkeypatch.setattr(kernels, "_FALLBACKS_LOGGED", set())
        cfg = EngineConfig(
            rounding="floor", kernel="python", rounds=2,
            arrivals="poisson:1.5",
        )
        with caplog.at_level("INFO", logger="repro.kernels"):
            provider = kernels.resolve_kernel(cfg, m_edges=TORUS.m_edges)
        assert provider is not None
        clamp_logs = [r for r in caplog.records if "clamp" in r.message]
        assert len(clamp_logs) == 1
        assert "numpy tier" in clamp_logs[0].message
        # one-time: a second resolve for the same provider stays quiet
        with caplog.at_level("INFO", logger="repro.kernels"):
            kernels.resolve_kernel(cfg, m_edges=TORUS.m_edges)
        assert len([r for r in caplog.records if "clamp" in r.message]) == 1

    def test_static_forced_kernel_does_not_warn(self, caplog, monkeypatch):
        monkeypatch.setattr(kernels, "_FALLBACKS_LOGGED", set())
        cfg = EngineConfig(rounding="floor", kernel="python", rounds=2)
        with caplog.at_level("INFO", logger="repro.kernels"):
            kernels.resolve_kernel(cfg, m_edges=TORUS.m_edges)
        assert not [r for r in caplog.records if "clamp" in r.message]


class TestProviderCross:
    """Direct provider-level cross-checks, python vs each compiled one."""

    @pytest.mark.parametrize("kernel", PROVIDERS)
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("code", list(range(len(DISCRETE))))
    def test_round_edges_matches_python(self, mode, code, kernel):
        if kernel == "python":
            pytest.skip("python is the baseline")
        other = kernels.get_provider(kernel)
        base = kernels.get_provider("python")
        rng = default_rng(17)
        m, n, B = 60, 30, 3
        eu = rng.integers(0, n // 2, m).astype(np.int32)
        ev = (eu + 1 + rng.integers(0, n // 2 - 1, m)).astype(np.int32)
        for dtype in (np.float64, np.float32):
            load = rng.normal(50.0, 40.0, (n, B)).astype(dtype)
            speeds = (1.0 + rng.random(n)).astype(dtype)
            flows = rng.normal(0.0, 5.0, (m, B)).astype(dtype)
            uni = rng.random((B, m)).astype(dtype)  # replica-major layout
            alpha = np.full(1, 0.25, dtype=dtype)
            beta = np.array([1.7], dtype=dtype)
            bm1 = np.array([0.7], dtype=dtype)
            consts = np.array([0.0, 1.0, 1e-9], dtype=dtype)
            fused_alpha = rng.normal(0.0, 0.3, 2 * m).astype(dtype)
            args = dict(ar=0, ac=0, a=alpha)
            if mode == 2:
                args = dict(ar=2, ac=0, a=fused_alpha)
            outs = []
            for prov in (base, other):
                act = np.zeros((m, B), dtype=dtype)
                fsg = np.zeros((m, B), dtype=dtype)
                prov.round_edges(
                    eu, ev, load, speeds, flows, act, fsg, uni,
                    args["a"], args["ar"], args["ac"], beta, bm1, 0,
                    mode, code, consts,
                )
                outs.append((act, fsg))
            np.testing.assert_array_equal(outs[0][0], outs[1][0])
            np.testing.assert_array_equal(outs[0][1], outs[1][1])


@pytest.mark.parametrize("kernel", PROVIDERS)
def test_hypothesis_adversarial_integer_loads(kernel):
    """numpy and the provider agree on adversarial integer load batches."""
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings
    from hypothesis import strategies as st

    eng = make_engine("batched")
    n = TORUS.n

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-500, max_value=10_000),
            min_size=n, max_size=n,
        ),
        st.sampled_from(DISCRETE),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def check(values, rounding, seed):
        loads = np.array([values, values[::-1]], dtype=np.float64)
        cfg = EngineConfig(
            scheme="sos", beta=1.7, rounding=rounding, rounds=12,
            record_every=3, seed=seed,
        )
        ref = eng.run_batch(TORUS, cfg, loads)
        got = eng.run_batch(TORUS, replace(cfg, kernel=kernel), loads)
        _assert_same_batch(ref, got)

    check()
