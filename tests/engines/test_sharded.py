"""Sharded engine: bit-identity to the batched engine + merge correctness.

The sharded backend's whole contract is that splitting a replica batch
into per-worker column shards is *invisible* in the results: every
rounding, static and dynamic, B=1 and B>1, any worker count.  These tests
enforce the contract trace for trace, exercise the merge helpers
(`merge_record_batches`, `StreamingStats.concat`) directly, and pin the
per-replica rounding-stream layout (`rounding_stream`) that makes the
whole thing possible — a replica's trajectory must not depend on its
batch position or shard assignment.
"""

import math
import os
from dataclasses import replace

import numpy as np
import pytest

from repro import ConfigurationError, point_load, random_load, torus_2d
from repro.core.records import StreamingStats
from repro.engines import (
    EngineConfig,
    RecordBatch,
    make_engine,
    merge_record_batches,
    plan_shards,
    resolve_rounding_rngs,
    resolve_workers,
    rounding_stream,
)
from repro.engines.sharded import _run_shard, _start_method
from repro.graphs import random_regular_strict

TORUS = torus_2d(8, 9)
RR = random_regular_strict(36, 4, rng=np.random.default_rng(7))


def _batch(topo, n_replicas=6):
    rng = np.random.default_rng(3)
    rows = [point_load(topo, 800 * topo.n)]
    rows += [
        random_load(topo, 500 * topo.n, rng=rng) for _ in range(n_replicas - 1)
    ]
    return np.stack(rows)


def assert_static_identical(a, b):
    """Two SimulationResults agree bit for bit (NaN columns included)."""
    np.testing.assert_array_equal(a.final_state.load, b.final_state.load)
    np.testing.assert_array_equal(a.final_state.flows, b.final_state.flows)
    assert a.switched_at == b.switched_at
    np.testing.assert_array_equal(a.rounds, b.rounds)
    for name in (
        "max_minus_avg", "min_minus_avg", "max_local_diff",
        "potential_per_node", "min_load", "min_transient", "total_load",
        "round_traffic",
    ):
        np.testing.assert_array_equal(
            np.asarray(a.series(name)), np.asarray(b.series(name))
        )
    sa, sb = a.table.summary(), b.table.summary()
    assert sa.keys() == sb.keys()
    for key, va in sa.items():
        vb = sb[key]
        if isinstance(va, float) and math.isnan(va):
            assert isinstance(vb, float) and math.isnan(vb)
        else:
            assert va == vb


def assert_dynamic_identical(a, b):
    """Two DynamicResults agree bit for bit."""
    np.testing.assert_array_equal(a.final_state.load, b.final_state.load)
    for name in (
        "total_load", "arrived", "departed", "clamped", "max_minus_avg",
        "max_local_diff", "potential_per_node",
    ):
        np.testing.assert_array_equal(
            np.asarray(a.series(name)), np.asarray(b.series(name))
        )
    assert a.table.summary() == b.table.summary()


class TestStaticEquivalence:
    @pytest.mark.parametrize("topo", [TORUS, RR], ids=["torus", "rr"])
    @pytest.mark.parametrize(
        "rounding",
        ["nearest", "floor", "ceil", "randomized-excess", "unbiased-edge",
         "identity"],
    )
    def test_bit_identical_all_roundings(self, topo, rounding):
        loads = _batch(topo)
        config = EngineConfig(
            scheme="sos", beta=1.7, rounding=rounding, rounds=30,
            record_every=4, seed=11,
        )
        batched = make_engine("batched").run(topo, config, loads)
        for workers in (1, 2, 3, 6, "auto"):
            sharded = make_engine("sharded").run(
                topo, replace(config, workers=workers), loads
            )
            assert len(sharded) == len(batched)
            for a, b in zip(batched, sharded):
                assert_static_identical(a, b)

    def test_single_replica(self):
        load = point_load(TORUS, 500 * TORUS.n)
        config = EngineConfig(rounds=12, seed=2, workers=4)
        sharded = make_engine("sharded").run(TORUS, config, load)
        batched = make_engine("batched").run(
            TORUS, replace(config, workers=None), load
        )
        assert_static_identical(batched[0], sharded[0])

    def test_switch_policies_and_history(self):
        loads = _batch(TORUS)
        config = EngineConfig(
            scheme="sos", beta=1.8, rounding="nearest", rounds=60,
            switch=("local-diff", 12.0, 1), keep_loads=True, seed=5,
        )
        batched = make_engine("batched").run(TORUS, config, loads)
        sharded = make_engine("sharded").run(
            TORUS, replace(config, workers=3), loads
        )
        for a, b in zip(batched, sharded):
            assert_static_identical(a, b)
            assert len(a.loads_history) == len(b.loads_history)
            for x, y in zip(a.loads_history, b.loads_history):
                np.testing.assert_array_equal(x, y)

    def test_batched_only_knobs_pass_through(self):
        """tile_size / record_mode / float32 shard like anything else."""
        loads = _batch(TORUS)
        for kwargs in (
            {"tile_size": 13},
            {"record_mode": "summary"},
            {"precision": "float32"},
        ):
            config = EngineConfig(
                rounding="randomized-excess", rounds=20, seed=9, **kwargs
            )
            batched = make_engine("batched").run(TORUS, config, loads)
            sharded = make_engine("sharded").run(
                TORUS, replace(config, workers=2), loads
            )
            for a, b in zip(batched, sharded):
                np.testing.assert_array_equal(
                    a.final_state.load, b.final_state.load
                )
                assert a.table.summary() == b.table.summary()

    def test_fast_path_bit_identical(self):
        """The closed-form continuous tiers shard column-independently."""
        loads = _batch(TORUS)
        config = EngineConfig(
            scheme="sos", beta=1.7, rounding="identity", rounds=25,
            record_every=5, seed=1,
            record_fields=("max_minus_avg", "potential_per_node",
                           "max_local_diff", "total_load"),
        )
        batched = make_engine("batched").run(TORUS, config, loads)
        sharded = make_engine("sharded").run(
            TORUS, replace(config, workers=3), loads
        )
        for a, b in zip(batched, sharded):
            assert_static_identical(a, b)


class TestDynamicEquivalence:
    @pytest.mark.parametrize(
        "arrivals",
        ["poisson:2.0,depart=1.0", "burst:150/7", "hotspot:0,3:4"],
    )
    def test_bit_identical_dynamic(self, arrivals):
        loads = _batch(TORUS)
        config = EngineConfig(
            scheme="sos", beta=1.7, rounding="randomized-excess", rounds=25,
            seed=6, arrivals=arrivals,
        )
        batched = make_engine("batched").run_dynamic(TORUS, config, loads)
        for workers in (2, 5):
            sharded = make_engine("sharded").run_dynamic(
                TORUS, replace(config, workers=workers), loads
            )
            for a, b in zip(batched, sharded):
                assert_dynamic_identical(a, b)

    def test_per_replica_models_and_seeds(self):
        loads = _batch(TORUS, n_replicas=4)
        config = EngineConfig(
            rounding="nearest", rounds=15, seed=3,
            arrivals=["poisson:1.5", "burst:80/4", "hotspot:1:3", "none"],
            arrival_seeds=[13, 5, 21, 8],
        )
        batched = make_engine("batched").run_dynamic(TORUS, config, loads)
        sharded = make_engine("sharded").run_dynamic(
            TORUS, replace(config, workers=2), loads
        )
        for a, b in zip(batched, sharded):
            assert_dynamic_identical(a, b)

    def test_dynamic_summary_mode(self):
        loads = _batch(TORUS)
        config = EngineConfig(
            rounding="randomized-excess", rounds=20, seed=4,
            arrivals="poisson:2.0,depart=2.0", record_mode="summary",
        )
        batched = make_engine("batched").run_dynamic(TORUS, config, loads)
        sharded = make_engine("sharded").run_dynamic(
            TORUS, replace(config, workers=3), loads
        )
        for a, b in zip(batched, sharded):
            assert_dynamic_identical(a, b)


class TestPositionIndependence:
    """The per-replica stream layout behind the sharding contract."""

    def test_rounding_stream_matches_spawn_key(self):
        direct = rounding_stream(42, 3)
        spawned = np.random.default_rng(
            np.random.SeedSequence(42, spawn_key=(3, 1))
        )
        np.testing.assert_array_equal(direct.random(8), spawned.random(8))

    def test_replica_trajectory_independent_of_batch_position(self):
        """Replica b alone (replica_keys=[b, pad]) equals replica b in the
        full batch — the rounding stream is keyed by identity, not index."""
        loads = _batch(TORUS, n_replicas=5)
        config = EngineConfig(
            rounding="randomized-excess", rounds=20, seed=7,
        )
        full = make_engine("batched").run(TORUS, config, loads)
        for b in (0, 2, 4):
            # width-2 sub-batch (numpy reduces width-1 planes through a
            # different kernel; the engine itself shards the same way)
            pair = make_engine("batched").run(
                TORUS,
                replace(config, replica_keys=[b, b + 42]),
                np.stack([loads[b], loads[b]]),
            )
            np.testing.assert_array_equal(
                full[b].final_state.load, pair[0].final_state.load
            )

    def test_resolve_rounding_rngs_validates(self):
        config = EngineConfig(replica_keys=[1, 2])
        with pytest.raises(ConfigurationError, match="replica_keys"):
            resolve_rounding_rngs(config, 3)


class TestShardPlanning:
    def test_plan_shards_contiguous_cover(self):
        for B, k in ((1, 1), (7, 3), (8, 4), (128, 5)):
            bounds = plan_shards(B, k)
            assert bounds[0][0] == 0 and bounds[-1][1] == B
            widths = [hi - lo for lo, hi in bounds]
            assert all(
                a == b for (_, a), (b, _) in zip(bounds, bounds[1:])
            )
            assert max(widths) - min(widths) <= 1

    def test_plan_shards_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            plan_shards(4, 0)
        with pytest.raises(ConfigurationError):
            plan_shards(4, 5)

    def test_resolve_workers(self):
        assert resolve_workers(3, 128) == 3
        assert resolve_workers(64, 8) == 8  # capped at the replica count
        assert resolve_workers("auto", 4) >= 1
        assert resolve_workers(None, 1) == 1
        with pytest.raises(ConfigurationError):
            resolve_workers(0, 4)

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(workers=0).validate()
        with pytest.raises(ConfigurationError):
            EngineConfig(workers="half").validate()
        EngineConfig(workers="auto").validate()
        EngineConfig(workers=4).validate()


class TestRejections:
    def test_other_engines_reject_workers(self, small_torus):
        load = point_load(small_torus, 100)
        config = EngineConfig(rounding="nearest", rounds=2, workers=2)
        for name in ("reference", "batched", "network"):
            with pytest.raises(ConfigurationError, match="workers"):
                make_engine(name).run(small_torus, config, load)

    def test_per_replica_engines_reject_replica_keys(self, small_torus):
        load = point_load(small_torus, 100)
        config = EngineConfig(rounding="nearest", rounds=2, replica_keys=[5])
        for name in ("reference", "network"):
            with pytest.raises(ConfigurationError, match="replica_keys"):
                make_engine(name).run(small_torus, config, load)

    def test_sharded_rejects_batch_sampling(self):
        config = EngineConfig(
            rounds=3, arrivals="poisson:1.0", arrival_sampling="batch",
            workers=2,
        )
        with pytest.raises(ConfigurationError, match="arrival_sampling"):
            make_engine("sharded").run_dynamic(
                TORUS, config, _batch(TORUS, 4)
            )

    def test_sharded_refuses_step_protocol(self):
        engine = make_engine("sharded")
        config = EngineConfig(rounds=2)
        for call in (
            lambda: engine.prepare(TORUS, config, _batch(TORUS, 2)),
            lambda: engine.step(None),
            lambda: engine.arrive(None),
            lambda: engine.metrics(None),
        ):
            with pytest.raises(ConfigurationError, match="run_dynamic"):
                call()

    def test_run_and_run_dynamic_refuse_wrong_regime(self):
        engine = make_engine("sharded")
        with pytest.raises(ConfigurationError, match="run_dynamic"):
            engine.run(
                TORUS,
                EngineConfig(rounds=2, arrivals="poisson:1.0"),
                _batch(TORUS, 2),
            )
        with pytest.raises(ConfigurationError, match="arrival"):
            engine.run_dynamic(
                TORUS, EngineConfig(rounds=2), _batch(TORUS, 2)
            )


class TestMergeHelpers:
    def _shard_batches(self, config, loads, bounds):
        """Run explicit column shards through the worker entry point."""
        out = []
        for lo, hi in bounds:
            shard_config = replace(config, replica_keys=list(range(lo, hi)))
            out.append(
                _run_shard((TORUS, shard_config, loads[lo:hi], False))
            )
        return out

    def test_merge_reproduces_full_batch(self):
        loads = _batch(TORUS)
        config = EngineConfig(
            rounding="randomized-excess", rounds=15, record_every=2, seed=8
        )
        full = make_engine("batched").run_batch(TORUS, config, loads)
        merged = merge_record_batches(
            self._shard_batches(config, loads, [(0, 2), (2, 4), (4, 6)])
        )
        np.testing.assert_array_equal(full.round_index, merged.round_index)
        np.testing.assert_array_equal(full.final_loads, merged.final_loads)
        np.testing.assert_array_equal(full.scheme_codes, merged.scheme_codes)
        for name, col in full.columns.items():
            np.testing.assert_array_equal(col, merged.columns[name])

    def test_merge_single_batch_is_identity(self):
        loads = _batch(TORUS, 2)
        config = EngineConfig(rounding="nearest", rounds=5, seed=0)
        batch = make_engine("batched").run_batch(TORUS, config, loads)
        assert merge_record_batches([batch]) is batch

    def test_merge_rejects_empty_and_mismatched_grids(self):
        with pytest.raises(ConfigurationError):
            merge_record_batches([])
        loads = _batch(TORUS, 2)
        a = make_engine("batched").run_batch(
            TORUS, EngineConfig(rounding="nearest", rounds=4, seed=0), loads
        )
        b = make_engine("batched").run_batch(
            TORUS, EngineConfig(rounding="nearest", rounds=6, seed=0), loads
        )
        with pytest.raises(ConfigurationError, match="round_index"):
            merge_record_batches([a, b])

    def test_merge_prebuilt_results(self):
        loads = _batch(TORUS, 4)
        config = EngineConfig(rounding="nearest", rounds=4, seed=0)
        engine = make_engine("reference")
        handles = [
            engine.prepare(TORUS, config, loads[i : i + 2]) for i in (0, 2)
        ]
        batches = []
        for handle in handles:
            for _ in range(config.rounds):
                engine.step(handle)
            batches.append(engine.metrics(handle))
        merged = merge_record_batches(batches)
        assert len(merged.results()) == 4

    def test_streaming_stats_concat(self):
        full = StreamingStats(("x", "y"), 5)
        parts = [StreamingStats(("x", "y"), 2), StreamingStats(("x", "y"), 3)]
        rng = np.random.default_rng(0)
        for round_index in (1, 2, 5):
            values = {"x": rng.random(5), "y": rng.random(5) * 100}
            full.update(round_index, values)
            parts[0].update(
                round_index, {k: v[:2] for k, v in values.items()}
            )
            parts[1].update(
                round_index, {k: v[2:] for k, v in values.items()}
            )
        merged = StreamingStats.concat(parts)
        assert merged.width == 5
        assert merged.count == full.count
        for b in range(5):
            assert merged.replica_summary(b) == full.replica_summary(b)

    def test_streaming_stats_concat_rejects_mismatch(self):
        a, b = StreamingStats(("x",), 2), StreamingStats(("y",), 2)
        with pytest.raises(ConfigurationError):
            StreamingStats.concat([a, b])
        with pytest.raises(ConfigurationError):
            StreamingStats.concat([])
        c = StreamingStats(("x",), 2)
        c.update(1, {"x": np.zeros(2)})
        d = StreamingStats(("x",), 2)
        with pytest.raises(ConfigurationError):
            StreamingStats.concat([c, d])


class TestStartMethods:
    def test_spawn_safe(self, monkeypatch):
        """The shard payloads pickle and the merge survives a spawn pool."""
        monkeypatch.setenv("REPRO_SHARDED_START", "spawn")
        loads = _batch(TORUS, 4)
        config = EngineConfig(
            rounding="randomized-excess", rounds=8, seed=1, workers=2
        )
        sharded = make_engine("sharded").run(TORUS, config, loads)
        batched = make_engine("batched").run(
            TORUS, replace(config, workers=None), loads
        )
        for a, b in zip(batched, sharded):
            assert_static_identical(a, b)

    def test_unknown_start_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDED_START", "teleport")
        with pytest.raises(ConfigurationError, match="teleport"):
            _start_method()

    def test_default_start_method_known(self):
        if "REPRO_SHARDED_START" not in os.environ:
            assert _start_method() in ("fork", "spawn")


class TestEnsembleIntegration:
    def test_replica_ensemble_sharded_matches_batched(self):
        from repro.experiments import replica_ensemble

        config = EngineConfig(
            scheme="sos", beta=1.7, rounding="randomized-excess", rounds=40,
            record_every=5, seed=0,
        )
        batched = replica_ensemble(
            TORUS, config, n_replicas=6, engine="batched"
        )
        sharded = replica_ensemble(
            TORUS, replace(config, workers=2), n_replicas=6, engine="sharded"
        )
        assert batched.stats == sharded.stats

    def test_dynamic_replica_ensemble_sharded(self):
        from repro.experiments import dynamic_replica_ensemble

        config = EngineConfig(
            rounding="randomized-excess", rounds=20, seed=0
        )
        batched = dynamic_replica_ensemble(
            TORUS, config, ["poisson:1.5,depart=1.5", "burst:60/5"],
            seeds=(0, 1, 2), engine="batched",
        )
        sharded = dynamic_replica_ensemble(
            TORUS, replace(config, workers=3),
            ["poisson:1.5,depart=1.5", "burst:60/5"],
            seeds=(0, 1, 2), engine="sharded",
        )
        assert batched.stats == sharded.stats
        assert batched.labels == sharded.labels
