"""Property-based invariants of the bounded-staleness regime (hypothesis).

Random integer bucket assignments and churn-free fault schedules, driven
through **both** implementations — the event-driven
:class:`~repro.network.async_engine.AsyncNetwork` and the vectorised
``staleness`` engine — must never violate:

* the skew bound: when ``max_skew`` is set, every view a compute ever
  uses is at most ``max_skew + 1`` rounds stale (the gate's guarantee on
  the event side, the bucket clamp's on the vectorised side), and with
  no gate the staleness never exceeds the deepest bucket;
* exact token conservation: node loads plus in-flight (bucketed) tokens
  are constant for any latency assignment and any fault schedule —
  dropped shipments bounce back to their sender, they never leak.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Topology, point_load, torus_2d
from repro.engines import EngineConfig, make_engine

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TORUS = torus_2d(4, 4)


@st.composite
def staleness_case(draw):
    """(buckets, max_skew, faults, rounds, scheme) on the 4x4 torus."""
    buckets = draw(
        st.lists(
            st.integers(0, 4), min_size=TORUS.m_edges, max_size=TORUS.m_edges
        )
    )
    max_skew = draw(st.one_of(st.none(), st.integers(0, 4)))
    kind = draw(st.sampled_from(["none", "drop", "outage"]))
    if kind == "drop":
        faults = f"drop:{draw(st.floats(0.05, 0.6)):.3f}"
    elif kind == "outage":
        u, v = TORUS.edge_u[0], TORUS.edge_v[0]
        start = draw(st.integers(0, 4))
        faults = f"outage:{u}:{v}:{start}:{start + draw(st.integers(1, 5))}"
    else:
        faults = None
    rounds = draw(st.integers(1, 10))
    scheme = draw(st.sampled_from(["fos", "sos"]))
    return buckets, max_skew, faults, rounds, scheme


def _prepare_pair(buckets, max_skew, faults, scheme):
    topo = torus_2d(4, 4).stamp_link_attrs(
        latency=np.asarray(buckets, dtype=float)
    )
    cfg = EngineConfig(
        scheme=scheme, beta=1.5, rounding="floor", rounds=1, seed=11,
        max_skew=max_skew, faults=faults,
    )
    base = point_load(topo, 100 * topo.n)
    loads = np.stack([base, np.roll(base, 5)])
    eng_s, eng_a = make_engine("staleness"), make_engine("async")
    return (
        topo,
        (eng_s, eng_s.prepare(topo, cfg, loads)),
        (eng_a, eng_a.prepare(topo, cfg, loads)),
    )


@given(case=staleness_case())
@settings(**SETTINGS)
def test_skew_bound_and_conservation_on_both(case):
    buckets, max_skew, faults, rounds, scheme = case
    _, (eng_s, hs), (eng_a, ha) = _prepare_pair(
        buckets, max_skew, faults, scheme
    )
    bound = (
        max_skew + 1 if max_skew is not None else max(buckets)
    )
    total_s = hs.core.total_load().copy()
    totals_a = [r.net.total_load for r in ha.replicas]
    for _ in range(rounds):
        eng_s.step(hs)
        eng_a.step(ha)
        # Conservation is exact every round, with tokens in flight and
        # dropped shipments mid-bounce on the ledger.
        np.testing.assert_array_equal(hs.core.total_load(), total_s)
        for r, t0 in zip(ha.replicas, totals_a):
            assert r.net.total_load == t0
    # The staleness bound holds on both implementations.
    assert hs.core.max_staleness <= bound
    for r in ha.replicas:
        assert r.net.max_staleness <= bound
    # In the lockstep regime (no bucket past the gate) the vectorised
    # clamp realises the *same* observed staleness as the event engine's
    # gate; past it the two realisations may differ but both stay bounded.
    if max_skew is None or max(buckets) <= max_skew:
        for r in ha.replicas:
            assert hs.core.max_staleness == r.net.max_staleness
            assert hs.core.mean_staleness == pytest.approx(
                r.net.mean_staleness, abs=1e-12
            )


@given(
    buckets=st.lists(
        st.integers(0, 3), min_size=TORUS.m_edges, max_size=TORUS.m_edges
    ),
    p=st.floats(0.1, 0.5),
    rounds=st.integers(2, 8),
)
@settings(**SETTINGS)
def test_faulted_ledger_splits_exactly(buckets, p, rounds):
    """On the vectorised side the ledger decomposes exactly: every token
    is on a node, in a shipment plane, or mid-bounce — and the message
    counter nets emitted - delivered - bounced."""
    _, (eng_s, hs), _unused = _prepare_pair(
        buckets, None, f"drop:{p:.3f}", "fos"
    )
    core = hs.core
    total0 = core.total_load().copy()
    for _ in range(rounds):
        eng_s.step(hs)
        in_planes = core.S.sum(axis=(0, 1))
        if core.bounce is not None:
            in_planes = in_planes + core.bounce.sum(axis=(0, 1))
        np.testing.assert_array_equal(core.in_flight_amount, in_planes)
        np.testing.assert_array_equal(
            core.loads.sum(axis=0) + in_planes, total0
        )
        assert (core.in_flight_messages >= 0).all()
