"""Cross-engine equivalence and robustness under topology churn.

The tentpole invariants:

* reference == batched == network == async (zero latency), *bit for bit*,
  for deterministic roundings, static and dynamic, across arbitrary
  crash/recover/leave/join/edge schedules;
* ``sum(loads) == m`` survives every schedule on every backend, for
  every rounding, with faults and arrivals composed on top;
* the spectral/matmul fast path falls back (auto) or refuses (forced),
  the compiled kernel tier falls back (auto) or refuses (forced), and
  the sharded engine broadcasts one compiled
  :class:`~repro.core.churn.ChurnPlan` to its workers and merges
  bit-identically to the batched run (the random schedule is drawn
  exactly once, parent-side).
"""

import logging
from dataclasses import replace

import numpy as np
import pytest

from repro import torus_2d
from repro.core.churn import (
    ChurnSchedule,
    edge_add,
    edge_remove,
    node_crash,
    node_join,
    node_leave,
    plan_churn,
)
from repro.engines import EngineConfig, make_engine
from repro.exceptions import ConfigurationError

DETERMINISTIC = ["floor", "nearest", "ceil"]
STOCHASTIC = ["unbiased-edge", "randomized-excess"]
CHURN_ENGINES = ["reference", "batched", "network", "async"]

TOPO = torus_2d(4, 4)

#: One exercise of every event kind, with a crash recovering mid-run and a
#: same-round crash pair (the handoff cascade must apply in patch order).
SCHEDULE = ChurnSchedule(
    events=[
        node_crash(5, 2, recover_at=7),
        edge_remove(0, 1, 3),
        node_join(16, 5, [0, 2, 10]),
        edge_add(3, 9, 6),
        node_crash(10, 8, recover_at=11),
        node_crash(6, 8, recover_at=11),
        node_leave(12, 9),
    ],
    policy="handoff",
)

FREEZE = ChurnSchedule(
    events=[node_crash(5, 2, recover_at=7), edge_remove(0, 1, 3)],
    policy="freeze",
)

STATIC_FIELDS = (
    "round_index",
    "max_minus_avg",
    "min_minus_avg",
    "max_local_diff",
    "potential_per_node",
    "min_load",
    "total_load",
    "min_transient",
    "round_traffic",
)
DYNAMIC_FIELDS = (
    "round_index",
    "total_load",
    "arrived",
    "departed",
    "clamped",
    "max_minus_avg",
    "max_local_diff",
    "potential_per_node",
)


def _loads(B=1, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 60, (B, TOPO.n)).astype(np.float64)


def _config(**kw):
    base = dict(rounds=12, scheme="sos", rounding="floor", seed=11,
                churn=SCHEDULE)
    base.update(kw)
    return EngineConfig(**base)


def _run(engine, config, loads):
    return make_engine(engine).run(TOPO, config, loads)


def _run_dynamic(engine, config, loads):
    return make_engine(engine).run_dynamic(TOPO, config, loads)


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["batched", "network", "async"])
    @pytest.mark.parametrize("rounding", DETERMINISTIC)
    @pytest.mark.parametrize("scheme", ["fos", "sos"])
    def test_static_matches_reference(self, engine, rounding, scheme):
        cfg = _config(rounding=rounding, scheme=scheme, keep_loads=True)
        ref = _run("reference", cfg, _loads())[0]
        res = _run(engine, cfg, _loads())[0]
        for field in STATIC_FIELDS:
            np.testing.assert_array_equal(
                res.table.column(field), ref.table.column(field),
                err_msg=field,
            )
        np.testing.assert_array_equal(
            res.final_state.load, ref.final_state.load
        )
        np.testing.assert_array_equal(
            res.final_state.flows, ref.final_state.flows
        )
        for got, want in zip(res.loads_history, ref.loads_history):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("engine", ["batched", "network", "async"])
    @pytest.mark.parametrize("rounding", ["floor", "nearest"])
    def test_dynamic_matches_reference(self, engine, rounding):
        cfg = _config(
            rounding=rounding, arrivals="poisson:1.0,depart=0.5"
        )
        ref = _run_dynamic("reference", cfg, _loads())[0]
        res = _run_dynamic(engine, cfg, _loads())[0]
        for field in DYNAMIC_FIELDS:
            np.testing.assert_array_equal(
                res.table.column(field), ref.table.column(field),
                err_msg=field,
            )
        np.testing.assert_array_equal(
            res.final_state.load, ref.final_state.load
        )

    @pytest.mark.parametrize("engine", ["batched", "network", "async"])
    def test_freeze_policy_matches_reference(self, engine):
        cfg = _config(churn=FREEZE)
        ref = _run("reference", cfg, _loads())[0]
        res = _run(engine, cfg, _loads())[0]
        for field in STATIC_FIELDS:
            np.testing.assert_array_equal(
                res.table.column(field), ref.table.column(field),
                err_msg=field,
            )

    def test_batched_multi_replica_matches_reference_rows(self):
        loads = _loads(B=3)
        cfg = _config()
        ref = _run("reference", cfg, loads)
        bat = _run("batched", cfg, loads)
        assert len(bat) == 3
        for b in range(3):
            for field in STATIC_FIELDS:
                np.testing.assert_array_equal(
                    bat[b].table.column(field), ref[b].table.column(field),
                    err_msg=f"replica {b}: {field}",
                )

    def test_stepwise_equals_fused(self):
        cfg = _config()
        eng = make_engine("reference")
        fused = eng.run(TOPO, cfg, _loads())[0]
        handle = eng.prepare(TOPO, cfg, _loads())
        for _ in range(cfg.rounds):
            eng.step(handle)
        stepwise = eng.metrics(handle).results()[0]
        for field in STATIC_FIELDS:
            np.testing.assert_array_equal(
                stepwise.table.column(field), fused.table.column(field),
            )


class TestConservation:
    @pytest.mark.parametrize("engine", CHURN_ENGINES)
    @pytest.mark.parametrize("rounding", DETERMINISTIC + STOCHASTIC)
    def test_total_load_survives_schedule(self, engine, rounding):
        loads = _loads()
        cfg = _config(rounding=rounding)
        res = _run(engine, cfg, loads)[0]
        totals = res.table.column("total_load")
        assert (totals == loads.sum()).all()

    @pytest.mark.parametrize("engine", ["network", "async"])
    def test_with_faults_composed(self, engine):
        loads = _loads()
        cfg = _config(faults="drop:0.3")
        res = _run(engine, cfg, loads)[0]
        totals = res.table.column("total_load")
        assert (totals == loads.sum()).all()

    def test_async_with_latency_conserves_at_net_level(self):
        # With real latency the async engine is not round-equivalent to
        # the synchronous fleet, but total load (including tokens in
        # flight) must survive churn: shipments crossing a patch bounce.
        plan = plan_churn(TOPO, SCHEDULE)
        from repro.network.async_engine import AsyncNetwork

        load = plan.expand_load(_loads()[0])
        total0 = load.sum()
        for skew in (None, 1):
            net = AsyncNetwork(
                plan.topo0, load.copy(), scheme="sos", rounding="floor",
                seed=3, link_latency=0.7, max_skew=skew,
            )
            for r in range(1, 16):
                patch = plan.patch_at(r)
                if patch is not None:
                    net.apply_churn(patch)
                net.step()
                assert abs(net.total_load - total0) < 1e-9
            assert net.bounced_count > 0  # shipments did cross patches

    def test_dynamic_accounting_balances(self):
        cfg = _config(arrivals="poisson:2.0,depart=1.0", rounds=15)
        loads = _loads()
        res = _run_dynamic("network", cfg, loads)[0]
        tot = res.table.column("total_load")
        arr = res.table.column("arrived")
        dep = res.table.column("departed")
        expected = loads.sum() + np.cumsum(arr - dep)
        np.testing.assert_allclose(tot, expected)


class TestShardedChurn:
    """Satellite of the pool PR: churn runs *through* the sharded engine.

    The parent compiles the (possibly random) schedule into one
    deterministic :class:`~repro.core.churn.ChurnPlan` and broadcasts it,
    so every shard patches identically and the merge is bit-identical to
    the batched run — including ``random:`` schedules, whose randomness
    must be drawn exactly once.
    """

    @pytest.mark.parametrize("rounding", DETERMINISTIC + STOCHASTIC)
    def test_static_sharded_matches_batched(self, rounding):
        cfg = _config(rounding=rounding)
        batched = _run("batched", cfg, _loads(B=5))
        sharded = _run("sharded", replace(cfg, workers=2), _loads(B=5))
        for b, (want, got) in enumerate(zip(batched, sharded)):
            for field in STATIC_FIELDS:
                np.testing.assert_array_equal(
                    got.table.column(field), want.table.column(field),
                    err_msg=f"replica {b}: {field}",
                )
            np.testing.assert_array_equal(
                got.final_state.load, want.final_state.load
            )

    def test_random_schedule_drawn_once(self):
        # A seed-derived random schedule must hit every shard identically;
        # drawing it per worker would churn different topologies per shard.
        cfg = _config(churn="random:0.1", rounding="floor")
        batched = _run("batched", cfg, _loads(B=5))
        sharded = _run("sharded", replace(cfg, workers=2), _loads(B=5))
        for want, got in zip(batched, sharded):
            np.testing.assert_array_equal(
                got.table.column("total_load"), want.table.column("total_load")
            )
            np.testing.assert_array_equal(
                got.final_state.load, want.final_state.load
            )

    def test_dynamic_sharded_matches_batched(self):
        cfg = _config(arrivals="poisson:1.0,depart=0.5", rounding="nearest")
        batched = _run_dynamic("batched", cfg, _loads(B=5))
        sharded = _run_dynamic("sharded", replace(cfg, workers=2), _loads(B=5))
        for want, got in zip(batched, sharded):
            for field in DYNAMIC_FIELDS:
                np.testing.assert_array_equal(
                    got.table.column(field), want.table.column(field),
                    err_msg=field,
                )
            np.testing.assert_array_equal(
                got.final_state.load, want.final_state.load
            )

    def test_sharded_refuses_churn_with_staleness(self):
        # The heterogeneous guard that remains: churn cannot compose with
        # the bounded-staleness knobs on the sharded engine.
        cfg = _config(workers=2, latency_model=1.0)
        with pytest.raises(ConfigurationError, match="churn"):
            _run("sharded", cfg, _loads(B=4))


class TestGuards:

    def test_forced_spectral_refuses_churn(self):
        cfg = _config(rounding="identity", fast_path="spectral")
        with pytest.raises(ConfigurationError, match="churn"):
            _run("batched", cfg, _loads())

    def test_forced_compiled_kernel_refuses_churn(self):
        cfg = _config(kernel="python")
        with pytest.raises(ConfigurationError, match="churn"):
            _run("batched", cfg, _loads())

    def test_auto_fast_path_falls_back(self, caplog):
        cfg = _config(rounding="identity", fast_path="auto")
        with caplog.at_level(logging.INFO, logger="repro.engines.batched"):
            res = _run("batched", cfg, _loads())[0]
        totals = res.table.column("total_load")
        assert np.allclose(totals, totals[0])

    def test_churn_rejects_switch(self):
        with pytest.raises(ConfigurationError, match="switch"):
            _config(switch=("fixed", 5)).validate()

    def test_churn_rejects_speeds(self):
        with pytest.raises(ConfigurationError):
            _config(speeds=np.ones(TOPO.n) * 2).validate()

    def test_churn_rejects_float32(self):
        with pytest.raises(ConfigurationError):
            _config(precision="float32").validate()


class TestRandomChurnAcrossEngines:
    @pytest.mark.parametrize("engine", CHURN_ENGINES)
    def test_random_spec_conserves(self, engine):
        loads = _loads()
        cfg = _config(churn="random:0.4", rounds=15)
        res = _run(engine, cfg, loads)[0]
        totals = res.table.column("total_load")
        assert (totals == loads.sum()).all()

    def test_random_spec_identical_plan_everywhere(self):
        # The spec string resolves through a seed-derived stream, so all
        # backends must see the same schedule: bit-identical traces.
        loads = _loads()
        cfg = _config(churn="random:0.4", rounds=15)
        ref = _run("reference", cfg, loads)[0]
        net = _run("network", cfg, loads)[0]
        for field in STATIC_FIELDS:
            np.testing.assert_array_equal(
                net.table.column(field), ref.table.column(field),
                err_msg=field,
            )
