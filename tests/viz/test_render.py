"""Tests for the PGM renderer (Figures 9-11)."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.viz import load_to_grayscale, render_frames, write_pgm


class TestGrayscale:
    def test_balanced_load_is_white(self):
        img = load_to_grayscale(np.full(12, 5.0), (3, 4))
        assert img.shape == (3, 4)
        assert np.all(img == 255)

    def test_adaptive_extreme_is_black(self):
        load = np.zeros(16)
        load[0] = 16.0
        img = load_to_grayscale(load, (4, 4), mode="adaptive")
        assert img.reshape(-1)[0] == 0  # furthest from average
        assert img.dtype == np.uint8

    def test_threshold_mode_clips(self):
        avg = 10.0
        load = np.full(9, avg)
        load[0] = avg + 50.0  # way past the threshold
        load[1] = avg + 5.0   # halfway
        img = load_to_grayscale(load, (3, 3), mode="threshold", threshold=10.0,
                                average=avg)
        flat = img.reshape(-1)
        assert flat[0] == 0
        assert flat[1] == round(255 * 0.5)
        assert flat[2] == 255

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            load_to_grayscale(np.ones(5), (2, 3))
        with pytest.raises(ConfigurationError):
            load_to_grayscale(np.ones(6), (2, 3), mode="psychedelic")
        with pytest.raises(ConfigurationError):
            load_to_grayscale(np.ones(6), (2, 3), mode="threshold", threshold=0)


class TestPgm:
    def test_write_and_parse_header(self, tmp_path):
        img = np.arange(12, dtype=np.uint8).reshape(3, 4)
        path = write_pgm(str(tmp_path / "x.pgm"), img)
        data = open(path, "rb").read()
        assert data.startswith(b"P5\n4 3\n255\n")
        assert data[len(b"P5\n4 3\n255\n"):] == img.tobytes()

    def test_rejects_bad_input(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_pgm(str(tmp_path / "x.pgm"), np.ones((2, 2)))  # float

    def test_render_frames(self, tmp_path):
        loads = [np.random.default_rng(i).random(16) for i in range(3)]
        paths = render_frames(loads, (4, 4), str(tmp_path / "frames"))
        assert len(paths) == 3
        for p in paths:
            assert open(p, "rb").read(2) == b"P5"
