"""Tests for terminal visualisations."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.viz import ascii_heatmap, sparkline


class TestHeatmap:
    def test_balanced_grid_is_blank(self):
        art = ascii_heatmap(np.full(16, 3.0), (4, 4))
        assert set(art) <= {" ", "\n"}

    def test_hotspot_is_darkest(self):
        load = np.zeros(16)
        load[0] = 100.0
        art = ascii_heatmap(load, (4, 4))
        assert "@" in art

    def test_downsampling_caps_width(self):
        load = np.zeros(200 * 200)
        art = ascii_heatmap(load, (200, 200), width=40)
        lines = art.split("\n")
        assert max(len(l) for l in lines) <= 40

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_heatmap(np.ones(5), (2, 3))


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4, 5])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_downsamples_long_series(self):
        s = sparkline(np.arange(1000), width=50)
        assert len(s) <= 50

    def test_log_scale(self):
        s = sparkline([1, 10, 100, 1000], log=True)
        assert s[0] == "▁" and s[-1] == "█"
