"""Tests for the CSV series exporter."""

import csv

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FirstOrderScheme,
    LoadBalancingProcess,
    Simulator,
    cycle,
    point_load,
)
from repro.viz import RESULT_COLUMNS, result_to_csv, write_csv


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(
            str(tmp_path / "a.csv"), {"x": [1, 2], "y": [3.5, 4.5]}
        )
        rows = list(csv.DictReader(open(path)))
        assert rows[0] == {"x": "1", "y": "3.5"}
        assert len(rows) == 2

    def test_rejects_ragged_columns(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(str(tmp_path / "a.csv"), {"x": [1], "y": [1, 2]})

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(str(tmp_path / "a.csv"), {})


class TestResultToCsv:
    def test_exports_all_metric_columns(self, tmp_path):
        topo = cycle(8)
        proc = LoadBalancingProcess(
            FirstOrderScheme(topo),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        result = Simulator(proc).run(point_load(topo, 80), rounds=10)
        path = result_to_csv(result, str(tmp_path / "run.csv"))
        rows = list(csv.DictReader(open(path)))
        assert len(rows) == 11
        assert set(rows[0]) == set(RESULT_COLUMNS)
        assert float(rows[0]["total_load"]) == 80.0
