"""Public-API surface tests: exports, exception hierarchy, versioning."""

import inspect

import pytest

import repro
from repro import exceptions


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} exported but missing"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.graphs
        import repro.io
        import repro.network
        import repro.viz  # noqa: F401

    def test_key_entry_points_are_callable_or_classes(self):
        for name in (
            "torus_2d",
            "SecondOrderScheme",
            "LoadBalancingProcess",
            "Simulator",
            "beta_opt",
            "point_load",
            "RandomizedExcessRounding",
        ):
            obj = getattr(repro, name)
            assert callable(obj), name


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name, obj in vars(exceptions).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not exceptions.ReproError:
                    assert issubclass(obj, exceptions.ReproError), name

    def test_configuration_family(self):
        for cls in (
            exceptions.TopologyError,
            exceptions.SpeedError,
            exceptions.SchemeError,
        ):
            assert issubclass(cls, exceptions.ConfigurationError)

    def test_convergence_is_simulation_error(self):
        assert issubclass(exceptions.ConvergenceError, exceptions.SimulationError)

    def test_single_catch_all(self):
        with pytest.raises(exceptions.ReproError):
            repro.cycle(1)
        with pytest.raises(exceptions.ReproError):
            repro.beta_opt(2.0)
        with pytest.raises(exceptions.ReproError):
            repro.make_rounding("nope")


class TestDocstrings:
    def test_public_callables_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if callable(getattr(repro, name, None))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_modules_documented(self):
        import repro.core.rounding
        import repro.core.schemes
        import repro.network.engine

        for mod in (repro, repro.core.rounding, repro.core.schemes,
                    repro.network.engine):
            assert (mod.__doc__ or "").strip()
