"""Qualitative regression pins for the committed ``BENCH_sharded.json``.

The sharded bench's headline is its *parity flag*: the merged multiprocess
traces are bit-identical to the single-process batched run.  These pins
read the committed artifact so a future merge-path change that silently
drops the parity check — or archives a run whose shards diverged — fails
CI without re-running the bench.  The ladder floors pin the measurement
contract itself: which workload was measured, what speedup floor applies,
and that the floor is only *asserted* on hardware the contract covers
(>= 4 usable cores at ci/paper scale).
"""

import json
from pathlib import Path

import pytest

BENCH = Path(__file__).resolve().parents[1] / "BENCH_sharded.json"

#: The workload the floors are defined over; archiving a different
#: instance silently weakens the acceptance contract.
EXPECTED_WORKLOAD = {
    "n": 1024,
    "rounds": 200,
    "n_replicas": 128,
    "record_every": 10,
    "rounding": "randomized-excess",
}
SPEEDUP_FLOOR = 2.0
MIN_CORES_FOR_ASSERT = 4


@pytest.fixture(scope="module")
def summary():
    data = json.loads(BENCH.read_text())
    return data["summary"]


def test_parity_flags_all_set(summary):
    # Sharding must never change results: every archived worker count
    # carries a bit-identical flag, and every flag is True.
    flags = {k: v for k, v in summary.items() if k.endswith("_bit_identical")}
    assert "sharded_w1_bit_identical" in flags
    for key, value in flags.items():
        assert value is True, f"{key} archived as non-identical"


def test_workload_matches_contract(summary):
    for key, expected in EXPECTED_WORKLOAD.items():
        assert summary[key] == expected, (
            f"{key}={summary[key]!r} archived, contract measures {expected!r}"
        )


def test_floor_constants_pinned(summary):
    assert summary["speedup_floor"] == SPEEDUP_FLOOR
    assert summary["min_cores_for_assert"] == MIN_CORES_FOR_ASSERT


def test_assert_flag_consistent_with_cores(summary):
    # The floor is asserted exactly when the hardware is in contract;
    # an artifact claiming asserted on a small box (or vice versa) means
    # the bench's gating logic changed out from under the archive.
    in_contract = summary["usable_cores"] >= MIN_CORES_FOR_ASSERT
    assert summary["asserted"] == in_contract
    if summary["asserted"]:
        assert summary["best_speedup"] >= SPEEDUP_FLOOR


def test_ladder_covers_usable_cores(summary):
    # The ladder always measures w=1 and the full usable-core count.
    cores = summary["usable_cores"]
    assert cores >= 1
    for w in {1, cores}:
        assert f"sharded_w{w}_seconds" in summary
        assert summary[f"sharded_w{w}_replicas_per_sec"] > 0
        assert summary[f"sharded_w{w}_speedup"] == pytest.approx(
            summary["batched_seconds"] / summary[f"sharded_w{w}_seconds"]
        )


def test_throughput_figures_self_consistent(summary):
    assert summary["batched_replicas_per_sec"] == pytest.approx(
        summary["n_replicas"] / summary["batched_seconds"]
    )
    assert summary["best_speedup"] == pytest.approx(
        max(
            v for k, v in summary.items() if k.endswith("_speedup")
            if k != "best_speedup"
        )
    )
