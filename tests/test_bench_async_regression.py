"""Qualitative regression pins for the committed ``BENCH_async.json``.

The async ladder is the paper-facing headline of the bounded-staleness
work: FOS degrades *gracefully* with link latency (final imbalance stays
within tolerance of the synchronous run at every level), while SOS with
its near-optimal beta *diverges* under any staleness at all.  These pins
read the committed artifact so a future engine change that silently
inverts that result — e.g. by re-ordering the announce/compute phases or
breaking the in-flight ledger — fails CI without re-running the bench.
"""

import json
import math
from pathlib import Path

import pytest

BENCH = Path(__file__).resolve().parents[1] / "BENCH_async.json"

#: FOS-graceful tolerance: final imbalance at any latency stays within a
#: factor of 2 of the synchronous final imbalance (measured ratios sit in
#: 0.67..1.05 — latency mildly helps late-stage mixing at this scale).
FOS_TOLERANCE = 2.0
#: SOS-divergent floor: any nonzero staleness blows the near-optimal-beta
#: run up by many orders of magnitude (measured >= 1e12).
SOS_DIVERGENCE = 1e6


@pytest.fixture(scope="module")
def summary():
    data = json.loads(BENCH.read_text())
    return data["summary"]


def _levels(summary, scheme):
    return [lv for lv in summary["levels"] if lv["scheme"] == scheme]


def test_ladder_shape(summary):
    latencies = summary["latencies"]
    assert latencies[0] == 0.0 and latencies == sorted(latencies)
    for scheme in ("fos", "sos"):
        assert [lv["latency"] for lv in _levels(summary, scheme)] == latencies


def test_zero_latency_parity_flag(summary):
    # The async engine reproduces the synchronous network bit for bit at
    # zero latency — the anchor of the whole differential harness.
    assert summary["parity_zero_latency_bit_identical"] is True


def test_fos_degrades_gracefully(summary):
    fos = _levels(summary, "fos")
    sync_final = fos[0]["final_max_minus_avg"]
    assert sync_final > 0
    for lv in fos[1:]:
        ratio = lv["final_max_minus_avg"] / sync_final
        assert ratio == pytest.approx(lv["degradation_vs_sync"], rel=1e-9)
        assert 1.0 / FOS_TOLERANCE <= ratio <= FOS_TOLERANCE, (
            f"FOS at latency {lv['latency']} no longer graceful: "
            f"degradation {ratio:.3f}"
        )


def test_fos_conserves_total_load(summary):
    n = summary["n"]
    for lv in _levels(summary, "fos"):
        assert lv["total_load_with_in_flight"] == 1000.0 * n


def test_staleness_tracks_latency(summary):
    for scheme in ("fos", "sos"):
        for lv in _levels(summary, scheme):
            assert lv["max_staleness"] == math.ceil(lv["latency"])
            assert lv["mean_staleness"] <= lv["max_staleness"]
            if lv["latency"] == 0.0:
                assert lv["mean_staleness"] == 0.0


def test_sos_diverges_above_threshold(summary):
    # beta_sos is the graph's near-optimal momentum (well above the
    # staleness-robust range) — the divergence flag must stay set at
    # every nonzero latency.
    assert summary["beta_sos"] > 1.5
    sos = _levels(summary, "sos")
    assert sos[0]["final_max_minus_avg"] < 100.0  # synchronous converges
    for lv in sos[1:]:
        assert lv["degradation_vs_sync"] > SOS_DIVERGENCE, (
            f"SOS at latency {lv['latency']} no longer diverges "
            f"(degradation {lv['degradation_vs_sync']:.3g}) — the headline "
            "staleness result inverted"
        )
