"""Tests for the Table I reproduction driver."""

import pytest

from repro.experiments import reproduce_table1


class TestTable1:
    def test_produces_all_rows(self):
        rows = reproduce_table1(scale="tiny", seed=2)
        assert len(rows) == 5
        assert {r.key for r in rows} == {
            "torus-1000", "torus-100", "cm", "rgg", "hypercube",
        }

    def test_rows_have_consistent_beta(self):
        from repro import beta_opt

        for row in reproduce_table1(scale="tiny", seed=2):
            assert row.beta == pytest.approx(beta_opt(row.lam))

    def test_paper_scale_errors_are_tiny(self):
        rows = {r.key: r for r in reproduce_table1(scale="tiny", seed=2)}
        for key in ("torus-1000", "torus-100", "hypercube"):
            err = rows[key].beta_abs_error
            assert err is not None
            assert err < 1e-6, key

    def test_random_rows_have_no_error_field(self):
        rows = {r.key: r for r in reproduce_table1(scale="tiny", seed=2)}
        assert rows["cm"].beta_abs_error is None
        assert rows["rgg"].beta_abs_error is None
