"""Smoke + shape tests for the figure drivers at tiny scale.

Each driver must run end to end, produce the documented series, and show the
paper's qualitative shape where that is already visible at tiny scale.
"""

import pytest

from repro.experiments import figures, list_experiments, run_experiment
from repro.io import ExperimentRecord


class TestRegistry:
    def test_all_figures_registered(self):
        names = list_experiments()
        for expected in [
            "table1", "fig01", "fig02", "fig03", "fig04_05", "fig06",
            "fig07", "fig08", "fig09_11", "fig12", "fig13", "fig14", "fig15",
        ]:
            assert expected in names

    def test_unknown_experiment(self):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_run_experiment_persists(self, tmp_path):
        record = run_experiment(
            "table1", output_dir=str(tmp_path), scale="tiny"
        )
        assert isinstance(record, ExperimentRecord)
        assert (tmp_path / "table1.json").exists()


class TestFigureDrivers:
    def test_fig01_sos_beats_fos(self):
        rec = figures.fig01_torus_sos_vs_fos(scale="tiny", rounds=300)
        assert rec.summary["sos_round_below_10"] is not None
        assert set(rec.series) >= {
            "round", "sos_max_minus_avg", "fos_max_minus_avg",
            "sos_max_local_diff", "sos_potential_per_node",
        }
        # SOS converges no later than FOS on the torus.
        fos_round = rec.summary["fos_round_below_10"]
        if fos_round is not None:
            assert rec.summary["sos_round_below_10"] <= fos_round

    def test_fig02_load_insensitivity(self):
        rec = figures.fig02_initial_load(
            scale="tiny", rounds=300, averages=(10, 1000)
        )
        # Plateau is a small constant regardless of the total load.
        assert rec.summary["avg10_plateau"] < 20
        assert rec.summary["avg1000_plateau"] < 20

    def test_fig03_ideal_converges_lower(self):
        rec = figures.fig03_discrete_vs_ideal(scale="tiny", rounds=300)
        assert rec.summary["ideal_sos_final"] < 1.0
        assert rec.summary["discrete_sos_final"] < 30

    def test_fig04_05_switch_drops_residual(self):
        rec = figures.fig04_05_switching(
            scale="tiny", rounds=260, switch_rounds=(120, 160)
        )
        sos_plateau = rec.summary["sos_only_plateau_max_minus_avg"]
        assert rec.summary["switch120_final_max_minus_avg"] <= sos_plateau + 1.0

    def test_fig06_total_load_drift_negligible(self):
        rec = figures.fig06_ideal_error(scale="tiny", rounds=200)
        total = rec.params["n"] * 1000
        assert rec.summary["max_total_drift"] < 1e-5 * total

    def test_fig07_leading_mode_tracked(self):
        rec = figures.fig07_eigencoefficients(scale="tiny", rounds=200)
        assert len(rec.series["leading_coefficient"]) == 201
        assert rec.summary["stable_leader_span_rounds"] >= 1

    def test_fig08_switch_sweep(self):
        rec = figures.fig08_switch_sweep(
            scale="tiny", rounds=200, switch_rounds=(60, 120)
        )
        assert "fos60_max_minus_avg" in rec.series
        assert rec.summary["fos60_final"] <= rec.summary["sos_only_final"] + 2.0

    def test_fig02_batched_seed_ensemble(self):
        """ROADMAP port: one batched call produces mean/std curves."""
        rec = figures.fig02_initial_load(
            scale="tiny", rounds=120, averages=(10, 1000),
            engine="batched", n_seeds=4,
        )
        assert rec.params["n_seeds"] == 4
        for avg in (10, 1000):
            mean = rec.series[f"avg{avg}_max_minus_avg"]
            std = rec.series[f"avg{avg}_max_minus_avg_std"]
            assert len(mean) == len(std) == len(rec.series["round"])
            assert all(s >= 0 for s in std)
            assert rec.summary[f"avg{avg}_plateau"] < 20
        # ensemble randomness: seeds diverge, so the curve has spread
        assert max(rec.series["avg1000_max_minus_avg_std"]) > 0

    def test_fig08_batched_seed_ensemble(self):
        rec = figures.fig08_switch_sweep(
            scale="tiny", rounds=120, switch_rounds=(40, 80),
            engine="batched", n_seeds=4,
        )
        for tag in ("sos_only", "fos40", "fos80"):
            assert f"{tag}_max_minus_avg" in rec.series
            assert f"{tag}_max_minus_avg_std" in rec.series
            assert f"{tag}_final" in rec.summary
        assert rec.summary["fos40_final"] <= rec.summary["sos_only_final"] + 2.0

    def test_fig09_11_renders(self, tmp_path):
        rec = figures.fig09_11_renders(
            scale="tiny", snapshot_rounds=(5, 20, 60), directory=str(tmp_path)
        )
        assert rec.summary["frames_written"] == 5  # 3 snapshots + 2 threshold
        # After switching to FOS the picture gets whiter (less imbalance).
        assert (
            rec.summary["white_fraction_after_switch"]
            >= rec.summary["white_fraction_before_switch"] - 0.05
        )

    @pytest.mark.parametrize(
        "driver", [figures.fig12_random_graph, figures.fig13_hypercube]
    )
    def test_expander_like_graphs_show_small_gain(self, driver):
        rec = driver(scale="tiny", rounds=120)
        # SOS converges; speed-up is modest compared to the torus.
        assert rec.summary["sos_round_below_10"] is not None
        assert rec.summary["predicted_speedup"] < 4.0

    def test_fig14_rgg_runs(self):
        rec = figures.fig14_rgg(scale="tiny", rounds=200)
        assert rec.summary["sos_round_below_10"] is not None

    def test_fig15_combined(self):
        rec = figures.fig15_torus_combined(scale="tiny", rounds=150, switch_round=80)
        assert set(rec.series) >= {
            "max_minus_avg", "max_local_diff", "potential_per_node",
            "leading_coefficient", "hybrid_max_minus_avg",
        }
        assert rec.summary["hybrid_final"] <= rec.summary["sos_final"] + 1.0
