"""Tests for the sweep utility and power-law fitting."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.experiments import fit_power_law, torus_size_sweep


class TestFitPowerLaw:
    def test_exact_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**2
        exponent, prefactor = fit_power_law(x, y)
        assert exponent == pytest.approx(2.0)
        assert prefactor == pytest.approx(3.0)

    def test_ignores_nonpositive_points(self):
        exponent, _ = fit_power_law([1, 2, 4, 0], [2, 4, 8, -1])
        assert exponent == pytest.approx(1.0)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ConfigurationError):
            fit_power_law([0.0, 0.0], [1.0, 1.0])


class TestTorusSizeSweep:
    def test_sweep_points_structure(self):
        points = torus_size_sweep([6, 8], kind="sos", average_load=100)
        assert [p.size for p in points] == [6, 8]
        for p in points:
            assert p.n == p.size**2
            assert 0.0 < p.lam < 1.0
            assert p.rounds_to_balance is not None

    def test_rounds_grow_with_size(self):
        points = torus_size_sweep([6, 14], kind="sos", average_load=100)
        assert points[1].rounds_to_balance > points[0].rounds_to_balance

    def test_fos_slower_than_sos(self):
        fos = torus_size_sweep([12], kind="fos", average_load=100)[0]
        sos = torus_size_sweep([12], kind="sos", average_load=100)[0]
        assert fos.rounds_to_balance > sos.rounds_to_balance

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            torus_size_sweep([6], kind="third-order")

class TestDynamicReplicaEnsemble:
    def _config(self, rounds=20, seed=2):
        from repro.engines import EngineConfig

        return EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=rounds,
            seed=seed,
        )

    def test_one_batched_call_covers_full_cross_product(self):
        from repro import torus_2d, uniform_load
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        loads = np.stack([uniform_load(topo, 10), uniform_load(topo, 30)])
        ensemble = dynamic_replica_ensemble(
            topo,
            self._config(),
            ["poisson:2.0,depart=1.0", "burst:100/5"],
            seeds=[0, 7, 11],
            initial_loads=loads,
        )
        assert ensemble.n_replicas == 2 * 2 * 3
        # labels enumerate models outer, loads middle, seeds inner
        assert ensemble.labels[0] == ("m0", 0, 0)
        assert ensemble.labels[-1] == ("m1", 1, 11)
        assert "PoissonArrivals" in ensemble.model_keys["m0"]
        assert "BurstArrivals" in ensemble.model_keys["m1"]
        for key in ("m0", "m1"):
            assert f"{key}_steady_state_mean" in ensemble.stats
            assert ensemble.stats[f"{key}_arrived_total_mean"] >= 0.0

    def test_streams_keyed_by_seed_value_not_batch_position(self):
        """A replica's trajectory is identical whether it runs alone or
        inside a bigger ensemble — common random numbers by seed value."""
        from repro import torus_2d
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        small = dynamic_replica_ensemble(
            topo, self._config(), ["poisson:2.0"], seeds=[7]
        )
        big = dynamic_replica_ensemble(
            topo, self._config(), ["poisson:2.0", "hotspot:0:3"],
            seeds=[3, 7],
        )
        alone = small.results[0]
        # model m0, seed 7 sits at batch position 1 in the big ensemble
        assert big.labels[1] == ("m0", 0, 7)
        inside = big.results[1]
        np.testing.assert_array_equal(
            alone.final_state.load, inside.final_state.load
        )
        np.testing.assert_array_equal(
            alone.series("arrived"), inside.series("arrived")
        )

    def test_matches_reference_engine(self):
        from repro import torus_2d
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        batched = dynamic_replica_ensemble(
            topo, self._config(), ["burst:80/4"], seeds=[0, 1]
        )
        reference = dynamic_replica_ensemble(
            topo, self._config(), ["burst:80/4"], seeds=[0, 1],
            engine="reference",
        )
        for b, r in zip(batched.results, reference.results):
            np.testing.assert_array_equal(
                b.final_state.load, r.final_state.load
            )
        assert batched.stats == pytest.approx(reference.stats)

    def test_validates_inputs(self):
        from repro import torus_2d
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        with pytest.raises(ConfigurationError):
            dynamic_replica_ensemble(topo, self._config(), [])
        with pytest.raises(ConfigurationError):
            dynamic_replica_ensemble(
                topo, self._config(), ["poisson:1.0"], seeds=[]
            )
        with pytest.raises(ConfigurationError):
            dynamic_replica_ensemble(
                topo, self._config(), ["poisson:1.0"],
                initial_loads=np.zeros((2, topo.n + 1)),
            )


class TestParamGrid:
    def test_points_row_major(self):
        from repro.experiments import ParamGrid

        grid = ParamGrid(beta=[1.2, 1.5], alpha_scale=[0.5, 1.0, 2.0])
        assert grid.n_points == 6
        pts = grid.points()
        assert pts[0] == {"beta": 1.2, "alpha_scale": 0.5}
        assert pts[1] == {"beta": 1.2, "alpha_scale": 1.0}
        assert pts[-1] == {"beta": 1.5, "alpha_scale": 2.0}
        assert len(grid.labels()) == 6
        assert grid.labels()[0] == "beta=1.2,alpha_scale=0.5"

    def test_replica_params_repeat_seeds_innermost(self):
        from repro.experiments import ParamGrid

        grid = ParamGrid(switch_round=[None, 10])
        params = grid.replica_params(n_seeds=3)
        assert params.switch_rounds == [None, None, None, 10, 10, 10]

    def test_validation(self):
        from repro import ConfigurationError
        from repro.experiments import ParamGrid

        with pytest.raises(ConfigurationError):
            ParamGrid()
        with pytest.raises(ConfigurationError):
            ParamGrid(beta=[])
        with pytest.raises(ConfigurationError):
            ParamGrid(gamma=[1.0])


class TestSweepEnsemble:
    def _topo(self):
        from repro import torus_2d

        return torus_2d(8, 8)

    def test_one_call_matches_per_point_ensembles(self):
        """The fused sweep reproduces the old per-point replica_ensemble
        loop replica for replica (deterministic rounding: bit for bit)."""
        from dataclasses import replace

        from repro.engines import EngineConfig
        from repro.experiments import ParamGrid, replica_ensemble, sweep_ensemble

        topo = self._topo()
        config = EngineConfig(
            scheme="sos", beta=1.7, rounding="nearest", rounds=30, seed=5
        )
        grid = ParamGrid(switch_round=[None, 10, 20])
        sweep = sweep_ensemble(
            topo, config, grid, n_seeds=3, average_load=100, engine="batched"
        )
        assert sweep.n_replicas == 9
        for i, switch in enumerate([None, 10, 20]):
            solo = replica_ensemble(
                topo,
                replace(
                    config,
                    switch=("fixed", switch) if switch is not None else None,
                ),
                n_replicas=3,
                average_load=100,
                engine="batched",
            )
            for a, b in zip(sweep.point_results(i), solo.results):
                np.testing.assert_array_equal(
                    a.final_state.load, b.final_state.load
                )
                np.testing.assert_array_equal(
                    np.asarray(a.series("max_minus_avg")),
                    np.asarray(b.series("max_minus_avg")),
                )

    def test_sharded_sweep_bit_identical_to_batched(self):
        from dataclasses import replace

        from repro.engines import EngineConfig
        from repro.experiments import ParamGrid, sweep_ensemble

        topo = self._topo()
        config = EngineConfig(
            scheme="sos", beta=1.7, rounding="randomized-excess", rounds=20,
            seed=1,
        )
        grid = ParamGrid(switch_round=[None, 8], load_scale=[1.0, 2.0])
        batched = sweep_ensemble(
            topo, config, grid, n_seeds=2, average_load=100, engine="batched"
        )
        sharded = sweep_ensemble(
            topo, replace(config, workers=2), grid, n_seeds=2,
            average_load=100, engine="sharded",
        )
        for a, b in zip(batched.results, sharded.results):
            np.testing.assert_array_equal(
                a.final_state.load, b.final_state.load
            )

    def test_reference_engine_supported(self):
        from repro.engines import EngineConfig
        from repro.experiments import ParamGrid, sweep_ensemble

        topo = self._topo()
        config = EngineConfig(
            scheme="sos", beta=1.7, rounding="floor", rounds=15, seed=0
        )
        sweep = sweep_ensemble(
            topo, config, ParamGrid(beta=[1.2, 1.8]), n_seeds=2,
            average_load=50, engine="reference",
        )
        assert sweep.n_replicas == 4
        assert all("final_max_minus_avg_mean" in s for s in sweep.point_stats)

    def test_dynamic_sweep(self):
        from repro.engines import EngineConfig
        from repro.experiments import ParamGrid, sweep_ensemble

        topo = self._topo()
        config = EngineConfig(
            scheme="sos", beta=1.5, rounding="nearest", rounds=20, seed=0,
            arrivals="poisson:2.0,depart=1.0",
        )
        sweep = sweep_ensemble(
            topo, config, ParamGrid(arrival_scale=[0.5, 1.0, 2.0]),
            n_seeds=2, average_load=50,
        )
        assert sweep.dynamic and sweep.n_replicas == 6
        steady = [s["steady_state_mean"] for s in sweep.point_stats]
        # more churn -> more steady-state imbalance
        assert steady[0] < steady[-1]

    def test_arrival_scale_axis_needs_dynamic_config(self):
        from repro import ConfigurationError
        from repro.engines import EngineConfig
        from repro.experiments import ParamGrid, sweep_ensemble

        with pytest.raises(ConfigurationError, match="arrival"):
            sweep_ensemble(
                self._topo(),
                EngineConfig(rounds=5),
                ParamGrid(arrival_scale=[1.0]),
            )

    def test_rejects_load_batches(self):
        from repro import ConfigurationError
        from repro.engines import EngineConfig
        from repro.experiments import ParamGrid, sweep_ensemble

        topo = self._topo()
        with pytest.raises(ConfigurationError, match="base load row"):
            sweep_ensemble(
                topo,
                EngineConfig(rounds=5),
                ParamGrid(beta=[1.5]),
                initial_loads=np.zeros((2, topo.n)),
            )


class TestBetaSensitivitySweep:
    def test_one_call_shape_and_optimum(self):
        from repro.experiments import beta_sensitivity_sweep

        out = beta_sensitivity_sweep(side=10, rounds=400, average_load=100)
        assert out["engine_calls"] == 1
        rounds_map = out["rounds_to_balance"]
        assert len(rounds_map) == 5
        opt = rounds_map[f"{out['beta_opt']:.6f}"]
        fos = rounds_map["1.000000"]
        assert opt is not None
        # beta_opt converges faster than plain FOS (beta = 1)
        assert fos is None or opt < fos

    def test_rejects_preset_planes_and_keys(self):
        """The grid owns replica_params/replica_keys/arrival_seeds —
        caller-set values would be silently overwritten, so they raise."""
        from repro import ConfigurationError, torus_2d
        from repro.engines import EngineConfig, ReplicaParams
        from repro.experiments import ParamGrid, sweep_ensemble

        topo = torus_2d(4, 5)
        for kwargs in (
            dict(replica_params=ReplicaParams(betas=1.5)),
            dict(replica_keys=[0, 1]),
            dict(arrivals="poisson:1.0", arrival_seeds=[0, 1]),
        ):
            with pytest.raises(ConfigurationError, match="sweep_ensemble"):
                sweep_ensemble(
                    topo,
                    EngineConfig(rounds=5, **kwargs),
                    ParamGrid(load_scale=[1.0, 2.0]),
                )
