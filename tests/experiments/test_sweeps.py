"""Tests for the sweep utility and power-law fitting."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.experiments import fit_power_law, torus_size_sweep


class TestFitPowerLaw:
    def test_exact_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**2
        exponent, prefactor = fit_power_law(x, y)
        assert exponent == pytest.approx(2.0)
        assert prefactor == pytest.approx(3.0)

    def test_ignores_nonpositive_points(self):
        exponent, _ = fit_power_law([1, 2, 4, 0], [2, 4, 8, -1])
        assert exponent == pytest.approx(1.0)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ConfigurationError):
            fit_power_law([0.0, 0.0], [1.0, 1.0])


class TestTorusSizeSweep:
    def test_sweep_points_structure(self):
        points = torus_size_sweep([6, 8], kind="sos", average_load=100)
        assert [p.size for p in points] == [6, 8]
        for p in points:
            assert p.n == p.size**2
            assert 0.0 < p.lam < 1.0
            assert p.rounds_to_balance is not None

    def test_rounds_grow_with_size(self):
        points = torus_size_sweep([6, 14], kind="sos", average_load=100)
        assert points[1].rounds_to_balance > points[0].rounds_to_balance

    def test_fos_slower_than_sos(self):
        fos = torus_size_sweep([12], kind="fos", average_load=100)[0]
        sos = torus_size_sweep([12], kind="sos", average_load=100)[0]
        assert fos.rounds_to_balance > sos.rounds_to_balance

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            torus_size_sweep([6], kind="third-order")

class TestDynamicReplicaEnsemble:
    def _config(self, rounds=20, seed=2):
        from repro.engines import EngineConfig

        return EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=rounds,
            seed=seed,
        )

    def test_one_batched_call_covers_full_cross_product(self):
        from repro import torus_2d, uniform_load
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        loads = np.stack([uniform_load(topo, 10), uniform_load(topo, 30)])
        ensemble = dynamic_replica_ensemble(
            topo,
            self._config(),
            ["poisson:2.0,depart=1.0", "burst:100/5"],
            seeds=[0, 7, 11],
            initial_loads=loads,
        )
        assert ensemble.n_replicas == 2 * 2 * 3
        # labels enumerate models outer, loads middle, seeds inner
        assert ensemble.labels[0] == ("m0", 0, 0)
        assert ensemble.labels[-1] == ("m1", 1, 11)
        assert "PoissonArrivals" in ensemble.model_keys["m0"]
        assert "BurstArrivals" in ensemble.model_keys["m1"]
        for key in ("m0", "m1"):
            assert f"{key}_steady_state_mean" in ensemble.stats
            assert ensemble.stats[f"{key}_arrived_total_mean"] >= 0.0

    def test_streams_keyed_by_seed_value_not_batch_position(self):
        """A replica's trajectory is identical whether it runs alone or
        inside a bigger ensemble — common random numbers by seed value."""
        from repro import torus_2d
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        small = dynamic_replica_ensemble(
            topo, self._config(), ["poisson:2.0"], seeds=[7]
        )
        big = dynamic_replica_ensemble(
            topo, self._config(), ["poisson:2.0", "hotspot:0:3"],
            seeds=[3, 7],
        )
        alone = small.results[0]
        # model m0, seed 7 sits at batch position 1 in the big ensemble
        assert big.labels[1] == ("m0", 0, 7)
        inside = big.results[1]
        np.testing.assert_array_equal(
            alone.final_state.load, inside.final_state.load
        )
        np.testing.assert_array_equal(
            alone.series("arrived"), inside.series("arrived")
        )

    def test_matches_reference_engine(self):
        from repro import torus_2d
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        batched = dynamic_replica_ensemble(
            topo, self._config(), ["burst:80/4"], seeds=[0, 1]
        )
        reference = dynamic_replica_ensemble(
            topo, self._config(), ["burst:80/4"], seeds=[0, 1],
            engine="reference",
        )
        for b, r in zip(batched.results, reference.results):
            np.testing.assert_array_equal(
                b.final_state.load, r.final_state.load
            )
        assert batched.stats == pytest.approx(reference.stats)

    def test_validates_inputs(self):
        from repro import torus_2d
        from repro.experiments import dynamic_replica_ensemble

        topo = torus_2d(4, 5)
        with pytest.raises(ConfigurationError):
            dynamic_replica_ensemble(topo, self._config(), [])
        with pytest.raises(ConfigurationError):
            dynamic_replica_ensemble(
                topo, self._config(), ["poisson:1.0"], seeds=[]
            )
        with pytest.raises(ConfigurationError):
            dynamic_replica_ensemble(
                topo, self._config(), ["poisson:1.0"],
                initial_loads=np.zeros((2, topo.n + 1)),
            )
