"""Tests for the sweep utility and power-law fitting."""

import numpy as np
import pytest

from repro import ConfigurationError
from repro.experiments import fit_power_law, torus_size_sweep


class TestFitPowerLaw:
    def test_exact_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**2
        exponent, prefactor = fit_power_law(x, y)
        assert exponent == pytest.approx(2.0)
        assert prefactor == pytest.approx(3.0)

    def test_ignores_nonpositive_points(self):
        exponent, _ = fit_power_law([1, 2, 4, 0], [2, 4, 8, -1])
        assert exponent == pytest.approx(1.0)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ConfigurationError):
            fit_power_law([0.0, 0.0], [1.0, 1.0])


class TestTorusSizeSweep:
    def test_sweep_points_structure(self):
        points = torus_size_sweep([6, 8], kind="sos", average_load=100)
        assert [p.size for p in points] == [6, 8]
        for p in points:
            assert p.n == p.size**2
            assert 0.0 < p.lam < 1.0
            assert p.rounds_to_balance is not None

    def test_rounds_grow_with_size(self):
        points = torus_size_sweep([6, 14], kind="sos", average_load=100)
        assert points[1].rounds_to_balance > points[0].rounds_to_balance

    def test_fos_slower_than_sos(self):
        fos = torus_size_sweep([12], kind="fos", average_load=100)[0]
        sos = torus_size_sweep([12], kind="sos", average_load=100)[0]
        assert fos.rounds_to_balance > sos.rounds_to_balance

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            torus_size_sweep([6], kind="third-order")
