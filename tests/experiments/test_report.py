"""Tests for the plain-text report formatting."""

from repro.experiments import format_record, format_summary, format_table
from repro.io import ExperimentRecord


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["torus", 1.99208], ["cm", None]],
            title="Table I",
        )
        lines = text.split("\n")
        assert lines[0] == "Table I"
        assert "name" in lines[1] and "value" in lines[1]
        assert "-" in lines[2]
        assert "torus" in lines[3]
        assert "-" in lines[4]  # None renders as dash

    def test_float_formatting(self):
        text = format_table(["x"], [[1234567.0], [0.00001], [3.5]])
        assert "e+06" in text or "1.2346e+06" in text
        assert "e-05" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSummary:
    def test_sorted_keys(self):
        text = format_summary({"b": 2, "a": 1})
        assert text.index("a") < text.index("b")

    def test_empty(self):
        assert "no summary" in format_summary({})


class TestFormatRecord:
    def test_contains_sections(self):
        record = ExperimentRecord(
            name="fig01",
            params={"n": 100},
            summary={"speedup": 2.0},
            series={"round": [0, 1, 2]},
        )
        text = format_record(record)
        assert "=== fig01 ===" in text
        assert "params" in text
        assert "speedup" in text
        assert "'round': 3" in text
