"""Tests for the Table I graph configuration registry."""

import pytest

from repro import ConfigurationError
from repro.experiments import GRAPH_CONFIGS, PAPER_BETAS, build_graph


class TestRegistry:
    def test_all_table1_rows_present(self):
        assert set(GRAPH_CONFIGS) == {
            "torus-1000",
            "torus-100",
            "cm",
            "rgg",
            "hypercube",
        }
        assert set(PAPER_BETAS) == set(GRAPH_CONFIGS)

    def test_every_config_builds_at_tiny_scale(self):
        for key in GRAPH_CONFIGS:
            built = build_graph(key, scale="tiny", seed=1)
            assert built.topo.is_connected(), key
            assert 0.0 <= built.lam < 1.0, key
            assert 1.0 <= built.beta < 2.0, key

    def test_unknown_key_and_scale(self):
        with pytest.raises(ConfigurationError):
            build_graph("petersen")
        with pytest.raises(ConfigurationError):
            GRAPH_CONFIGS["cm"].build(scale="galactic")

    def test_lambda_sources(self):
        assert build_graph("torus-1000", "tiny").lam_source == "analytic"
        assert build_graph("hypercube", "tiny").lam_source == "analytic"
        assert build_graph("cm", "tiny").lam_source == "numeric"

    def test_seed_determinism_for_random_graphs(self):
        a = build_graph("cm", "tiny", seed=3)
        b = build_graph("cm", "tiny", seed=3)
        c = build_graph("cm", "tiny", seed=4)
        assert a.topo == b.topo
        assert a.topo != c.topo


class TestPaperBetas:
    def test_analytic_paper_betas_match_printed_values(self):
        """The closed-form spectra reproduce Table I's betas digit for digit
        (tori and hypercube; the random graphs are instance-specific)."""
        for key, digits in [
            ("torus-1000", 6), ("torus-100", 6), ("hypercube", 8),
        ]:
            config = GRAPH_CONFIGS[key]
            exact = config.analytic_paper_beta()
            printed = config.paper_beta()
            assert exact == pytest.approx(printed, abs=10 ** (-digits))

    def test_random_configs_have_no_analytic_beta(self):
        assert GRAPH_CONFIGS["cm"].analytic_paper_beta() is None
        assert GRAPH_CONFIGS["rgg"].analytic_paper_beta() is None

    def test_cm_beta_small_like_paper(self):
        """Expander-like graphs have beta close to 1 (paper: 1.065)."""
        built = build_graph("cm", "ci", seed=0)
        assert built.beta < 1.35
