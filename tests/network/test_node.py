"""Unit tests for the node agent."""

import numpy as np
import pytest

from repro import ProtocolError
from repro.network import BalancerNode, Hello, LoadAnnounce


def _pair(scheme="fos", beta=1.0, rounding="identity", loads=(9.0, 3.0)):
    """Two connected nodes with completed setup."""
    a = BalancerNode(0, [1], speed=1.0, load=loads[0], scheme=scheme,
                     beta=beta, rounding=rounding,
                     rng=np.random.default_rng(1))
    b = BalancerNode(1, [0], speed=1.0, load=loads[1], scheme=scheme,
                     beta=beta, rounding=rounding,
                     rng=np.random.default_rng(2))
    for msg in a.hello_messages():
        b.receive_hello(msg)
    for msg in b.hello_messages():
        a.receive_hello(msg)
    return a, b


class TestSetup:
    def test_hello_carries_speed_and_degree(self):
        a, b = _pair()
        assert a.neighbor_speeds[1] == 1.0
        assert a.neighbor_degrees[1] == 1
        # alpha = min(1,1)/(max(1,1)+1) = 1/2
        assert a.alpha[1] == pytest.approx(0.5)
        assert b.alpha[0] == pytest.approx(0.5)

    def test_hello_from_stranger_rejected(self):
        a, _ = _pair()
        with pytest.raises(ProtocolError):
            a.receive_hello(Hello(sender=7, receiver=0, speed=1.0, degree=2))

    def test_invalid_config_rejected(self):
        with pytest.raises(ProtocolError):
            BalancerNode(0, [1], 1.0, 0.0, scheme="third-order")
        with pytest.raises(ProtocolError):
            BalancerNode(0, [1], 1.0, 0.0, rounding="round-robin")


class TestAnnouncements:
    def test_announce_normalised_load(self):
        a, _ = _pair()
        a.speed = 2.0
        (msg,) = a.announce()
        assert msg.normalized_load == pytest.approx(a.load / 2.0)
        assert msg.round_index == 0

    def test_wrong_round_announce_rejected(self):
        a, _ = _pair()
        with pytest.raises(ProtocolError):
            a.receive_announce(
                LoadAnnounce(sender=1, receiver=0, round_index=5, normalized_load=1.0)
            )

    def test_missing_announcement_blocks_transfers(self):
        a, _ = _pair()
        with pytest.raises(ProtocolError, match="misses announcements"):
            a.compute_transfers()


class TestFlowDecisions:
    def test_fos_flow_magnitude(self):
        a, b = _pair(loads=(9.0, 3.0))
        for msg in a.announce():
            b.receive_announce(msg)
        for msg in b.announce():
            a.receive_announce(msg)
        transfers = a.compute_transfers()
        assert len(transfers) == 1
        assert transfers[0].amount == pytest.approx((9.0 - 3.0) * 0.5)
        # b computes the mirrored negative flow and sends nothing.
        assert b.compute_transfers() == []

    def test_balanced_nodes_send_nothing(self):
        a, b = _pair(loads=(5.0, 5.0))
        for msg in a.announce():
            b.receive_announce(msg)
        for msg in b.announce():
            a.receive_announce(msg)
        assert a.compute_transfers() == []
        assert b.compute_transfers() == []

    def test_sos_uses_previous_flow(self):
        beta = 1.5
        a, b = _pair(scheme="sos", beta=beta, loads=(6.0, 6.0))
        a.round_index = b.round_index = 1  # past the FOS bootstrap round
        a.prev_flow[1] = 2.0
        b.prev_flow[0] = -2.0
        for msg in a.announce():
            b.receive_announce(msg)
        for msg in b.announce():
            a.receive_announce(msg)
        transfers = a.compute_transfers()
        # gradient = 0, so flow = (beta-1) * prev = 1.0
        assert transfers[0].amount == pytest.approx(1.0)

    def test_transfer_from_stranger_rejected(self):
        from repro.network import TokenTransfer

        a, _ = _pair()
        with pytest.raises(ProtocolError):
            a.receive_transfer(
                TokenTransfer(sender=9, receiver=0, round_index=0, amount=1.0)
            )

    def test_send_phase_tracks_transient(self):
        a, b = _pair(rounding="ceil", loads=(0.4, 0.0))
        for msg in a.announce():
            b.receive_announce(msg)
        for msg in b.announce():
            a.receive_announce(msg)
        a.compute_transfers()
        b.compute_transfers()
        a.apply_send_phase()
        # a had 0.4, sent ceil(0.2) = 1 -> transient -0.6.
        assert a.min_transient == pytest.approx(-0.6)
