"""Integration: message-passing engine == matrix engine, trace for trace.

For deterministic roundings both engines must agree *exactly* (bit for bit)
at every round — nodes compute flows from local messages, the matrix engine
from global state, but the arithmetic is identical by construction.
"""

import numpy as np
import pytest

from repro import (
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    point_load,
    random_load,
    torus_2d,
)
from repro.network import SyncNetwork
from tests.conftest import random_connected_graph

DETERMINISTIC = ["identity", "floor", "nearest", "ceil"]


def _matrix_run(topo, load, scheme_name, beta, rounding, rounds, speeds=None):
    if scheme_name == "fos":
        scheme = FirstOrderScheme(topo, speeds=speeds)
    else:
        scheme = SecondOrderScheme(topo, beta=beta, speeds=speeds)
    proc = LoadBalancingProcess(scheme, rounding=rounding)
    return proc.run(load, rounds)


@pytest.mark.parametrize("scheme_name,beta", [("fos", 1.0), ("sos", 1.7)])
@pytest.mark.parametrize("rounding", DETERMINISTIC)
def test_homogeneous_trace_equality(scheme_name, beta, rounding):
    topo = torus_2d(5, 6)
    load = point_load(topo, 1000 * topo.n)
    net = SyncNetwork(topo, load, scheme=scheme_name, beta=beta, rounding=rounding)
    net.run(30)
    state = _matrix_run(topo, load, scheme_name, beta, rounding, 30)
    if rounding == "identity":
        # Continuous flows: engines sum incident flows in different orders,
        # so agreement is to float accumulation accuracy, not bit-exact.
        assert np.allclose(net.loads(), state.load, atol=1e-9)
        assert np.allclose(net.flows(), state.flows, atol=1e-9)
    else:
        # Integral token moves: any divergence would be >= 1 token, so the
        # traces must be bit-identical.
        assert np.array_equal(net.loads(), state.load)
        assert np.array_equal(net.flows(), state.flows)


@pytest.mark.parametrize("rounding", DETERMINISTIC)
def test_heterogeneous_trace_equality(rounding, rng):
    topo = random_connected_graph(rng, 24, extra_edges=20)
    speeds = 1.0 + rng.integers(0, 4, topo.n).astype(float)
    load = random_load(topo, 5000, rng=rng)
    net = SyncNetwork(
        topo, load, scheme="sos", beta=1.5, rounding=rounding, speeds=speeds
    )
    net.run(25)
    state = _matrix_run(topo, load, "sos", 1.5, rounding, 25, speeds=speeds)
    if rounding == "identity":
        assert np.allclose(net.loads(), state.load, atol=1e-9)
    else:
        assert np.array_equal(net.loads(), state.load)


def test_randomized_engines_agree_statistically(small_torus):
    """Randomized rounding draws differ, but both engines must land on the
    same plateau (same distribution, not the same trace)."""
    load = point_load(small_torus, 1000 * small_torus.n)
    net = SyncNetwork(
        small_torus, load, scheme="sos", beta=1.6,
        rounding="randomized-excess", seed=5,
    )
    net.run(250)
    state = _matrix_run(small_torus, load, "sos", 1.6, "randomized-excess", 250)
    a = net.loads()
    b = state.load
    assert a.sum() == b.sum()
    assert abs((a.max() - a.mean()) - (b.max() - b.mean())) <= 12.0


@pytest.mark.parametrize("rounding", ["floor", "nearest"])
def test_hybrid_switch_trace_equality(rounding, small_torus):
    """The distributed synchronous SOS->FOS switch matches the matrix
    engine's FixedRoundSwitch trace exactly."""
    from repro import FixedRoundSwitch, Simulator

    load = point_load(small_torus, 1000 * small_torus.n)
    switch = 15
    net = SyncNetwork(
        small_torus, load, scheme="sos", beta=1.7, rounding=rounding,
        switch_to_fos_at=switch,
    )
    net.run(40)
    proc = LoadBalancingProcess(
        SecondOrderScheme(small_torus, beta=1.7), rounding=rounding
    )
    result = Simulator(proc, switch_policy=FixedRoundSwitch(switch)).run(load, 40)
    assert result.switched_at == switch
    assert np.array_equal(net.loads(), result.final_state.load)


def test_transient_minimum_matches_matrix_engine(small_torus):
    """Deterministic rounding: per-node transient minima agree as well."""
    from repro import Simulator

    load = point_load(small_torus, 1000 * small_torus.n)
    net = SyncNetwork(small_torus, load, scheme="sos", beta=1.7, rounding="nearest")
    net.run(40)
    proc = LoadBalancingProcess(
        SecondOrderScheme(small_torus, beta=1.7), rounding="nearest"
    )
    result = Simulator(proc).run(load, 40)
    assert net.min_transients().min() == pytest.approx(
        min(result.min_transient_overall, float(load.min()))
    )
