"""Unit tests for the event-driven :class:`AsyncNetwork`.

The zero-latency regime must replay :class:`SyncNetwork` bit for bit
(the engine-level cross-backend suite asserts the same through the
engine protocol); the latency regime is checked for conservation,
staleness accounting, and the ``max_skew`` bounded-staleness gate.
"""

import numpy as np
import pytest

from repro import ConfigurationError, point_load, torus_2d
from repro.network import (
    AsyncNetwork,
    LinkOutage,
    RandomLinkDrop,
    SyncNetwork,
)

ROUNDINGS = [
    "identity", "floor", "nearest", "ceil", "unbiased-edge",
    "randomized-excess",
]


def _pair(topo, load, rounding="nearest", scheme="sos", beta=1.7,
          switch=None, faults=None, **async_kwargs):
    common = dict(
        scheme=scheme, beta=beta, rounding=rounding, seed=3,
        switch_to_fos_at=switch, faults=faults,
    )
    sync = SyncNetwork(topo, load, **common)
    async_net = AsyncNetwork(topo, load, **common, **async_kwargs)
    return sync, async_net


class TestZeroLatencyEquivalence:
    @pytest.mark.parametrize("rounding", ROUNDINGS)
    def test_bit_identical_to_sync(self, rounding):
        topo = torus_2d(5, 6)
        load = point_load(topo, 1000 * topo.n)
        sync, async_net = _pair(topo, load, rounding=rounding, switch=7)
        for _ in range(20):
            sync.step()
            async_net.step()
            np.testing.assert_array_equal(async_net.loads(), sync.loads())
            np.testing.assert_array_equal(async_net.flows(), sync.flows())
        np.testing.assert_array_equal(
            async_net.min_transients(), sync.min_transients()
        )
        assert async_net.mean_staleness == 0.0
        assert async_net.max_staleness == 0

    def test_fault_stream_parity(self):
        """Per-message drops() consumes the same random stream as the
        synchronous batched filter, so faulty trajectories match too."""
        topo = torus_2d(5, 5)
        load = point_load(topo, 500 * topo.n)
        sync, async_net = _pair(
            topo, load, rounding="floor", faults=RandomLinkDrop(0.3)
        )
        for _ in range(25):
            sync.step()
            async_net.step()
            np.testing.assert_array_equal(async_net.loads(), sync.loads())
        assert async_net.bounced_count > 0

    def test_outage_parity(self):
        topo = torus_2d(4, 4)
        load = point_load(topo, 300 * topo.n)
        sync, async_net = _pair(
            topo, load, rounding="nearest",
            faults=LinkOutage([(0, 1), (0, 4)], start=2, end=9),
        )
        for _ in range(15):
            sync.step()
            async_net.step()
            np.testing.assert_array_equal(async_net.loads(), sync.loads())


class TestLatencyRegime:
    def test_conservation_with_in_flight(self):
        topo = torus_2d(6, 6)
        total = 800 * topo.n
        _, net = _pair(topo, point_load(topo, total), link_latency=1.5)
        for _ in range(30):
            net.step()
            assert net.total_load == pytest.approx(total)
        # staleness settles near ceil(latency) once the pipeline fills
        assert 1.0 < net.mean_staleness <= 2.5
        assert net.max_staleness >= 2

    def test_zero_latency_array_is_synchronous(self):
        topo = torus_2d(4, 5)
        load = point_load(topo, 500 * topo.n)
        sync, net = _pair(topo, load, link_latency=np.zeros(topo.m_edges))
        for _ in range(10):
            sync.step()
            net.step()
        np.testing.assert_array_equal(net.loads(), sync.loads())

    def test_bandwidth_induces_staleness(self):
        topo = torus_2d(5, 5)
        _, net = _pair(
            topo, point_load(topo, 400 * topo.n), link_bandwidth=0.25
        )
        for _ in range(20):
            net.step()
        assert net.mean_staleness > 0.5
        assert net.total_load == pytest.approx(400 * topo.n)

    def test_faults_under_latency_conserve(self):
        topo = torus_2d(5, 5)
        total = 600 * topo.n
        _, net = _pair(
            topo, point_load(topo, total), rounding="randomized-excess",
            faults=RandomLinkDrop(0.25), link_latency=2.0,
        )
        for _ in range(40):
            net.step()
        assert net.total_load == pytest.approx(total)
        assert net.bounced_count > 0

    def test_stamped_topology_attributes_are_used(self):
        topo = torus_2d(5, 5, link_latency=1.5)
        _, net = _pair(topo, point_load(topo, 300 * topo.n))
        for _ in range(15):
            net.step()
        assert net.mean_staleness > 1.0

    def test_constructor_override_beats_stamped(self):
        topo = torus_2d(5, 5, link_latency=3.0)
        load = point_load(topo, 300 * topo.n)
        sync, net = _pair(topo, load, link_latency=0.0)
        for _ in range(10):
            sync.step()
            net.step()
        np.testing.assert_array_equal(net.loads(), sync.loads())


class TestMaxSkew:
    def test_gate_bounds_staleness(self):
        topo = torus_2d(6, 6)
        for skew in (0, 1, 3):
            _, net = _pair(
                topo, point_load(topo, 500 * topo.n),
                link_latency=2.5, max_skew=skew,
            )
            for _ in range(25):
                net.step()
            assert net.max_staleness <= skew + 1
            assert net.total_load == pytest.approx(500 * topo.n)

    def test_zero_skew_zero_latency_still_synchronous(self):
        topo = torus_2d(4, 4)
        load = point_load(topo, 200 * topo.n)
        sync, net = _pair(topo, load, max_skew=0)
        for _ in range(12):
            sync.step()
            net.step()
        np.testing.assert_array_equal(net.loads(), sync.loads())


class TestValidation:
    def test_negative_latency_rejected(self):
        topo = torus_2d(3, 3)
        with pytest.raises(ConfigurationError):
            AsyncNetwork(topo, point_load(topo, 90), link_latency=-1.0)

    def test_nonpositive_bandwidth_rejected(self):
        topo = torus_2d(3, 3)
        with pytest.raises(ConfigurationError):
            AsyncNetwork(topo, point_load(topo, 90), link_bandwidth=0.0)

    def test_negative_skew_rejected(self):
        topo = torus_2d(3, 3)
        with pytest.raises(ConfigurationError):
            AsyncNetwork(topo, point_load(topo, 90), max_skew=-1)

    def test_bad_latency_shape_rejected(self):
        topo = torus_2d(3, 3)
        with pytest.raises(ValueError):
            AsyncNetwork(
                topo, point_load(topo, 90),
                link_latency=np.ones(topo.m_edges + 1),
            )
