"""Unit tests for fault injection in the message-passing substrate."""

import numpy as np
import pytest

from repro import ConfigurationError, cycle, point_load, torus_2d
from repro.network import (
    LinkOutage,
    NoFaults,
    RandomLinkDrop,
    SyncNetwork,
    TokenTransfer,
)


def _msgs(pairs):
    return [
        TokenTransfer(sender=a, receiver=b, round_index=0, amount=1.0)
        for a, b in pairs
    ]


class TestFaultModels:
    def test_no_faults_delivers_all(self):
        transfers = _msgs([(0, 1), (1, 2)])
        delivered, bounced = NoFaults().filter_transfers(transfers, 0)
        assert delivered == transfers
        assert bounced == []

    def test_random_drop_zero_probability(self):
        transfers = _msgs([(0, 1), (1, 2)])
        delivered, bounced = RandomLinkDrop(0.0).filter_transfers(transfers, 0)
        assert delivered == transfers and bounced == []

    def test_random_drop_full_probability(self):
        transfers = _msgs([(0, 1), (1, 2)])
        delivered, bounced = RandomLinkDrop(
            1.0, np.random.default_rng(0)
        ).filter_transfers(transfers, 0)
        assert delivered == [] and bounced == transfers

    def test_random_drop_validation(self):
        with pytest.raises(ConfigurationError):
            RandomLinkDrop(1.5)

    def test_link_outage_window(self):
        outage = LinkOutage([(1, 0)], start=2, end=4)
        transfers = _msgs([(0, 1), (2, 3)])
        for r, expect_drop in [(0, False), (2, True), (3, True), (4, False)]:
            delivered, bounced = outage.filter_transfers(transfers, r)
            if expect_drop:
                assert len(bounced) == 1 and bounced[0].sender == 0
            else:
                assert bounced == []

    def test_link_outage_forever(self):
        outage = LinkOutage([(0, 1)], start=0, end=None)
        _, bounced = outage.filter_transfers(_msgs([(0, 1)]), 999)
        assert len(bounced) == 1

    def test_link_outage_validation(self):
        with pytest.raises(ConfigurationError):
            LinkOutage([(0, 1)], start=5, end=3)


class TestFaultyNetworks:
    def test_drops_conserve_load(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 6400),
            scheme="sos",
            beta=1.6,
            rounding="randomized-excess",
            faults=RandomLinkDrop(0.3, np.random.default_rng(3)),
            seed=1,
        )
        net.run(60)
        assert net.total_load == pytest.approx(6400.0)

    def test_outage_isolates_balanced_region(self):
        # Cut the only two edges around node 0 on a cycle: its load is stuck.
        topo = cycle(6)
        load = point_load(topo, 600, node=0)
        net = SyncNetwork(
            topo,
            load,
            scheme="fos",
            rounding="floor",
            faults=LinkOutage([(0, 1), (5, 0)], start=0, end=None),
        )
        net.run(50)
        assert net.loads()[0] == 600.0

    def test_faulty_network_still_balances_somewhat(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 1000 * small_torus.n),
            scheme="fos",
            rounding="randomized-excess",
            faults=RandomLinkDrop(0.2, np.random.default_rng(9)),
            seed=2,
        )
        net.run(400)
        loads = net.loads()
        assert loads.max() - loads.mean() < 0.2 * 1000 * small_torus.n
