"""Unit tests for fault injection in the message-passing substrate."""

import numpy as np
import pytest

from repro import ConfigurationError, cycle, point_load, torus_2d
from repro.network import (
    LinkOutage,
    NoFaults,
    RandomLinkDrop,
    SyncNetwork,
    TokenTransfer,
)


def _msgs(pairs):
    return [
        TokenTransfer(sender=a, receiver=b, round_index=0, amount=1.0)
        for a, b in pairs
    ]


class TestFaultModels:
    def test_no_faults_delivers_all(self):
        transfers = _msgs([(0, 1), (1, 2)])
        delivered, bounced = NoFaults().filter_transfers(transfers, 0)
        assert delivered == transfers
        assert bounced == []

    def test_random_drop_zero_probability(self):
        transfers = _msgs([(0, 1), (1, 2)])
        delivered, bounced = RandomLinkDrop(0.0).filter_transfers(transfers, 0)
        assert delivered == transfers and bounced == []

    def test_random_drop_full_probability(self):
        transfers = _msgs([(0, 1), (1, 2)])
        delivered, bounced = RandomLinkDrop(
            1.0, np.random.default_rng(0)
        ).filter_transfers(transfers, 0)
        assert delivered == [] and bounced == transfers

    def test_random_drop_validation(self):
        with pytest.raises(ConfigurationError):
            RandomLinkDrop(1.5)

    def test_link_outage_window(self):
        outage = LinkOutage([(1, 0)], start=2, end=4)
        transfers = _msgs([(0, 1), (2, 3)])
        for r, expect_drop in [(0, False), (2, True), (3, True), (4, False)]:
            delivered, bounced = outage.filter_transfers(transfers, r)
            if expect_drop:
                assert len(bounced) == 1 and bounced[0].sender == 0
            else:
                assert bounced == []

    def test_link_outage_forever(self):
        outage = LinkOutage([(0, 1)], start=0, end=None)
        _, bounced = outage.filter_transfers(_msgs([(0, 1)]), 999)
        assert len(bounced) == 1

    def test_link_outage_validation(self):
        with pytest.raises(ConfigurationError):
            LinkOutage([(0, 1)], start=5, end=3)

    def test_link_outage_empty_window(self):
        # start == end is a legal, empty window: nothing ever drops.
        outage = LinkOutage([(0, 1)], start=3, end=3)
        for r in (0, 2, 3, 4, 100):
            delivered, bounced = outage.filter_transfers(_msgs([(0, 1)]), r)
            assert len(delivered) == 1 and bounced == []

    def test_link_outage_undirected_key_normalization(self):
        # (u, v) and (v, u) name the same link; traffic drops both ways.
        outage = LinkOutage([(5, 2)], start=0, end=None)
        _, bounced = outage.filter_transfers(_msgs([(2, 5), (5, 2)]), 0)
        assert len(bounced) == 2
        assert outage.links == {(2, 5)}

    def test_unseeded_random_drop_requires_engine_rng(self):
        # No generator and p > 0: refusing beats silently being unseeded.
        with pytest.raises(ConfigurationError, match="no random generator"):
            RandomLinkDrop(0.5).filter_transfers(_msgs([(0, 1)]), 0)
        # with_rng binds one; an explicit generator wins over the bound one.
        bound = RandomLinkDrop(0.5).with_rng(np.random.default_rng(0))
        assert bound.rng is not None
        explicit = RandomLinkDrop(0.5, np.random.default_rng(1))
        assert explicit.with_rng(np.random.default_rng(2)) is explicit


class TestFaultyNetworks:
    def test_drops_conserve_load(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 6400),
            scheme="sos",
            beta=1.6,
            rounding="randomized-excess",
            faults=RandomLinkDrop(0.3, np.random.default_rng(3)),
            seed=1,
        )
        net.run(60)
        assert net.total_load == pytest.approx(6400.0)

    def test_outage_isolates_balanced_region(self):
        # Cut the only two edges around node 0 on a cycle: its load is stuck.
        topo = cycle(6)
        load = point_load(topo, 600, node=0)
        net = SyncNetwork(
            topo,
            load,
            scheme="fos",
            rounding="floor",
            faults=LinkOutage([(0, 1), (5, 0)], start=0, end=None),
        )
        net.run(50)
        assert net.loads()[0] == 600.0

    def test_same_seed_same_fault_schedule(self, small_torus):
        """The engine derives the fault rng from the run seed: two runs with
        identical seeds take identical trajectories (regression for the
        unseeded-rng default, which made fault runs unreproducible)."""
        def run(seed):
            net = SyncNetwork(
                small_torus,
                point_load(small_torus, 1000 * small_torus.n),
                scheme="sos",
                beta=1.6,
                rounding="randomized-excess",
                faults=RandomLinkDrop(0.3),
                seed=seed,
            )
            net.run(40)
            return net.loads()

        np.testing.assert_array_equal(run(7), run(7))
        assert not np.array_equal(run(7), run(8))

    def test_outage_window_respected_under_event_driven_delivery(self):
        """LinkOutage keys stay normalized when the async engine asks
        message by message instead of round by round."""
        from repro.network import AsyncNetwork

        topo = cycle(6)
        net = AsyncNetwork(
            topo,
            point_load(topo, 600, node=0),
            scheme="fos",
            rounding="floor",
            faults=LinkOutage([(1, 0), (0, 5)], start=0, end=None),
            link_latency=1.0,
        )
        net.run(40)
        # No token ever crosses a dead link: the rest of the cycle stays
        # empty, and node 0 holds everything not currently mid-bounce.
        assert net.loads()[1:].sum() == 0.0
        assert net.delivered_count == 0
        assert net.bounced_count > 0
        assert net.total_load == pytest.approx(600.0)

    def test_faulty_network_still_balances_somewhat(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 1000 * small_torus.n),
            scheme="fos",
            rounding="randomized-excess",
            faults=RandomLinkDrop(0.2, np.random.default_rng(9)),
            seed=2,
        )
        net.run(400)
        loads = net.loads()
        assert loads.max() - loads.mean() < 0.2 * 1000 * small_torus.n


class TestPerMessageFastPath:
    """The event-driven engine asks message by message via drops(); the
    direct overrides must consume the random stream exactly like the
    batch path so async trajectories are unchanged by the fast path."""

    def test_random_drop_stream_matches_batch_path(self):
        msgs = _msgs([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)])
        direct = RandomLinkDrop(0.4, np.random.default_rng(42))
        batch = RandomLinkDrop(0.4, np.random.default_rng(42))
        for msg in msgs:
            want = bool(batch.filter_transfers([msg], 0)[1])
            assert direct.drops(msg, 0) == want

    def test_random_drop_zero_p_draws_nothing(self):
        rng = np.random.default_rng(0)
        model = RandomLinkDrop(0.0, rng)
        before = rng.bit_generator.state
        assert model.drops(_msgs([(0, 1)])[0], 0) is False
        assert rng.bit_generator.state == before

    def test_random_drop_unseeded_raises(self):
        with pytest.raises(ConfigurationError, match="no random generator"):
            RandomLinkDrop(0.5).drops(_msgs([(0, 1)])[0], 0)

    def test_outage_drops_is_pure(self):
        model = LinkOutage([(1, 0)], start=2, end=5)
        msg = _msgs([(0, 1)])[0]
        other = _msgs([(2, 3)])[0]
        assert model.drops(msg, 1) is False
        assert model.drops(msg, 2) is True
        assert model.drops(msg, 4) is True
        assert model.drops(msg, 5) is False
        assert model.drops(other, 3) is False

    def test_async_trajectory_pinned_under_drops(self):
        # Regression pin: the async engine's per-message fault path must
        # produce the identical trajectory as the synchronous engine's
        # batch path at zero latency (same stream, message for message).
        from repro.network import AsyncNetwork

        topo = torus_2d(3, 3)
        load = point_load(topo, 900)
        sync = SyncNetwork(
            topo, load, scheme="sos", rounding="floor",
            faults=RandomLinkDrop(0.25), seed=5,
        )
        asyn = AsyncNetwork(
            topo, load, scheme="sos", rounding="floor",
            faults=RandomLinkDrop(0.25), seed=5,
        )
        for _ in range(30):
            sync.step()
            asyn.step()
            np.testing.assert_array_equal(sync.loads(), asyn.loads())
        assert asyn.bounced_count > 0


class TestReprs:
    """The reprs carry the model parameters (pinned: examples and the
    docs print them to label fault sweeps)."""

    def test_random_drop_repr(self):
        assert repr(RandomLinkDrop(0.25)) == "RandomLinkDrop(p=0.25)"

    def test_link_outage_repr(self):
        model = LinkOutage([(3, 1), (0, 2)], start=4, end=9)
        assert repr(model) == (
            "LinkOutage(links=[(0, 2), (1, 3)], start=4, end=9)"
        )

    def test_no_faults_repr(self):
        assert repr(NoFaults()) == "NoFaults()"
