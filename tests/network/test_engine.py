"""Unit tests for the synchronous message-passing engine."""

import numpy as np
import pytest

from repro import ConfigurationError, cycle, point_load, torus_2d
from repro.network import SyncNetwork


class TestBasics:
    def test_conserves_load(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 6400),
            scheme="sos",
            beta=1.6,
            rounding="randomized-excess",
        )
        total0 = net.total_load
        net.run(40)
        assert net.total_load == pytest.approx(total0)

    def test_integral_loads_with_discrete_rounding(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 999),
            scheme="fos",
            rounding="randomized-excess",
        )
        net.run(15)
        loads = net.loads()
        assert np.allclose(loads, np.round(loads))

    def test_rejects_bad_initial_load_shape(self, small_torus):
        with pytest.raises(ConfigurationError):
            SyncNetwork(small_torus, np.ones(3))

    def test_rejects_negative_rounds(self, small_torus):
        net = SyncNetwork(small_torus, point_load(small_torus, 10))
        with pytest.raises(ConfigurationError):
            net.run(-1)

    def test_flows_are_antisymmetric_views(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 6400),
            scheme="sos",
            beta=1.5,
            rounding="floor",
        )
        net.run(5)
        flows = net.flows()  # raises on endpoint disagreement
        assert flows.shape == (small_torus.m_edges,)

    def test_seeded_runs_are_reproducible(self, small_torus):
        def run():
            net = SyncNetwork(
                small_torus,
                point_load(small_torus, 6400),
                scheme="sos",
                beta=1.6,
                rounding="randomized-excess",
                seed=42,
            )
            net.run(30)
            return net.loads()

        assert np.array_equal(run(), run())

    def test_different_seeds_differ(self, small_torus):
        def run(seed):
            net = SyncNetwork(
                small_torus,
                point_load(small_torus, 6400),
                scheme="sos",
                beta=1.6,
                rounding="randomized-excess",
                seed=seed,
            )
            net.run(30)
            return net.loads()

        assert not np.array_equal(run(1), run(2))

    def test_min_transients_negative_for_point_load_sos(self, small_torus):
        net = SyncNetwork(
            small_torus,
            point_load(small_torus, 1000 * small_torus.n),
            scheme="sos",
            beta=1.8,
            rounding="randomized-excess",
        )
        net.run(60)
        assert net.min_transients().min() < 0.0

    def test_balances_eventually(self):
        topo = cycle(8)
        net = SyncNetwork(
            topo,
            point_load(topo, 800),
            scheme="fos",
            rounding="randomized-excess",
        )
        net.run(400)
        loads = net.loads()
        assert loads.max() - loads.min() <= 12.0
