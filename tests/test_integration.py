"""End-to-end integration tests: the paper's headline claims, in miniature.

These run full experiments at small scale and assert the qualitative
results the paper reports — the cross-module contracts that individual unit
tests cannot see.
"""

import numpy as np
import pytest

from repro import (
    FirstOrderScheme,
    FixedRoundSwitch,
    LoadBalancingProcess,
    LocalDifferenceSwitch,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    hypercube,
    hypercube_lambda,
    point_load,
    torus_2d,
    torus_lambda,
)
from repro.analysis import measured_speedup, remaining_imbalance


def _run(topo, scheme, rounds, seed=0, policy=None, rounding="randomized-excess"):
    proc = LoadBalancingProcess(
        scheme, rounding=rounding, rng=np.random.default_rng(seed)
    )
    return Simulator(proc, switch_policy=policy).run(
        point_load(topo, 1000 * topo.n), rounds
    )


class TestPaperHeadlines:
    def test_sos_much_faster_than_fos_on_torus(self):
        """Section VI-A: 'a clear advantage of SOS over FOS' on tori."""
        topo = torus_2d(20, 20)
        lam = torus_lambda((20, 20))
        sos = _run(topo, SecondOrderScheme(topo, beta=beta_opt(lam)), 800)
        fos = _run(topo, FirstOrderScheme(topo), 800, seed=1)
        report = measured_speedup(fos, sos, lam, threshold=10.0)
        assert report.sos_round is not None
        assert report.measured is None or report.measured > 2.0

    def test_sos_close_to_fos_on_hypercube(self):
        """Section VI-B: 'negligible difference' on the hypercube."""
        topo = hypercube(8)
        lam = hypercube_lambda(8)
        sos = _run(topo, SecondOrderScheme(topo, beta=beta_opt(lam)), 150)
        fos = _run(topo, FirstOrderScheme(topo), 150, seed=1)
        report = measured_speedup(fos, sos, lam, threshold=10.0)
        assert report.measured is not None
        assert report.measured < 4.0

    def test_sos_plateaus_then_hybrid_drops(self):
        """Sections VI-A/VI: the hybrid switch cuts the SOS residual."""
        topo = torus_2d(20, 20)
        lam = torus_lambda((20, 20))
        beta = beta_opt(lam)
        sos = _run(topo, SecondOrderScheme(topo, beta=beta), 800)
        hybrid = _run(
            topo, SecondOrderScheme(topo, beta=beta), 800,
            policy=FixedRoundSwitch(400),
        )
        sos_plateau = remaining_imbalance(sos).mean
        hybrid_tail = hybrid.series("max_minus_avg")[-50:].mean()
        assert hybrid_tail < sos_plateau
        # The drop is meaningful, not noise.
        assert hybrid_tail <= 0.8 * sos_plateau + 1.0

    def test_local_difference_trigger_matches_fixed_switch(self):
        """The paper's distributed-friendly switch criterion works as well
        as a hand-tuned fixed round."""
        topo = torus_2d(20, 20)
        beta = beta_opt(torus_lambda((20, 20)))
        fixed = _run(
            topo, SecondOrderScheme(topo, beta=beta), 800,
            policy=FixedRoundSwitch(400),
        )
        local = _run(
            topo, SecondOrderScheme(topo, beta=beta), 800,
            policy=LocalDifferenceSwitch(threshold=10.0),
        )
        assert local.switched_at is not None
        fixed_tail = fixed.series("max_minus_avg")[-50:].mean()
        local_tail = local.series("max_minus_avg")[-50:].mean()
        assert local_tail <= fixed_tail + 3.0

    def test_residual_independent_of_initial_load(self):
        """Figure 2's observation at small scale."""
        topo = torus_2d(16, 16)
        beta = beta_opt(torus_lambda((16, 16)))
        plateaus = []
        for avg in (10, 1000):
            proc = LoadBalancingProcess(
                SecondOrderScheme(topo, beta=beta),
                rounding="randomized-excess",
                rng=np.random.default_rng(0),
            )
            result = Simulator(proc).run(point_load(topo, avg * topo.n), 400)
            plateaus.append(remaining_imbalance(result).mean)
        assert abs(plateaus[0] - plateaus[1]) < 10.0

    def test_idealized_sos_balances_perfectly(self):
        """Figure 6: the continuous scheme balances to float precision."""
        topo = torus_2d(16, 16)
        beta = beta_opt(torus_lambda((16, 16)))
        result = _run(
            topo, SecondOrderScheme(topo, beta=beta), 600, rounding="identity"
        )
        assert result.records[-1].max_minus_avg < 1e-6
        drift = abs(result.records[-1].total_load - result.records[0].total_load)
        assert drift < 1e-6

    def test_discontinuities_at_wavefront_collision(self):
        """Figure 1/9: the torus metrics jump when the wavefronts collide.

        The point load spreads from node 0 in all four directions; the
        max local difference spikes when the fronts meet.  We check the
        max-minus-avg series is not monotone after the initial decay —
        i.e. discontinuities exist.
        """
        topo = torus_2d(24, 24)
        beta = beta_opt(torus_lambda((24, 24)))
        result = _run(topo, SecondOrderScheme(topo, beta=beta), 300)
        series = result.series("max_minus_avg")
        # Strictly increasing steps (bumps) somewhere after round 5.
        diffs = np.diff(series[5:])
        assert (diffs > 0).any()

    def test_full_pipeline_with_heterogeneous_speeds(self):
        """Speeds + SOS + randomized rounding + hybrid, end to end."""
        from repro import second_largest_eigenvalue, target_loads, two_class_speeds

        topo = torus_2d(12, 12)
        rng = np.random.default_rng(3)
        speeds = two_class_speeds(topo.n, 0.25, 4.0, rng=rng)
        lam = second_largest_eigenvalue(topo, speeds)
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta_opt(lam), speeds=speeds),
            rounding="randomized-excess",
            rng=rng,
        )
        load = point_load(topo, 1000 * topo.n)
        targets = target_loads(float(load.sum()), speeds)
        result = Simulator(
            proc,
            switch_policy=LocalDifferenceSwitch(threshold=12.0),
            targets=targets,
        ).run(load, 600)
        final = result.final_state.load
        assert np.abs(final - targets).max() < 40.0
        assert result.records[-1].total_load == pytest.approx(load.sum())
