"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_all_subcommands(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["table1"]).scale == "ci"
        args = parser.parse_args(["figure", "fig01", "--scale", "tiny"])
        assert args.name == "fig01" and args.scale == "tiny"
        args = parser.parse_args(
            ["simulate", "--graph", "cm", "--scheme", "fos", "--rounds", "7"]
        )
        assert args.graph == "cm" and args.rounds == 7


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "torus-1000" in out
        assert "1.99208" in out  # paper-scale analytic beta

    def test_figure(self, capsys, tmp_path):
        code = main(
            [
                "figure",
                "fig08",
                "--scale",
                "tiny",
                "--rounds",
                "60",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig08" in out
        assert (tmp_path / "fig08.json").exists()

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate",
                "--graph",
                "torus-1000",
                "--scale",
                "tiny",
                "--rounds",
                "80",
                "--switch-round",
                "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "switched to FOS after round 40" in out
        assert "max-avg" in out

    def test_simulate_fos_identity(self, capsys):
        code = main(
            [
                "simulate", "--graph", "hypercube", "--scale", "tiny",
                "--scheme", "fos", "--rounding", "identity", "--rounds", "30",
            ]
        )
        assert code == 0

    def test_render(self, capsys, tmp_path):
        code = main(["render", "--out", str(tmp_path / "frames"), "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frames written" in out


class TestSimulateArrivals:
    def test_simulate_dynamic_poisson(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-1000", "--scale", "tiny",
                "--rounds", "60", "--avg-load", "50",
                "--arrivals", "poisson:2.0,depart=1.0",
                "--engine", "batched",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "arrivals=poisson:2.0,depart=1.0" in out
        assert "steady-state imbalance" in out
        assert "max-avg" in out

    def test_simulate_dynamic_ensemble(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-1000", "--scale", "tiny",
                "--rounds", "40", "--avg-load", "50",
                "--arrivals", "burst:200/10", "--replicas", "3",
                "--engine", "batched",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "m0_steady_state_mean" in out

    def test_simulate_dynamic_hotspot_reference(self, capsys):
        code = main(
            [
                "simulate", "--graph", "hypercube", "--scale", "tiny",
                "--rounds", "30", "--avg-load", "20",
                "--arrivals", "hotspot:0,1:5", "--engine", "reference",
            ]
        )
        assert code == 0
        assert "steady-state imbalance" in capsys.readouterr().out

    def test_simulate_bad_arrival_spec_raises(self):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                [
                    "simulate", "--graph", "torus-1000", "--scale", "tiny",
                    "--rounds", "10", "--arrivals", "bogus:1",
                ]
            )
