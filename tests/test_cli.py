"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_all_subcommands(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["table1"]).scale == "ci"
        args = parser.parse_args(["figure", "fig01", "--scale", "tiny"])
        assert args.name == "fig01" and args.scale == "tiny"
        args = parser.parse_args(
            ["simulate", "--graph", "cm", "--scheme", "fos", "--rounds", "7"]
        )
        assert args.graph == "cm" and args.rounds == 7


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "torus-1000" in out
        assert "1.99208" in out  # paper-scale analytic beta

    def test_figure(self, capsys, tmp_path):
        code = main(
            [
                "figure",
                "fig08",
                "--scale",
                "tiny",
                "--rounds",
                "60",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig08" in out
        assert (tmp_path / "fig08.json").exists()

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate",
                "--graph",
                "torus-1000",
                "--scale",
                "tiny",
                "--rounds",
                "80",
                "--switch-round",
                "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "switched to FOS after round 40" in out
        assert "max-avg" in out

    def test_simulate_fos_identity(self, capsys):
        code = main(
            [
                "simulate", "--graph", "hypercube", "--scale", "tiny",
                "--scheme", "fos", "--rounding", "identity", "--rounds", "30",
            ]
        )
        assert code == 0

    def test_render(self, capsys, tmp_path):
        code = main(["render", "--out", str(tmp_path / "frames"), "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frames written" in out


class TestSimulateArrivals:
    def test_simulate_dynamic_poisson(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-1000", "--scale", "tiny",
                "--rounds", "60", "--avg-load", "50",
                "--arrivals", "poisson:2.0,depart=1.0",
                "--engine", "batched",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "arrivals=poisson:2.0,depart=1.0" in out
        assert "steady-state imbalance" in out
        assert "max-avg" in out

    def test_simulate_dynamic_ensemble(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-1000", "--scale", "tiny",
                "--rounds", "40", "--avg-load", "50",
                "--arrivals", "burst:200/10", "--replicas", "3",
                "--engine", "batched",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "m0_steady_state_mean" in out

    def test_simulate_dynamic_hotspot_reference(self, capsys):
        code = main(
            [
                "simulate", "--graph", "hypercube", "--scale", "tiny",
                "--rounds", "30", "--avg-load", "20",
                "--arrivals", "hotspot:0,1:5", "--engine", "reference",
            ]
        )
        assert code == 0
        assert "steady-state imbalance" in capsys.readouterr().out

    def test_simulate_bad_arrival_spec_raises(self):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                [
                    "simulate", "--graph", "torus-1000", "--scale", "tiny",
                    "--rounds", "10", "--arrivals", "bogus:1",
                ]
            )


class TestScalingFlags:
    """The large-n knobs: --fast-path, --tile-size, --record-mode, --seeds."""

    def test_simulate_fast_path_spectral(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--rounding", "identity", "--rounds", "60",
                "--engine", "batched", "--record-fields", "node",
                "--fast-path", "spectral",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max-avg" in out
        assert "min-transient" not in out  # excluded column stays silent

    def test_simulate_tiled_summary(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--rounds", "50", "--engine", "batched",
                "--tile-size", "17", "--record-mode", "summary",
            ]
        )
        assert code == 0
        assert "max-avg" in capsys.readouterr().out

    def test_simulate_tile_auto(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--rounds", "30", "--engine", "batched",
                "--tile-size", "auto", "--memory-budget-mb", "0.05",
            ]
        )
        assert code == 0

    def test_simulate_bad_tile_size(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--engine", "batched", "--tile-size", "huge",
                ]
            )

    def test_simulate_batch_arrival_sampling(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--rounds", "40", "--engine", "batched",
                "--arrivals", "poisson:2.0,depart=2.0",
                "--arrival-sampling", "batch", "--replicas", "4",
            ]
        )
        assert code == 0
        assert "steady-state" in capsys.readouterr().out

    def test_figure_seeds_ensemble(self, capsys, tmp_path):
        code = main(
            [
                "figure", "fig02", "--scale", "tiny", "--rounds", "60",
                "--engine", "batched", "--seeds", "3",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "fig02.json").exists()

    def test_figure_seeds_on_single_seed_driver_warns(self, capsys):
        code = main(
            ["figure", "fig06", "--scale", "tiny", "--rounds", "40",
             "--seeds", "3"]
        )
        assert code == 0
        assert "single-seed" in capsys.readouterr().err


class TestEngineChoicesFromRegistry:
    def test_engine_choices_track_the_registry(self):
        """--engine choices come from the make_engine registry, so a new
        backend can never drift out of `simulate --help`."""
        from repro.engines import ENGINES

        parser = build_parser()
        sub = parser._subparsers._group_actions[0]
        for command in ("simulate", "figure"):
            action = next(
                a
                for a in sub.choices[command]._actions
                if "--engine" in a.option_strings
            )
            assert list(action.choices) == sorted(ENGINES)


class TestSweepFlag:
    def test_sweep_switch_rounds(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--rounds", "40", "--engine", "batched", "--replicas", "2",
                "--sweep", "switch-round=none,10,20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 points x 2 seed(s) = 6 replicas in ONE batched" in out
        assert "switch_round=never" in out
        assert "switch_round=20" in out

    def test_sweep_linspace_and_cross(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--rounds", "20", "--engine", "batched",
                "--sweep", "beta=1.2:1.8:3",
                "--sweep", "load-scale=0.5,1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6 points x 1 seed(s) = 6 replicas" in out
        assert "beta=1.2,load_scale=0.5" in out

    def test_sweep_dynamic_arrival_scale(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--rounds", "15", "--engine", "batched",
                "--arrivals", "poisson:1.0",
                "--sweep", "arrival-scale=0.5,2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "steady_state_mean" in out

    def test_sweep_rejects_unknown_key(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--sweep", "gamma=1:2:3",
                ]
            )

    def test_sweep_rejects_malformed_values(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--sweep", "beta=a:b:c",
                ]
            )

    def test_sweep_rejects_duplicate_axis(self):
        with pytest.raises(SystemExit, match="twice"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--sweep", "beta=1.2,1.4", "--sweep", "beta=1.6",
                ]
            )


class TestRobustnessFlags:
    """--churn and --faults: parse, run, and reject with clean messages."""

    def test_simulate_churn_network(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--engine", "network", "--rounding", "floor",
                "--rounds", "20",
                "--churn", "crash:3@4-10; edge-:0-1@6",
            ]
        )
        assert code == 0
        assert "max-avg" in capsys.readouterr().out

    def test_simulate_churn_with_faults_and_arrivals(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--engine", "async", "--rounding", "floor",
                "--rounds", "15",
                "--churn", "random:0.3",
                "--faults", "drop:0.1",
                "--arrivals", "poisson:1.0,depart=0.5",
            ]
        )
        assert code == 0

    def test_simulate_faults_outage(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--engine", "network", "--rounding", "floor",
                "--rounds", "15",
                "--faults", "outage:0:1:2:9",
            ]
        )
        assert code == 0

    def test_bad_churn_spec_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown churn term"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--rounds", "10", "--churn", "explode:1@2",
                ]
            )

    def test_bad_faults_spec_exits_cleanly(self):
        with pytest.raises(SystemExit, match="drop probability"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--rounds", "10", "--faults", "drop:1.5",
                ]
            )

    def test_churn_with_switch_round_exits_cleanly(self):
        with pytest.raises(SystemExit, match="switch"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--rounds", "10", "--churn", "crash:3@4",
                    "--switch-round", "5",
                ]
            )


class TestLatencyFlags:
    """--latency / --max-skew / --latency-buckets: run and reject."""

    def test_simulate_staleness_engine(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--engine", "staleness", "--rounding", "floor",
                "--rounds", "15", "--latency", "2", "--max-skew", "3",
                "--faults", "drop:0.1",
            ]
        )
        assert code == 0
        assert "max-avg" in capsys.readouterr().out

    def test_simulate_staleness_quantises_fractional_latency(self, capsys):
        code = main(
            [
                "simulate", "--graph", "torus-100", "--scale", "tiny",
                "--engine", "staleness", "--rounding", "floor",
                "--rounds", "10", "--latency", "1.5",
                "--latency-buckets", "nearest",
            ]
        )
        assert code == 0

    def test_bad_latency_spec_exits_cleanly(self):
        with pytest.raises(SystemExit, match="accepted forms"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--rounds", "10", "--latency", "gaussian:1",
                ]
            )

    def test_negative_latency_mean_exits_cleanly(self):
        with pytest.raises(SystemExit, match="MEAN >= 0"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--rounds", "10", "--latency", "exp:-1",
                ]
            )

    def test_negative_max_skew_exits_cleanly(self):
        with pytest.raises(SystemExit, match="max_skew"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--rounds", "10", "--engine", "async",
                    "--max-skew", "-2",
                ]
            )

    def test_exact_buckets_reject_fractional_latency(self):
        with pytest.raises(SystemExit, match="integer link latencies"):
            main(
                [
                    "simulate", "--graph", "torus-100", "--scale", "tiny",
                    "--rounds", "10", "--engine", "staleness",
                    "--latency", "1.5", "--latency-buckets", "exact",
                ]
            )
