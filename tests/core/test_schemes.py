"""Unit tests for FOS/SOS continuous schemes (equations (1)-(4))."""

import numpy as np
import pytest

from repro import (
    FirstOrderScheme,
    LoadState,
    SchemeError,
    SecondOrderScheme,
    apply_flows,
    check_linearity,
    cycle,
    diffusion_matrix,
    point_load,
    torus_2d,
)
from tests.conftest import random_connected_graph


class TestFirstOrder:
    def test_matches_matrix_iteration(self, small_torus):
        scheme = FirstOrderScheme(small_torus)
        m = diffusion_matrix(small_torus)
        load = point_load(small_torus, 640.0)
        state = LoadState.initial(small_torus, load)
        for _ in range(5):
            flows = scheme.scheduled_flows(state)
            new_load = apply_flows(small_torus, state.load, flows)
            assert np.allclose(new_load, m @ state.load, atol=1e-9)
            state = state.advanced(new_load, flows)

    def test_flow_formula_equation1(self):
        topo = cycle(4)
        scheme = FirstOrderScheme(topo)
        load = np.array([9.0, 3.0, 0.0, 0.0])
        state = LoadState.initial(topo, load)
        flows = scheme.scheduled_flows(state)
        k = topo.edge_id(0, 1)
        assert flows[k] == pytest.approx((9.0 - 3.0) / 3.0)

    def test_ignores_flow_history(self):
        topo = cycle(5)
        scheme = FirstOrderScheme(topo)
        assert scheme.uses_flow_history is False
        load = np.arange(5, dtype=float)
        s0 = LoadState(load=load, flows=np.zeros(topo.m_edges), round_index=3)
        s1 = LoadState(load=load, flows=np.ones(topo.m_edges), round_index=3)
        assert np.allclose(
            scheme.scheduled_flows(s0), scheme.scheduled_flows(s1)
        )


class TestSecondOrder:
    def test_first_round_is_fos(self, small_torus):
        fos = FirstOrderScheme(small_torus)
        sos = SecondOrderScheme(small_torus, beta=1.7)
        state = LoadState.initial(small_torus, point_load(small_torus, 100.0))
        assert np.allclose(
            fos.scheduled_flows(state), sos.scheduled_flows(state)
        )

    def test_matches_matrix_recursion_equation4(self, small_torus):
        beta = 1.6
        scheme = SecondOrderScheme(small_torus, beta=beta)
        m = diffusion_matrix(small_torus)
        x_prev = point_load(small_torus, 640.0)
        state = LoadState.initial(small_torus, x_prev)
        flows = scheme.scheduled_flows(state)
        x_cur = apply_flows(small_torus, state.load, flows)
        state = state.advanced(x_cur, flows)
        for _ in range(6):
            flows = scheme.scheduled_flows(state)
            x_next = apply_flows(small_torus, state.load, flows)
            expected = beta * (m @ x_cur) + (1.0 - beta) * x_prev
            assert np.allclose(x_next, expected, atol=1e-9)
            state = state.advanced(x_next, flows)
            x_prev, x_cur = x_cur, x_next

    def test_flow_recursion_equation3(self):
        topo = cycle(4)
        beta = 1.5
        scheme = SecondOrderScheme(topo, beta=beta)
        load = np.array([8.0, 0.0, 4.0, 0.0])
        prev = np.full(topo.m_edges, 0.5)
        state = LoadState(load=load, flows=prev, round_index=2)
        flows = scheme.scheduled_flows(state)
        k = topo.edge_id(0, 1)
        expected = (beta - 1.0) * 0.5 + beta * (8.0 - 0.0) / 3.0
        assert flows[k] == pytest.approx(expected)

    def test_beta_one_equals_fos(self, small_torus):
        fos = FirstOrderScheme(small_torus)
        sos = SecondOrderScheme(small_torus, beta=1.0)
        state = LoadState(
            load=np.arange(small_torus.n, dtype=float),
            flows=np.ones(small_torus.m_edges),
            round_index=4,
        )
        assert np.allclose(
            sos.scheduled_flows(state), fos.scheduled_flows(state)
        )

    def test_beta_validation(self, small_torus):
        with pytest.raises(SchemeError):
            SecondOrderScheme(small_torus, beta=0.0)
        with pytest.raises(SchemeError):
            SecondOrderScheme(small_torus, beta=2.0)


class TestLinearityLemma1:
    """Lemma 1 / Definitions 2 and 4: FOS and SOS are linear processes."""

    @pytest.mark.parametrize("kind", ["fos", "sos"])
    def test_linearity_random_inputs(self, kind, rng):
        topo = random_connected_graph(rng, 12, extra_edges=10)
        speeds = 1.0 + 2.0 * rng.random(topo.n)
        if kind == "fos":
            scheme = FirstOrderScheme(topo, speeds=speeds)
        else:
            scheme = SecondOrderScheme(topo, beta=1.7, speeds=speeds)
        for _ in range(10):
            x1 = rng.normal(size=topo.n) * 100
            x2 = rng.normal(size=topo.n) * 100
            y1 = rng.normal(size=topo.m_edges) * 10
            y2 = rng.normal(size=topo.m_edges) * 10
            a, b = rng.normal(size=2)
            violation = check_linearity(scheme, x1, x2, y1, y2, a, b)
            assert violation < 1e-8
