"""Tests for the matching-based (dimension-exchange) baseline schemes."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    DimensionExchangeScheme,
    LoadBalancingProcess,
    RandomMatchingScheme,
    Simulator,
    cycle,
    greedy_edge_coloring,
    hypercube,
    lemma2_rhs,
    matching_contribution_matrices,
    point_load,
    run_paired,
    torus_2d,
)


class TestEdgeColoring:
    def test_colors_are_matchings(self, small_torus):
        matchings = greedy_edge_coloring(small_torus)
        seen_edges = set()
        for edges in matchings:
            nodes = np.concatenate(
                [small_torus.edge_u[edges], small_torus.edge_v[edges]]
            )
            assert np.unique(nodes).size == nodes.size  # no repeated endpoint
            seen_edges.update(edges.tolist())
        assert len(seen_edges) == small_torus.m_edges  # every edge coloured

    def test_color_count_bounded(self, small_torus):
        matchings = greedy_edge_coloring(small_torus)
        assert len(matchings) <= 2 * small_torus.max_degree - 1

    def test_hypercube_colors_are_dimensions(self):
        topo = hypercube(4)
        matchings = greedy_edge_coloring(topo)
        assert len(matchings) == 4  # perfectly colourable by dimension
        for edges in matchings:
            assert edges.size == topo.n // 2  # perfect matchings


class TestRandomMatching:
    def test_matching_per_round_is_deterministic(self, small_torus):
        scheme = RandomMatchingScheme(small_torus, seed=5)
        a = scheme.matching_for_round(3)
        b = scheme.matching_for_round(3)
        assert np.array_equal(a, b)
        c = scheme.matching_for_round(4)
        assert not np.array_equal(a, c)

    def test_matching_is_maximal(self, small_torus):
        scheme = RandomMatchingScheme(small_torus, seed=1)
        edges = scheme.matching_for_round(0)
        matched = np.zeros(small_torus.n, dtype=bool)
        matched[small_torus.edge_u[edges]] = True
        matched[small_torus.edge_v[edges]] = True
        # Maximal: no remaining edge has both endpoints free.
        for k in range(small_torus.m_edges):
            u, v = small_torus.edge_u[k], small_torus.edge_v[k]
            assert matched[u] or matched[v]

    def test_pair_averages_completely(self):
        topo = cycle(4)
        scheme = RandomMatchingScheme(topo, seed=0)
        proc = LoadBalancingProcess(scheme)
        state = proc.initial_state(np.array([8.0, 0.0, 4.0, 2.0]))
        state, info = proc.step(state)
        active = scheme.matching_for_round(0)
        for e in active:
            u, v = int(topo.edge_u[e]), int(topo.edge_v[e])
            assert state.load[u] == pytest.approx(state.load[v])

    def test_balances_on_torus(self, small_torus):
        proc = LoadBalancingProcess(
            RandomMatchingScheme(small_torus, seed=2),
            rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        result = Simulator(proc).run(point_load(small_torus, 6400), rounds=400)
        assert result.records[-1].max_minus_avg < 15.0
        assert result.records[-1].total_load == 6400

    def test_heterogeneous_pair_average(self):
        topo = cycle(4)
        speeds = np.array([1.0, 3.0, 1.0, 1.0])
        scheme = RandomMatchingScheme(topo, speeds=speeds, seed=0)
        proc = LoadBalancingProcess(scheme)
        state = proc.initial_state(np.array([8.0, 0.0, 0.0, 0.0]))
        state, _ = proc.step(state)
        active = scheme.matching_for_round(0)
        for e in active:
            u, v = int(topo.edge_u[e]), int(topo.edge_v[e])
            assert state.load[u] / speeds[u] == pytest.approx(
                state.load[v] / speeds[v]
            )


class TestDimensionExchange:
    def test_hypercube_sweep_balances_continuously(self):
        """One sweep of all dimensions balances the continuous hypercube."""
        topo = hypercube(5)
        scheme = DimensionExchangeScheme(topo)
        proc = LoadBalancingProcess(scheme)
        state = proc.run(point_load(topo, 32.0 * 64), rounds=scheme.n_colors)
        assert np.allclose(state.load, 64.0, atol=1e-9)

    def test_rotation_covers_all_colors(self, small_torus):
        scheme = DimensionExchangeScheme(small_torus)
        total_active = sum(
            scheme._active_edges(t).size for t in range(scheme.n_colors)
        )
        assert total_active == small_torus.m_edges

    def test_rejects_edgeless_graph(self):
        from repro import Topology

        with pytest.raises(ConfigurationError):
            DimensionExchangeScheme(Topology(3, []))

    def test_discrete_balances_with_small_residual(self, small_torus):
        proc = LoadBalancingProcess(
            DimensionExchangeScheme(small_torus),
            rounding="randomized-excess",
            rng=np.random.default_rng(1),
        )
        result = Simulator(proc).run(point_load(small_torus, 6400), rounds=300)
        assert result.records[-1].max_minus_avg < 10.0


class TestMatchingLemma2:
    """Lemma 2 extends to the time-inhomogeneous matching schemes."""

    @pytest.mark.parametrize("rounding", ["floor", "nearest", "randomized-excess"])
    def test_identity_exact_dimension_exchange(self, rounding, rng):
        topo = torus_2d(4, 4)
        scheme = DimensionExchangeScheme(topo)
        proc = LoadBalancingProcess(scheme, rounding=rounding, rng=rng)
        rounds = 9
        paired = run_paired(proc, point_load(topo, 500), rounds=rounds)
        mats = matching_contribution_matrices(scheme, rounds)
        lhs = paired.deviation(rounds)
        rhs = lemma2_rhs(topo, mats, paired.errors, rounds)
        assert np.abs(lhs - rhs).max() < 1e-9

    def test_identity_exact_random_matching(self, rng):
        topo = cycle(10)
        scheme = RandomMatchingScheme(topo, seed=7)
        proc = LoadBalancingProcess(scheme, rounding="floor", rng=rng)
        rounds = 8
        paired = run_paired(proc, point_load(topo, 333), rounds=rounds)
        mats = matching_contribution_matrices(scheme, rounds)
        lhs = paired.deviation(rounds)
        rhs = lemma2_rhs(topo, mats, paired.errors, rounds)
        assert np.abs(lhs - rhs).max() < 1e-9

    def test_round_matrices_are_column_stochastic(self):
        topo = torus_2d(3, 4)
        speeds = np.array([1.0, 2.0] * 6)
        scheme = RandomMatchingScheme(topo, speeds=speeds, seed=0)
        mats = matching_contribution_matrices(scheme, 5)
        for s in range(1, 6):
            assert np.allclose(mats[s].sum(axis=0), 1.0)
            assert mats[s].min() >= 0.0
