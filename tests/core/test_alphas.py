"""Unit tests for alpha strategies."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    constant_alpha,
    cycle,
    heterogeneous_safe,
    lazy_metropolis,
    max_degree_plus_one,
    resolve_alphas,
    star,
    torus_2d,
    uniform_alpha,
    uniform_speeds,
)


class TestStrategies:
    def test_paper_default_on_regular_graph(self):
        topo = torus_2d(4, 4)
        alphas = max_degree_plus_one(topo)
        assert np.allclose(alphas, 1.0 / 5.0)

    def test_paper_default_on_star(self):
        topo = star(5)  # hub degree 4, leaves degree 1
        alphas = max_degree_plus_one(topo)
        assert np.allclose(alphas, 1.0 / 5.0)

    def test_uniform_alpha(self):
        topo = cycle(6)
        alphas = uniform_alpha(topo, gamma=2.0)
        assert np.allclose(alphas, 1.0 / 4.0)

    def test_uniform_alpha_rejects_gamma_below_one(self):
        with pytest.raises(ConfigurationError):
            uniform_alpha(cycle(6), gamma=0.5)

    def test_lazy_metropolis(self):
        topo = cycle(6)
        assert np.allclose(lazy_metropolis(topo), 1.0 / 4.0)

    def test_heterogeneous_safe_scales_with_min_speed(self):
        topo = cycle(4)
        speeds = np.array([1.0, 2.0, 4.0, 1.0])
        alphas = heterogeneous_safe(topo, speeds)
        for k, (u, v) in enumerate(topo.edges()):
            expected = min(speeds[u], speeds[v]) / 3.0
            assert alphas[k] == pytest.approx(expected)

    def test_heterogeneous_safe_reduces_to_default(self):
        topo = torus_2d(3, 3)
        assert np.allclose(
            heterogeneous_safe(topo, uniform_speeds(topo.n)),
            max_degree_plus_one(topo),
        )

    def test_heterogeneous_safe_keeps_diagonal_positive(self, rng):
        # sum_j alpha_ij < s_i must hold for every node and any speeds.
        topo = star(10)
        speeds = 1.0 + 10.0 * rng.random(topo.n)
        alphas = heterogeneous_safe(topo, speeds)
        per_node = np.zeros(topo.n)
        np.add.at(per_node, topo.edge_u, alphas)
        np.add.at(per_node, topo.edge_v, alphas)
        assert np.all(per_node < speeds)

    def test_constant_alpha_factory(self):
        topo = cycle(5)
        strategy = constant_alpha(0.1)
        assert np.allclose(strategy(topo), 0.1)
        with pytest.raises(ConfigurationError):
            constant_alpha(0.0)


class TestResolve:
    def test_none_homogeneous(self):
        topo = cycle(5)
        assert np.allclose(resolve_alphas(None, topo), 1.0 / 3.0)

    def test_none_heterogeneous_picks_safe(self):
        topo = cycle(4)
        speeds = np.array([1.0, 3.0, 1.0, 1.0])
        assert np.allclose(
            resolve_alphas(None, topo, speeds), heterogeneous_safe(topo, speeds)
        )

    def test_by_name(self):
        topo = cycle(5)
        assert np.allclose(
            resolve_alphas("max-degree-plus-one", topo), 1.0 / 3.0
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown alpha"):
            resolve_alphas("nope", cycle(5))

    def test_hetero_name_requires_speeds(self):
        with pytest.raises(ConfigurationError, match="need speeds"):
            resolve_alphas("heterogeneous-safe", cycle(5))

    def test_scalar(self):
        topo = cycle(5)
        assert np.allclose(resolve_alphas(0.2, topo), 0.2)

    def test_array_passthrough_and_validation(self):
        topo = cycle(5)
        arr = np.full(topo.m_edges, 0.3)
        assert np.allclose(resolve_alphas(arr, topo), 0.3)
        with pytest.raises(ConfigurationError):
            resolve_alphas(np.ones(3), topo)
        with pytest.raises(ConfigurationError):
            resolve_alphas(np.full(topo.m_edges, -1.0), topo)

    def test_callable(self):
        topo = cycle(5)
        assert np.allclose(
            resolve_alphas(lambda t, speeds=None: np.full(t.m_edges, 0.25), topo),
            0.25,
        )
