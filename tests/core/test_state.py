"""Unit tests for load state and edge-flow primitives."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    LoadState,
    apply_flows,
    cycle,
    incoming_per_node,
    outgoing_per_node,
    point_load,
    proportional_load,
    random_load,
    transient_loads,
    uniform_load,
)


class TestLoadState:
    def test_initial(self, tiny_cycle):
        state = LoadState.initial(tiny_cycle, point_load(tiny_cycle, 80))
        assert state.round_index == 0
        assert state.total_load == 80.0
        assert np.all(state.flows == 0.0)

    def test_initial_rejects_wrong_shape(self, tiny_cycle):
        with pytest.raises(ConfigurationError):
            LoadState.initial(tiny_cycle, np.ones(3))

    def test_advanced_increments_round(self, tiny_cycle):
        state = LoadState.initial(tiny_cycle, uniform_load(tiny_cycle, 2))
        nxt = state.advanced(state.load, state.flows)
        assert nxt.round_index == 1
        assert state.round_index == 0  # immutable


class TestFlowPrimitives:
    def test_apply_flows_moves_load(self):
        topo = cycle(4)
        load = np.array([10.0, 0.0, 0.0, 0.0])
        flows = np.zeros(topo.m_edges)
        flows[topo.edge_id(0, 1)] = 3.0  # 0 -> 1
        flows[topo.edge_id(0, 3)] = -2.0  # oriented (0,3): negative = 3 -> 0
        new = apply_flows(topo, load, flows)
        assert new.tolist() == [9.0, 3.0, 0.0, -2.0]
        assert new.sum() == load.sum()

    def test_outgoing_incoming_split(self):
        topo = cycle(4)
        flows = np.zeros(topo.m_edges)
        flows[topo.edge_id(0, 1)] = 3.0
        flows[topo.edge_id(2, 3)] = -1.0  # 3 sends 1 to 2
        out = outgoing_per_node(topo, flows)
        inc = incoming_per_node(topo, flows)
        assert out.tolist() == [3.0, 0.0, 0.0, 1.0]
        assert inc.tolist() == [0.0, 3.0, 1.0, 0.0]
        # Conservation: outgoing total equals incoming total.
        assert out.sum() == inc.sum()

    def test_transient_is_load_minus_outgoing(self):
        topo = cycle(4)
        load = np.array([5.0, 5.0, 5.0, 5.0])
        flows = np.zeros(topo.m_edges)
        flows[topo.edge_id(0, 1)] = 7.0
        trans = transient_loads(topo, load, flows)
        assert trans[0] == -2.0  # negative load event
        assert trans[1] == 5.0


class TestInitialLoads:
    def test_point_load(self, tiny_cycle):
        load = point_load(tiny_cycle, 100, node=3)
        assert load[3] == 100.0
        assert load.sum() == 100.0

    def test_point_load_validation(self, tiny_cycle):
        with pytest.raises(ConfigurationError):
            point_load(tiny_cycle, 10, node=99)
        with pytest.raises(ConfigurationError):
            point_load(tiny_cycle, -1)

    def test_uniform_load(self, tiny_cycle):
        load = uniform_load(tiny_cycle, 7)
        assert np.all(load == 7.0)
        with pytest.raises(ConfigurationError):
            uniform_load(tiny_cycle, -2)

    def test_random_load_total_and_integrality(self, tiny_cycle, rng):
        load = random_load(tiny_cycle, 1000, rng=rng)
        assert load.sum() == 1000
        assert np.allclose(load, np.round(load))

    def test_proportional_load(self, tiny_cycle):
        speeds = np.arange(1, 9, dtype=float)
        load = proportional_load(tiny_cycle, speeds, per_unit=3.0)
        assert np.allclose(load, 3.0 * speeds)
        with pytest.raises(ConfigurationError):
            proportional_load(tiny_cycle, np.ones(3), 1.0)
