"""Unit tests for the process wrapper (scheme + rounding)."""

import numpy as np
import pytest

from repro import (
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    cycle,
    point_load,
    torus_2d,
)


class TestStep:
    def test_conserves_total_load(self, small_torus, rng):
        proc = LoadBalancingProcess(
            SecondOrderScheme(small_torus, beta=1.6),
            rounding="randomized-excess",
            rng=rng,
        )
        state = proc.initial_state(point_load(small_torus, 6400))
        total = state.total_load
        for _ in range(30):
            state, _ = proc.step(state)
            assert state.total_load == pytest.approx(total)

    def test_discrete_loads_stay_integral(self, small_torus, rng):
        proc = LoadBalancingProcess(
            FirstOrderScheme(small_torus), rounding="randomized-excess", rng=rng
        )
        state = proc.initial_state(point_load(small_torus, 999))
        for _ in range(20):
            state, _ = proc.step(state)
            assert np.allclose(state.load, np.round(state.load))

    def test_step_info_errors_consistent(self, small_torus, rng):
        proc = LoadBalancingProcess(
            SecondOrderScheme(small_torus, beta=1.5),
            rounding="floor",
            rng=rng,
        )
        state = proc.initial_state(point_load(small_torus, 500))
        state, info = proc.step(state)
        assert np.allclose(info.errors, info.scheduled - info.actual)
        assert np.abs(info.errors).max() < 1.0

    def test_min_transient_reported(self):
        # Two nodes with a huge imbalance: identity FOS sends x/3 so the
        # transient stays positive; check the reported value matches.
        topo = cycle(4)
        proc = LoadBalancingProcess(FirstOrderScheme(topo))
        state = proc.initial_state(np.array([9.0, 0.0, 0.0, 0.0]))
        _, info = proc.step(state)
        assert info.min_transient == pytest.approx(0.0)

    def test_is_discrete_flag(self, small_torus):
        cont = LoadBalancingProcess(FirstOrderScheme(small_torus))
        disc = LoadBalancingProcess(FirstOrderScheme(small_torus), rounding="floor")
        assert not cont.is_discrete
        assert disc.is_discrete

    def test_run_shortcut(self, small_torus, rng):
        proc = LoadBalancingProcess(
            SecondOrderScheme(small_torus, beta=1.6),
            rounding="randomized-excess",
            rng=rng,
        )
        state = proc.run(point_load(small_torus, 6400), rounds=50)
        assert state.round_index == 50
        assert state.total_load == 6400

    def test_continuous_fos_converges_to_average(self, small_torus):
        proc = LoadBalancingProcess(FirstOrderScheme(small_torus))
        state = proc.run(point_load(small_torus, 64.0), rounds=2000)
        assert np.allclose(state.load, 1.0, atol=1e-6)

    def test_continuous_sos_converges_to_average(self, small_torus):
        from repro import beta_opt, torus_lambda

        beta = beta_opt(torus_lambda((8, 8)))
        proc = LoadBalancingProcess(SecondOrderScheme(small_torus, beta=beta))
        state = proc.run(point_load(small_torus, 64.0), rounds=400)
        assert np.allclose(state.load, 1.0, atol=1e-6)
