"""Unit tests for the theoretical bound formulas."""

import math

import pytest

from repro import ConfigurationError, theory


class TestConvergenceBounds:
    def test_fos_scales_inverse_gap(self):
        t1 = theory.fos_convergence_rounds(1000, 100, lam=0.9)
        t2 = theory.fos_convergence_rounds(1000, 100, lam=0.99)
        assert t2 == pytest.approx(10 * t1, rel=1e-9)

    def test_sos_scales_inverse_sqrt_gap(self):
        t1 = theory.sos_convergence_rounds(1000, 100, lam=0.9)
        t2 = theory.sos_convergence_rounds(1000, 100, lam=0.99)
        assert t2 == pytest.approx(math.sqrt(10) * t1, rel=1e-9)

    def test_sos_faster_than_fos(self):
        fos = theory.fos_convergence_rounds(1000, 100, lam=0.99)
        sos = theory.sos_convergence_rounds(1000, 100, lam=0.99)
        assert sos < fos

    def test_smax_enters_logarithmically(self):
        base = theory.fos_convergence_rounds(10, 10, 0.5, smax=1.0)
        more = theory.fos_convergence_rounds(10, 10, 0.5, smax=math.e**2)
        assert more == pytest.approx(base + 2.0 / 0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.fos_convergence_rounds(0, 10, 0.5)
        with pytest.raises(ConfigurationError):
            theory.sos_convergence_rounds(10, 10, 1.0)


class TestDeviationBounds:
    def test_theorem3_form(self):
        val = theory.theorem3_deviation(2.0, 4, 100)
        assert val == pytest.approx(2.0 * math.sqrt(4 * math.log(100)))

    def test_observation3_form(self):
        val = theory.observation3_upsilon(4, gamma=2.0)
        assert val == pytest.approx(math.sqrt(2.0 * 4 / (2.0 - 1.0)))

    def test_theorem4_vs_theorem9_ordering(self):
        # For small gap the SOS Upsilon bound ((1-lam)^-3/4) exceeds the
        # FOS one ((1-lam)^-1/2)  — SOS pays for speed with deviation.
        lam = 0.999
        fos = theory.theorem4_upsilon(4, 8.0, lam)
        sos = theory.theorem9_upsilon(4, 8.0, lam)
        assert sos > fos

    def test_theorem8_explicit_constant(self):
        val = theory.theorem8_deviation(4, 100, 2.0, 0.9, scale=1.0)
        assert val == pytest.approx(4 * math.sqrt(200) / 0.1)

    def test_homogeneous_log_smax_floored(self):
        # smax = 1 must not zero out the bound.
        assert theory.theorem4_upsilon(4, 1.0, 0.5) > 0
        assert theory.theorem9_deviation(4, 100, 1.0, 0.5) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.theorem4_upsilon(0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            theory.theorem8_deviation(4, 100, 0.5, 0.9)
        with pytest.raises(ConfigurationError):
            theory.theorem9_upsilon(4, 2.0, 1.0)
        with pytest.raises(ConfigurationError):
            theory.observation3_upsilon(4, gamma=1.0)
        with pytest.raises(ConfigurationError):
            theory.theorem3_deviation(-1.0, 4, 100)
