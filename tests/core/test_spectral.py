"""Unit tests for the spectral toolkit (lambda, beta, Q(t), Lemma 7)."""

import math

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    SchemeError,
    beta_opt,
    complete,
    complete_lambda,
    cycle,
    cycle_lambda,
    diffusion_matrix,
    eigenvalues,
    gamma_closed_form,
    hypercube,
    hypercube_lambda,
    hypercube_spectrum,
    q_matrices,
    q_matrix_at,
    second_largest_eigenvalue,
    spectral_gap,
    torus_2d,
    torus_lambda,
    torus_spectrum,
)

# The beta values printed in Table I of the paper.
PAPER_TABLE1 = {
    (1000, 1000): 1.9920836447,
    (100, 100): 1.9235874877,
}


class TestLambda:
    def test_analytic_torus_matches_numeric(self):
        topo = torus_2d(5, 7)
        assert torus_lambda((5, 7)) == pytest.approx(
            second_largest_eigenvalue(topo), abs=1e-10
        )

    def test_analytic_hypercube_matches_numeric(self):
        topo = hypercube(5)
        assert hypercube_lambda(5) == pytest.approx(
            second_largest_eigenvalue(topo), abs=1e-10
        )

    def test_analytic_cycle_matches_numeric(self):
        topo = cycle(9)
        assert cycle_lambda(9) == pytest.approx(
            second_largest_eigenvalue(topo), abs=1e-10
        )

    def test_complete_lambda_zero(self):
        # K_n with alpha = 1/n: all non-stationary eigenvalues vanish.
        assert complete_lambda(5) == 0.0
        assert second_largest_eigenvalue(complete(5)) == pytest.approx(0.0, abs=1e-10)

    def test_torus_spectrum_full(self):
        topo = torus_2d(4, 5)
        numeric = eigenvalues(topo)
        analytic = torus_spectrum((4, 5))
        assert np.allclose(np.sort(numeric), analytic, atol=1e-10)

    def test_hypercube_spectrum_full(self):
        topo = hypercube(4)
        numeric = eigenvalues(topo)
        analytic = hypercube_spectrum(4)
        assert np.allclose(np.sort(numeric), analytic, atol=1e-10)

    def test_sparse_solver_agrees_with_dense(self):
        topo = torus_2d(6, 6)
        dense = second_largest_eigenvalue(topo, method="dense")
        sparse = second_largest_eigenvalue(topo, method="sparse")
        assert dense == pytest.approx(sparse, abs=1e-8)

    def test_heterogeneous_lambda_below_one(self, rng):
        topo = torus_2d(4, 4)
        speeds = 1.0 + 3.0 * rng.random(topo.n)
        lam = second_largest_eigenvalue(topo, speeds)
        assert 0.0 < lam < 1.0

    def test_dense_refuses_large(self):
        topo = hypercube(13)
        with pytest.raises(ConfigurationError):
            eigenvalues(topo)

    def test_torus_lambda_requires_sides_three(self):
        with pytest.raises(ConfigurationError):
            torus_lambda((2, 5))


class TestBeta:
    def test_table1_torus_betas(self):
        for shape, printed in PAPER_TABLE1.items():
            assert beta_opt(torus_lambda(shape)) == pytest.approx(printed, abs=5e-7)

    def test_table1_hypercube_beta(self):
        assert beta_opt(hypercube_lambda(20)) == pytest.approx(1.4026054847, abs=5e-9)

    def test_beta_range(self):
        assert beta_opt(0.0) == 1.0
        assert 1.0 < beta_opt(0.9) < 2.0
        with pytest.raises(SchemeError):
            beta_opt(1.0)
        with pytest.raises(SchemeError):
            beta_opt(-0.1)

    def test_spectral_gap(self):
        assert spectral_gap(0.9) == pytest.approx(0.1)
        with pytest.raises(SchemeError):
            spectral_gap(1.5)


class TestQMatrices:
    def _setup(self, beta=None):
        topo = cycle(7)
        m = diffusion_matrix(topo)
        lam = cycle_lambda(7)
        return topo, m, lam, beta or beta_opt(lam)

    def test_recursion_base_cases(self):
        _, m, _, beta = self._setup()
        mats = list(q_matrices(m, beta, 2))
        assert np.allclose(mats[0], np.eye(7))
        assert np.allclose(mats[1], beta * m)
        assert np.allclose(mats[2], beta * m @ mats[1] + (1 - beta) * mats[0])

    def test_q_matrix_at(self):
        _, m, _, beta = self._setup()
        mats = list(q_matrices(m, beta, 5))
        assert np.allclose(q_matrix_at(m, beta, 5), mats[5])
        with pytest.raises(ConfigurationError):
            q_matrix_at(m, beta, -1)

    def test_equal_column_sums_lemma7_3(self):
        _, m, _, beta = self._setup()
        for q in q_matrices(m, beta, 8):
            sums = q.sum(axis=0)
            assert np.allclose(sums, sums[0])

    def test_eigenvalues_match_closed_form_lemma7_2(self):
        topo, m, lam, beta = self._setup()
        mu = np.sort(eigenvalues(topo))
        for t, q in enumerate(q_matrices(m, beta, 10)):
            q_eigs = np.sort(np.linalg.eigvals(q).real)
            expected = np.sort(
                [gamma_closed_form(float(x), lam, beta, t) for x in mu]
            )
            assert np.allclose(q_eigs, expected, atol=1e-7), f"t={t}"

    def test_gamma_bound_lemma7_2(self):
        # All non-stationary eigenvalues are bounded by (sqrt(beta-1))^t (t+1).
        topo, m, lam, beta = self._setup()
        mu = np.sort(eigenvalues(topo))[:-1]  # drop the stationary eigenvalue 1
        for t in range(0, 25):
            bound = (math.sqrt(beta - 1.0)) ** t * (t + 1) + 1e-9
            for x in mu:
                assert abs(gamma_closed_form(float(x), lam, beta, t)) <= bound

    def test_stationary_gamma_closed_form(self):
        _, m, lam, beta = self._setup()
        for t in range(6):
            expected = (1.0 - (beta - 1.0) ** (t + 1)) / (2.0 - beta)
            assert gamma_closed_form(1.0, lam, beta, t) == pytest.approx(
                expected, rel=1e-9
            )

    def test_beta_validation(self):
        _, m, _, _ = self._setup()
        with pytest.raises(SchemeError):
            list(q_matrices(m, 2.0, 2))
        with pytest.raises(SchemeError):
            gamma_closed_form(0.5, 0.9, 0.0, 3)

    def test_beta_one_reduces_to_fos_powers(self):
        # With beta = 1, Q(t) = M^t.
        _, m, _, _ = self._setup()
        power = np.eye(7)
        for t, q in enumerate(q_matrices(m, 1.0 + 1e-12, 6)):
            assert np.allclose(q, power, atol=1e-9), f"t={t}"
            power = m @ power


class TestWalshHadamard:
    """The FWHT kernel and the hypercube mode eigenvalues."""

    def test_fwht_matches_hadamard_matrix(self):
        from repro.core.spectral import fwht

        rng = np.random.default_rng(0)
        x = rng.random((8, 3))
        h = np.array([[1.0]])
        for _ in range(3):
            h = np.block([[h, h], [h, -h]])
        np.testing.assert_allclose(fwht(x), h @ x, atol=1e-12)

    def test_fwht_involution(self):
        from repro.core.spectral import fwht

        rng = np.random.default_rng(1)
        for shape in ((1,), (4,), (16, 5)):
            x = rng.random(shape)
            np.testing.assert_allclose(
                fwht(fwht(x)) / shape[0], x, atol=1e-12
            )

    def test_fwht_rejects_non_power_of_two(self):
        from repro.core.spectral import fwht

        with pytest.raises(ConfigurationError):
            fwht(np.zeros((6, 2)))

    def test_wht_eigenvalues_match_dense_spectrum(self):
        from repro.core.spectral import hypercube_wht_eigenvalues

        topo = hypercube(5)
        alpha = 1.0 / 6.0
        mu = hypercube_wht_eigenvalues(5, alpha)
        dense = np.sort(np.linalg.eigvalsh(diffusion_matrix(topo)))
        np.testing.assert_allclose(np.sort(mu), dense, atol=1e-12)
        # popcount layout: mode 0 is stationary, mode 2**j flips one bit
        assert mu[0] == 1.0
        for j in range(5):
            assert mu[1 << j] == pytest.approx(1.0 - 2.0 * alpha)

    def test_wht_eigenvalues_validation(self):
        from repro.core.spectral import hypercube_wht_eigenvalues

        with pytest.raises(ConfigurationError):
            hypercube_wht_eigenvalues(-1, 0.2)
