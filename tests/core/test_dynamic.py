"""Tests for dynamic (online-arrival) load balancing."""

import numpy as np
import pytest

from repro import (
    BurstArrivals,
    ConfigurationError,
    DynamicSimulator,
    FirstOrderScheme,
    HotspotArrivals,
    LoadBalancingProcess,
    NoArrivals,
    PoissonArrivals,
    SecondOrderScheme,
    arrival_stream,
    arrival_streams,
    make_arrival_model,
    point_load,
    torus_2d,
    uniform_load,
)
from repro.exceptions import SimulationError


def _process(topo, kind="sos", beta=1.6, rng=None):
    scheme = (
        SecondOrderScheme(topo, beta=beta) if kind == "sos" else FirstOrderScheme(topo)
    )
    return LoadBalancingProcess(
        scheme, rounding="randomized-excess", rng=rng or np.random.default_rng(0)
    )


class TestArrivalModels:
    def test_no_arrivals_zero(self, small_torus, rng):
        deltas = NoArrivals().deltas(small_torus, 0, rng)
        assert np.all(deltas == 0.0)

    def test_poisson_mean(self, small_torus, rng):
        model = PoissonArrivals(rate=3.0)
        total = sum(
            model.deltas(small_torus, t, rng).sum() for t in range(100)
        )
        assert total / (100 * small_torus.n) == pytest.approx(3.0, rel=0.1)

    def test_poisson_with_departures_balanced(self, small_torus, rng):
        model = PoissonArrivals(rate=2.0, departure_rate=2.0)
        total = sum(
            model.deltas(small_torus, t, rng).sum() for t in range(300)
        )
        assert abs(total) < 0.5 * 300 * small_torus.n  # near-zero drift

    def test_burst_period(self, small_torus, rng):
        model = BurstArrivals(burst=100, period=5)
        for t in range(10):
            total = model.deltas(small_torus, t, rng).sum()
            assert total == (100.0 if t % 5 == 0 else 0.0)

    def test_hotspot_fixed_nodes(self, small_torus, rng):
        model = HotspotArrivals(nodes=[0, 5], rate=7)
        deltas = model.deltas(small_torus, 3, rng)
        assert deltas[0] == 7.0 and deltas[5] == 7.0
        assert deltas.sum() == 14.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=-1.0)
        with pytest.raises(ConfigurationError):
            BurstArrivals(burst=1, period=0)
        with pytest.raises(ConfigurationError):
            HotspotArrivals(nodes=[], rate=1)
        with pytest.raises(ConfigurationError):
            HotspotArrivals(nodes=[0], rate=-1)


class TestDynamicSimulator:
    def test_static_model_reduces_to_plain_run(self, small_torus):
        rounds = 40
        load = point_load(small_torus, 6400)
        dynamic = DynamicSimulator(
            _process(small_torus, rng=np.random.default_rng(1)),
            NoArrivals(),
        ).run(load, rounds)
        static = _process(small_torus, rng=np.random.default_rng(1)).run(
            load, rounds
        )
        assert np.array_equal(dynamic.final_state.load, static.load)

    def test_total_accounting_exact(self, small_torus):
        result = DynamicSimulator(
            _process(small_torus),
            PoissonArrivals(rate=2.0, departure_rate=1.0),
            rng=np.random.default_rng(2),
        ).run(uniform_load(small_torus, 100), rounds=60)
        expected = 100.0 * small_torus.n
        for rec in result.records:
            expected += rec.arrived - rec.departed
            assert rec.total_load == pytest.approx(expected)

    def test_departures_clamped_at_zero(self, small_torus):
        # Huge departure rate on an empty system: loads must never go
        # negative through consumption.
        result = DynamicSimulator(
            _process(small_torus),
            PoissonArrivals(rate=0.0, departure_rate=50.0),
            rng=np.random.default_rng(3),
        ).run(uniform_load(small_torus, 3), rounds=20)
        assert result.final_state.load.sum() >= 0.0
        assert result.records[-1].total_load == pytest.approx(
            result.final_state.total_load
        )

    def test_steady_state_bounded_under_poisson(self, small_torus):
        """SOS keeps the imbalance bounded while work arrives."""
        result = DynamicSimulator(
            _process(small_torus),
            PoissonArrivals(rate=5.0),
            rng=np.random.default_rng(4),
        ).run(uniform_load(small_torus, 100), rounds=300)
        # Total grew by ~5 * 300 per node, but the imbalance stays small.
        assert result.steady_state_imbalance() < 40.0

    def test_burst_recovery(self, small_torus):
        """After each burst the imbalance decays back toward the residual."""
        result = DynamicSimulator(
            _process(small_torus),
            BurstArrivals(burst=3200, period=100),
            rng=np.random.default_rng(5),
        ).run(uniform_load(small_torus, 100), rounds=200)
        series = result.series("max_minus_avg")
        # Imbalance right after the burst (round ~101) far exceeds the
        # imbalance just before the next one (round ~199).
        assert series[101] > 5 * series[99]
        assert series[199] < series[101] / 5

    def test_rejects_negative_rounds(self, small_torus):
        sim = DynamicSimulator(_process(small_torus), NoArrivals())
        with pytest.raises(ConfigurationError):
            sim.run(uniform_load(small_torus, 1), rounds=-1)
        with pytest.raises(ConfigurationError):
            sim.run(uniform_load(small_torus, 1), rounds=0).steady_state_imbalance(0.0)

    def test_clamped_column_accounts_refused_departures(self, small_torus):
        """departed + clamped replays the requested consumption exactly."""
        result = DynamicSimulator(
            _process(small_torus),
            PoissonArrivals(rate=0.0, departure_rate=40.0),
            rng=np.random.default_rng(6),
        ).run(uniform_load(small_torus, 2), rounds=20)
        clamped = result.series("clamped")
        assert clamped.sum() > 0.0
        assert np.all(clamped >= 0.0)
        totals = result.series("total_load")
        replay = 2.0 * small_torus.n + np.cumsum(
            result.series("arrived") - result.series("departed")
        )
        assert np.array_equal(totals, replay)

    def test_incremental_core_equals_run(self, small_torus):
        """start/inject/advance/finish is the run() loop, bit for bit."""
        load = uniform_load(small_torus, 50)
        rounds = 30

        def make():
            return DynamicSimulator(
                _process(small_torus, rng=np.random.default_rng(4)),
                PoissonArrivals(rate=2.0, departure_rate=1.0),
                rng=np.random.default_rng(9),
            )

        fused = make().run(load, rounds)
        sim = make()
        run = sim.start(load, rounds_hint=rounds)
        for _ in range(rounds):
            arrived, departed, clamped = sim.inject(run)
            assert arrived >= 0.0 and departed >= 0.0 and clamped >= 0.0
            sim.advance(run)
        manual = sim.finish(run)
        assert np.array_equal(manual.final_state.load, fused.final_state.load)
        for name in ("total_load", "arrived", "departed", "clamped",
                      "max_minus_avg", "max_local_diff"):
            assert np.array_equal(manual.series(name), fused.series(name)), name

    def test_double_inject_raises(self, small_torus):
        sim = DynamicSimulator(
            _process(small_torus), PoissonArrivals(rate=1.0)
        )
        run = sim.start(uniform_load(small_torus, 5))
        sim.inject(run)
        with pytest.raises(SimulationError):
            sim.inject(run)


class TestArrivalSpecs:
    def test_poisson_spec(self):
        model = make_arrival_model("poisson:3.0,depart=1.0")
        assert isinstance(model, PoissonArrivals)
        assert model.rate == 3.0 and model.departure_rate == 1.0
        assert make_arrival_model("poisson:2.5").departure_rate == 0.0

    def test_burst_spec(self):
        model = make_arrival_model("burst:200/50")
        assert isinstance(model, BurstArrivals)
        assert model.burst == 200 and model.period == 50

    def test_hotspot_spec(self):
        model = make_arrival_model("hotspot:0,1:5")
        assert isinstance(model, HotspotArrivals)
        assert model.nodes == [0, 1] and model.rate == 5

    def test_none_and_passthrough(self):
        assert isinstance(make_arrival_model("none"), NoArrivals)
        model = PoissonArrivals(1.0)
        assert make_arrival_model(model) is model

    def test_bad_specs_raise(self):
        for spec in ("bogus:1", "poisson:", "poisson:1,x=2", "burst:5",
                     "hotspot:0", "poisson:abc", 17):
            with pytest.raises(ConfigurationError):
                make_arrival_model(spec)


class TestArrivalStreams:
    def test_streams_reproducible_and_distinct(self):
        a = arrival_stream(5, 0).random(8)
        assert np.array_equal(a, arrival_stream(5, 0).random(8))
        assert not np.array_equal(a, arrival_stream(5, 1).random(8))
        assert not np.array_equal(a, arrival_stream(6, 0).random(8))

    def test_streams_match_seedsequence_spawn(self):
        """The layout is SeedSequence(seed).spawn(B)[b], so a replica's
        stream never depends on the batch size it runs in."""
        children = np.random.SeedSequence(11).spawn(3)
        for b in range(3):
            assert np.array_equal(
                arrival_stream(11, b).random(4),
                np.random.default_rng(children[b]).random(4),
            )

    def test_streams_list_forms(self):
        count = arrival_streams(3, 2)
        keyed = arrival_streams(3, [0, 1])
        for a, b in zip(count, keyed):
            assert np.array_equal(a.random(4), b.random(4))
