"""Tests for dynamic (online-arrival) load balancing."""

import numpy as np
import pytest

from repro import (
    BurstArrivals,
    ConfigurationError,
    DynamicSimulator,
    FirstOrderScheme,
    HotspotArrivals,
    LoadBalancingProcess,
    NoArrivals,
    PoissonArrivals,
    SecondOrderScheme,
    point_load,
    torus_2d,
    uniform_load,
)


def _process(topo, kind="sos", beta=1.6, rng=None):
    scheme = (
        SecondOrderScheme(topo, beta=beta) if kind == "sos" else FirstOrderScheme(topo)
    )
    return LoadBalancingProcess(
        scheme, rounding="randomized-excess", rng=rng or np.random.default_rng(0)
    )


class TestArrivalModels:
    def test_no_arrivals_zero(self, small_torus, rng):
        deltas = NoArrivals().deltas(small_torus, 0, rng)
        assert np.all(deltas == 0.0)

    def test_poisson_mean(self, small_torus, rng):
        model = PoissonArrivals(rate=3.0)
        total = sum(
            model.deltas(small_torus, t, rng).sum() for t in range(100)
        )
        assert total / (100 * small_torus.n) == pytest.approx(3.0, rel=0.1)

    def test_poisson_with_departures_balanced(self, small_torus, rng):
        model = PoissonArrivals(rate=2.0, departure_rate=2.0)
        total = sum(
            model.deltas(small_torus, t, rng).sum() for t in range(300)
        )
        assert abs(total) < 0.5 * 300 * small_torus.n  # near-zero drift

    def test_burst_period(self, small_torus, rng):
        model = BurstArrivals(burst=100, period=5)
        for t in range(10):
            total = model.deltas(small_torus, t, rng).sum()
            assert total == (100.0 if t % 5 == 0 else 0.0)

    def test_hotspot_fixed_nodes(self, small_torus, rng):
        model = HotspotArrivals(nodes=[0, 5], rate=7)
        deltas = model.deltas(small_torus, 3, rng)
        assert deltas[0] == 7.0 and deltas[5] == 7.0
        assert deltas.sum() == 14.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=-1.0)
        with pytest.raises(ConfigurationError):
            BurstArrivals(burst=1, period=0)
        with pytest.raises(ConfigurationError):
            HotspotArrivals(nodes=[], rate=1)
        with pytest.raises(ConfigurationError):
            HotspotArrivals(nodes=[0], rate=-1)


class TestDynamicSimulator:
    def test_static_model_reduces_to_plain_run(self, small_torus):
        rounds = 40
        load = point_load(small_torus, 6400)
        dynamic = DynamicSimulator(
            _process(small_torus, rng=np.random.default_rng(1)),
            NoArrivals(),
        ).run(load, rounds)
        static = _process(small_torus, rng=np.random.default_rng(1)).run(
            load, rounds
        )
        assert np.array_equal(dynamic.final_state.load, static.load)

    def test_total_accounting_exact(self, small_torus):
        result = DynamicSimulator(
            _process(small_torus),
            PoissonArrivals(rate=2.0, departure_rate=1.0),
            rng=np.random.default_rng(2),
        ).run(uniform_load(small_torus, 100), rounds=60)
        expected = 100.0 * small_torus.n
        for rec in result.records:
            expected += rec.arrived - rec.departed
            assert rec.total_load == pytest.approx(expected)

    def test_departures_clamped_at_zero(self, small_torus):
        # Huge departure rate on an empty system: loads must never go
        # negative through consumption.
        result = DynamicSimulator(
            _process(small_torus),
            PoissonArrivals(rate=0.0, departure_rate=50.0),
            rng=np.random.default_rng(3),
        ).run(uniform_load(small_torus, 3), rounds=20)
        assert result.final_state.load.sum() >= 0.0
        assert result.records[-1].total_load == pytest.approx(
            result.final_state.total_load
        )

    def test_steady_state_bounded_under_poisson(self, small_torus):
        """SOS keeps the imbalance bounded while work arrives."""
        result = DynamicSimulator(
            _process(small_torus),
            PoissonArrivals(rate=5.0),
            rng=np.random.default_rng(4),
        ).run(uniform_load(small_torus, 100), rounds=300)
        # Total grew by ~5 * 300 per node, but the imbalance stays small.
        assert result.steady_state_imbalance() < 40.0

    def test_burst_recovery(self, small_torus):
        """After each burst the imbalance decays back toward the residual."""
        result = DynamicSimulator(
            _process(small_torus),
            BurstArrivals(burst=3200, period=100),
            rng=np.random.default_rng(5),
        ).run(uniform_load(small_torus, 100), rounds=200)
        series = result.series("max_minus_avg")
        # Imbalance right after the burst (round ~101) far exceeds the
        # imbalance just before the next one (round ~199).
        assert series[101] > 5 * series[99]
        assert series[199] < series[101] / 5

    def test_rejects_negative_rounds(self, small_torus):
        sim = DynamicSimulator(_process(small_torus), NoArrivals())
        with pytest.raises(ConfigurationError):
            sim.run(uniform_load(small_torus, 1), rounds=-1)
        with pytest.raises(ConfigurationError):
            sim.run(uniform_load(small_torus, 1), rounds=0).steady_state_imbalance(0.0)
