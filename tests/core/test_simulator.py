"""Unit tests for the simulation driver."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FirstOrderScheme,
    FixedRoundSwitch,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    point_load,
)


def _sos_process(topo, beta=1.6, rng=None):
    return LoadBalancingProcess(
        SecondOrderScheme(topo, beta=beta),
        rounding="randomized-excess",
        rng=rng or np.random.default_rng(0),
    )


class TestRun:
    def test_records_every_round(self, small_torus):
        sim = Simulator(_sos_process(small_torus))
        result = sim.run(point_load(small_torus, 6400), rounds=25)
        assert len(result.records) == 26  # round 0 included
        assert result.rounds.tolist() == list(range(26))
        assert result.final_state.round_index == 25

    def test_record_every_k(self, small_torus):
        sim = Simulator(_sos_process(small_torus), record_every=5)
        result = sim.run(point_load(small_torus, 6400), rounds=23)
        # rounds 0,5,10,15,20 plus the forced terminal record 23
        assert result.rounds.tolist() == [0, 5, 10, 15, 20, 23]

    def test_terminal_record_uses_final_step_values(self, small_torus):
        """Regression: the forced terminal record must report the *final*
        round's min_transient and round_traffic, not the previous record's
        (it used to copy round 20's values onto the round-23 row)."""
        load = point_load(small_torus, 6400)
        sparse = Simulator(_sos_process(small_torus), record_every=5).run(
            load, rounds=23
        )
        dense = Simulator(_sos_process(small_torus), record_every=1).run(
            load, rounds=23
        )
        assert sparse.rounds.tolist()[-1] == 23
        assert sparse.records[-1].min_transient == dense.records[23].min_transient
        assert sparse.records[-1].round_traffic == dense.records[23].round_traffic
        # the other metric columns agree as well (state-derived)
        for name in ("max_minus_avg", "max_local_diff", "total_load"):
            assert sparse.series(name)[-1] == dense.series(name)[23]

    def test_terminal_record_fix_holds_in_incremental_core(self, small_torus):
        """Regression (incremental core): driving start/advance/finish by
        hand — the path every engine adapter uses — must also put the final
        step's min_transient/round_traffic on the forced terminal record."""
        load = point_load(small_torus, 6400)
        sim = Simulator(_sos_process(small_torus), record_every=5)
        run = sim.start(load, rounds_hint=23)
        for _ in range(23):
            sim.advance(run)
        # the values the last executed step reported, captured pre-finish
        expect_transient = run.last_min_transient
        expect_traffic = run.last_traffic
        result = sim.finish(run)
        assert result.rounds.tolist()[-1] == 23
        assert result.records[-1].min_transient == expect_transient
        assert result.records[-1].round_traffic == expect_traffic
        dense = Simulator(_sos_process(small_torus), record_every=1).run(
            load, rounds=23
        )
        assert result.records[-1].min_transient == dense.records[23].min_transient
        assert result.records[-1].round_traffic == dense.records[23].round_traffic

    def test_terminal_record_fix_holds_in_every_engine(self, small_torus):
        """Regression (engine layer): a sparse-recorded run through each
        backend carries the final round's own transient/traffic on the
        forced terminal record, bit-identical to a densely recorded run."""
        from repro.engines import EngineConfig, make_engine

        load = point_load(small_torus, 6400)
        base = dict(scheme="sos", beta=1.6, rounding="nearest", seed=0)
        dense = make_engine("reference").run(
            small_torus, EngineConfig(rounds=23, record_every=1, **base), load
        )[0]
        for name in ("reference", "batched", "network"):
            sparse = make_engine(name).run(
                small_torus,
                EngineConfig(rounds=23, record_every=5, **base),
                load,
            )[0]
            assert sparse.rounds.tolist() == [0, 5, 10, 15, 20, 23], name
            for fieldname in ("min_transient", "round_traffic"):
                assert (
                    sparse.series(fieldname)[-1]
                    == dense.series(fieldname)[23]
                ), (name, fieldname)

    def test_series_extraction(self, small_torus):
        sim = Simulator(_sos_process(small_torus))
        result = sim.run(point_load(small_torus, 6400), rounds=10)
        series = result.series("max_minus_avg")
        assert series.shape == (11,)
        assert series[0] == pytest.approx(6400 - 100)

    def test_keep_loads(self, small_torus):
        sim = Simulator(_sos_process(small_torus), keep_loads=True)
        result = sim.run(point_load(small_torus, 6400), rounds=8)
        assert len(result.loads_history) == 9
        assert result.loads_history[0].sum() == 6400

    def test_metrics_monotone_for_continuous_fos(self, small_torus):
        proc = LoadBalancingProcess(FirstOrderScheme(small_torus))
        result = Simulator(proc).run(point_load(small_torus, 64.0), rounds=60)
        pot = result.series("potential_per_node")
        assert np.all(np.diff(pot) <= 1e-9)  # potential never increases (FOS)

    def test_stop_when(self, small_torus):
        sim = Simulator(_sos_process(small_torus))
        result = sim.run(
            point_load(small_torus, 6400),
            rounds=500,
            stop_when=lambda topo, st: st.load.max() - st.load.mean() <= 20,
        )
        assert result.stopped_at is not None
        assert result.stopped_at < 500
        assert result.records[-1].round_index == result.stopped_at

    def test_rejects_negative_rounds(self, small_torus):
        with pytest.raises(ConfigurationError):
            Simulator(_sos_process(small_torus)).run(
                point_load(small_torus, 10), rounds=-1
            )
        with pytest.raises(ConfigurationError):
            Simulator(_sos_process(small_torus), record_every=0)

    def test_zero_rounds(self, small_torus):
        result = Simulator(_sos_process(small_torus)).run(
            point_load(small_torus, 10), rounds=0
        )
        assert len(result.records) == 1

    def test_round_traffic_recorded(self, small_torus):
        result = Simulator(_sos_process(small_torus)).run(
            point_load(small_torus, 6400), rounds=20
        )
        traffic = result.series("round_traffic")
        assert traffic[0] == 0.0  # initial record, nothing moved yet
        assert traffic[1:].max() > 0.0
        # Traffic can never exceed what apply-all-edges could move: each
        # round's |flow| sum is bounded by the total load times max degree.
        assert traffic.max() <= 6400 * small_torus.max_degree

    def test_traffic_decays_as_system_balances(self, small_torus):
        result = Simulator(_sos_process(small_torus)).run(
            point_load(small_torus, 6400), rounds=200
        )
        traffic = result.series("round_traffic")
        assert traffic[-10:].mean() < traffic[1:11].mean()

    def test_total_load_column_constant(self, small_torus):
        result = Simulator(_sos_process(small_torus)).run(
            point_load(small_torus, 6400), rounds=40
        )
        totals = result.series("total_load")
        assert np.all(totals == 6400.0)


class TestSwitching:
    def test_fixed_round_switch_swaps_scheme(self, small_torus):
        proc = _sos_process(small_torus)
        sim = Simulator(proc, switch_policy=FixedRoundSwitch(10))
        result = sim.run(point_load(small_torus, 6400), rounds=30)
        assert result.switched_at == 10
        assert isinstance(proc.scheme, FirstOrderScheme)
        schemes = [r.scheme for r in result.records]
        assert schemes[5] == "SecondOrderScheme"
        assert schemes[-1] == "FirstOrderScheme"

    def test_switch_only_happens_once(self, small_torus):
        proc = _sos_process(small_torus)
        sim = Simulator(proc, switch_policy=FixedRoundSwitch(5))
        result = sim.run(point_load(small_torus, 6400), rounds=20)
        assert result.switched_at == 5

    def test_no_switch_for_fos_process(self, small_torus):
        proc = LoadBalancingProcess(
            FirstOrderScheme(small_torus), rounding="randomized-excess",
            rng=np.random.default_rng(0),
        )
        sim = Simulator(proc, switch_policy=FixedRoundSwitch(3))
        result = sim.run(point_load(small_torus, 6400), rounds=10)
        assert result.switched_at is None

    def test_hybrid_improves_plateau(self, small_torus):
        """The paper's headline: switching to FOS drops the residual."""
        load = point_load(small_torus, 1000 * small_torus.n)
        sos_only = Simulator(_sos_process(small_torus)).run(load, rounds=250)
        hybrid = Simulator(
            _sos_process(small_torus), switch_policy=FixedRoundSwitch(120)
        ).run(load, rounds=250)
        tail = slice(-40, None)
        sos_tail = sos_only.series("max_minus_avg")[tail].mean()
        hyb_tail = hybrid.series("max_minus_avg")[tail].mean()
        assert hyb_tail <= sos_tail + 1e-9

    def test_first_round_below(self, small_torus):
        result = Simulator(_sos_process(small_torus)).run(
            point_load(small_torus, 6400), rounds=200
        )
        r = result.first_round_below("max_minus_avg", 10.0)
        assert r is not None
        assert result.first_round_below("max_minus_avg", -1e9) is None
