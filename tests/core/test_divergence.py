"""Tests for the refined local divergence Upsilon_C(G)."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FirstOrderScheme,
    SecondOrderScheme,
    beta_opt,
    complete,
    cycle,
    cycle_lambda,
    divergence_term,
    refined_local_divergence,
    theory,
    torus_2d,
    torus_lambda,
)


class TestDivergenceTerm:
    def test_identity_term(self, tiny_cycle):
        # P = I: contribution of edge (i,j) on k is delta_ki - delta_kj;
        # max over neighbours of the square is 1 for k == i or k a neighbour.
        term = divergence_term(tiny_cycle, np.eye(tiny_cycle.n))
        # For a cycle: every k has contribution 1 from its own edges (k=i)
        # and 1 from each of its two neighbours' edges -> sum = 3.
        assert np.allclose(term, 3.0)

    def test_zero_matrix(self, tiny_cycle):
        term = divergence_term(tiny_cycle, np.zeros((8, 8)))
        assert np.all(term == 0.0)


class TestUpsilon:
    def test_complete_graph_converges_fast(self):
        # K_n balances in one continuous round; the series is tiny.
        topo = complete(6)
        scheme = FirstOrderScheme(topo)
        upsilon = refined_local_divergence(scheme)
        assert 1.0 <= upsilon < 3.0

    def test_fos_respects_theorem4_bound_shape(self):
        """Upsilon should be within a constant of sqrt(d/(1-lambda))."""
        for n in (8, 16, 32):
            topo = cycle(n)
            scheme = FirstOrderScheme(topo)
            upsilon = refined_local_divergence(scheme)
            lam = cycle_lambda(n)
            bound = theory.theorem4_upsilon(2, 1.0, lam, scale=4.0)
            assert upsilon <= bound, f"n={n}: {upsilon} > {bound}"

    def test_fos_grows_with_shrinking_gap(self):
        up_small = refined_local_divergence(FirstOrderScheme(cycle(8)))
        up_large = refined_local_divergence(FirstOrderScheme(cycle(24)))
        assert up_large > up_small

    def test_sos_respects_theorem9_bound_shape(self):
        topo = torus_2d(5, 5)
        lam = torus_lambda((5, 5))
        scheme = SecondOrderScheme(topo, beta=beta_opt(lam))
        upsilon = refined_local_divergence(scheme)
        bound = theory.theorem9_upsilon(4, 1.0, lam, scale=6.0)
        assert upsilon <= bound

    def test_per_node_vector(self, tiny_cycle):
        scheme = FirstOrderScheme(tiny_cycle)
        per_node = refined_local_divergence(scheme, return_per_node=True)
        assert per_node.shape == (tiny_cycle.n,)
        # Vertex-transitive graph: all nodes identical.
        assert np.allclose(per_node, per_node[0])
        assert refined_local_divergence(scheme) == pytest.approx(
            float(per_node.max())
        )

    def test_heterogeneous_case_runs(self, rng):
        topo = cycle(10)
        speeds = 1.0 + rng.integers(0, 3, topo.n).astype(float)
        scheme = FirstOrderScheme(topo, speeds=speeds)
        upsilon = refined_local_divergence(scheme)
        assert np.isfinite(upsilon) and upsilon > 0

    def test_unsupported_scheme_rejected(self, tiny_cycle):
        from repro import ContinuousScheme

        class Weird(ContinuousScheme):
            def scheduled_flows(self, state):
                return np.zeros(self.topo.m_edges)

        with pytest.raises(ConfigurationError):
            refined_local_divergence(Weird(tiny_cycle))

    def test_observation3_shape_for_uniform_alphas(self):
        """Observation 3: with alpha = 1/(gamma d) the divergence is
        O(sqrt(gamma d / (2 - 2/gamma))) — check the measured value sits
        within a small constant of that shape on a regular graph."""
        from repro import uniform_alpha

        gamma = 2.0
        topo = cycle(12)
        scheme = FirstOrderScheme(
            topo, alphas=lambda t, speeds=None: uniform_alpha(t, gamma=gamma)
        )
        upsilon = refined_local_divergence(scheme)
        bound = theory.observation3_upsilon(topo.max_degree, gamma, scale=3.0)
        assert upsilon <= bound

    def test_deviation_bound_via_theorem3(self, rng):
        """Empirical check of Theorem 3: randomized FOS deviation is within
        the Upsilon * sqrt(d log n) envelope (generous constant)."""
        from repro import LoadBalancingProcess, point_load, run_paired

        topo = torus_2d(4, 4)
        scheme = FirstOrderScheme(topo)
        upsilon = refined_local_divergence(scheme)
        bound = theory.theorem3_deviation(upsilon, 4, topo.n, scale=3.0)
        proc = LoadBalancingProcess(scheme, rounding="randomized-excess", rng=rng)
        paired = run_paired(proc, point_load(topo, 1600), rounds=100)
        assert paired.max_deviation_series().max() <= bound
