"""Unit tests for diffusion matrix construction."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    check_diffusion_matrix,
    complete,
    cycle,
    diffusion_matrix,
    diffusion_matrix_sparse,
    star,
    symmetrized_matrix,
    torus_2d,
    weighted_laplacian,
)
from tests.conftest import random_connected_graph


class TestHomogeneous:
    def test_torus_matrix_matches_paper_form(self):
        topo = torus_2d(3, 3)
        m = diffusion_matrix(topo)
        # alpha = 1/5 on every edge, diagonal 1 - 4/5 = 1/5.
        assert np.allclose(np.diag(m), 0.2)
        for u, v in topo.edges():
            assert m[u, v] == pytest.approx(0.2)
        ok, msg = check_diffusion_matrix(m)
        assert ok, msg

    def test_doubly_stochastic_and_symmetric(self, any_small_graph):
        m = diffusion_matrix(any_small_graph)
        assert np.allclose(m.sum(axis=0), 1.0)
        assert np.allclose(m.sum(axis=1), 1.0)
        assert np.allclose(m, m.T)
        assert m.min() >= 0.0

    def test_preserves_uniform_vector(self, any_small_graph):
        m = diffusion_matrix(any_small_graph)
        ones = np.ones(any_small_graph.n)
        assert np.allclose(m @ ones, ones)


class TestHeterogeneous:
    def test_column_stochastic_nonnegative(self, rng):
        topo = random_connected_graph(rng, 20, extra_edges=15)
        speeds = 1.0 + 5.0 * rng.random(topo.n)
        m = diffusion_matrix(topo, speeds)
        assert np.allclose(m.sum(axis=0), 1.0)
        assert m.min() >= 0.0

    def test_speed_vector_is_fixed_point(self, rng):
        topo = star(8)
        speeds = 1.0 + rng.integers(0, 5, topo.n).astype(float)
        m = diffusion_matrix(topo, speeds)
        assert np.allclose(m @ speeds, speeds)

    def test_check_catches_bad_matrix(self):
        m = np.array([[0.5, 0.6], [0.5, 0.5]])
        ok, msg = check_diffusion_matrix(m)
        assert not ok
        assert "column" in msg

    def test_check_catches_negative_entry(self):
        m = np.array([[1.2, -0.2], [-0.2, 1.2]])
        ok, msg = check_diffusion_matrix(m)
        assert not ok

    def test_check_catches_asymmetric_homogeneous(self):
        m = np.array([[0.7, 0.5], [0.3, 0.5]])
        ok, msg = check_diffusion_matrix(m)
        assert not ok


class TestRepresentations:
    def test_sparse_matches_dense(self, rng):
        topo = torus_2d(4, 5)
        speeds = 1.0 + rng.random(topo.n)
        dense = diffusion_matrix(topo, speeds)
        sparse = diffusion_matrix_sparse(topo, speeds).toarray()
        assert np.allclose(dense, sparse)

    def test_symmetrized_is_symmetric_with_same_spectrum(self, rng):
        topo = cycle(8)
        speeds = 1.0 + 3.0 * rng.random(topo.n)
        m = diffusion_matrix(topo, speeds)
        sym, sqrt_s = symmetrized_matrix(topo, speeds)
        assert np.allclose(sym, sym.T)
        ev_m = np.sort(np.linalg.eigvals(m).real)
        ev_sym = np.sort(np.linalg.eigvalsh(sym))
        assert np.allclose(ev_m, ev_sym, atol=1e-8)

    def test_symmetrized_sparse_matches_dense(self, rng):
        topo = torus_2d(3, 4)
        speeds = 1.0 + rng.random(topo.n)
        dense, _ = symmetrized_matrix(topo, speeds)
        sparse, _ = symmetrized_matrix(topo, speeds, sparse=True)
        assert np.allclose(dense, sparse.toarray())

    def test_weighted_laplacian_shape_check(self):
        topo = cycle(5)
        with pytest.raises(ConfigurationError):
            weighted_laplacian(topo, np.ones(3))

    def test_laplacian_psd(self):
        topo = complete(5)
        lap = weighted_laplacian(topo, np.full(topo.m_edges, 0.2))
        assert np.linalg.eigvalsh(lap).min() >= -1e-12
