"""Tests for the deviation machinery — Lemma 2 as an exact identity.

These are the most important correctness tests of the reproduction: Lemma 2
is not asymptotic, it is an equality, so for *every* rounding scheme and
*every* linear process the recorded deviation must match the error-weighted
contribution sum to float precision.
"""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    contribution_matrices,
    cycle,
    diffusion_matrix,
    edge_contributions,
    lemma2_rhs,
    point_load,
    q_matrix_at,
    run_paired,
    torus_2d,
)
from tests.conftest import random_connected_graph

ROUNDINGS = ["floor", "nearest", "ceil", "unbiased-edge", "randomized-excess"]


class TestContributionMatrices:
    def test_fos_series_is_shifted_powers(self, tiny_cycle):
        scheme = FirstOrderScheme(tiny_cycle)
        m = diffusion_matrix(tiny_cycle)
        mats = contribution_matrices(scheme, 4)
        assert np.allclose(mats[1], np.eye(tiny_cycle.n))
        assert np.allclose(mats[2], m)
        assert np.allclose(mats[3], m @ m)

    def test_sos_series_is_shifted_q(self, tiny_cycle):
        beta = 1.5
        scheme = SecondOrderScheme(tiny_cycle, beta=beta)
        m = diffusion_matrix(tiny_cycle)
        mats = contribution_matrices(scheme, 4)
        assert np.allclose(mats[0], 0.0)
        assert np.allclose(mats[1], np.eye(tiny_cycle.n))
        assert np.allclose(mats[2], q_matrix_at(m, beta, 1))
        assert np.allclose(mats[3], q_matrix_at(m, beta, 2))

    def test_edge_contributions_shape(self, tiny_cycle):
        scheme = FirstOrderScheme(tiny_cycle)
        mats = contribution_matrices(scheme, 2)
        contrib = edge_contributions(tiny_cycle, mats[1])
        assert contrib.shape == (tiny_cycle.n, tiny_cycle.m_edges)

    def test_rejects_negative_t(self, tiny_cycle):
        with pytest.raises(ConfigurationError):
            contribution_matrices(FirstOrderScheme(tiny_cycle), -1)


class TestLemma6:
    """Lemma 6: SOS contributions are Q(t-1) column differences.

    Verified against a brute-force simulation of Definition 5: start two
    SOS runs from the unit vector at i, one with y'_{i,j}(0) = 1, and
    compare the load difference at node k.
    """

    def test_contributions_match_brute_force(self):
        topo = cycle(6)
        beta = 1.4
        scheme = SecondOrderScheme(topo, beta=beta)
        t_max = 6
        mats = contribution_matrices(scheme, t_max)
        # Pick the edge (i, j) = first edge of the cycle.
        edge = 0
        i, j = int(topo.edge_u[edge]), int(topo.edge_v[edge])

        from repro import LoadState, apply_flows

        def evolve(load0, flows0, rounds):
            state = LoadState(
                load=np.asarray(load0, dtype=float),
                flows=np.asarray(flows0, dtype=float),
                round_index=1,  # Definition 5 starts the dynamics at x(1)
            )
            for _ in range(rounds):
                f = scheme.scheduled_flows(state)
                state = state.advanced(apply_flows(topo, state.load, f), f)
            return state.load

        x0 = np.zeros(topo.n)
        x0[i] = 1.0
        x_prime0 = np.zeros(topo.n)
        x_prime0[j] = 1.0
        y0 = np.zeros(topo.m_edges)
        y_prime0 = np.zeros(topo.m_edges)
        y_prime0[edge] = 1.0  # i shipped one token to j in round 0

        for s in range(1, t_max + 1):
            x = evolve(x0, y0, s - 1)
            x_prime = evolve(x_prime0, y_prime0, s - 1)
            brute = x - x_prime
            closed = mats[s][:, i] - mats[s][:, j]
            assert np.allclose(brute, closed, atol=1e-10), f"s={s}"


class TestLemma2Identity:
    @pytest.mark.parametrize("rounding", ROUNDINGS)
    def test_fos_exact(self, rounding, rng):
        topo = torus_2d(4, 4)
        scheme = FirstOrderScheme(topo)
        proc = LoadBalancingProcess(scheme, rounding=rounding, rng=rng)
        paired = run_paired(proc, point_load(topo, 500), rounds=12)
        mats = contribution_matrices(scheme, 12)
        for t in (1, 5, 12):
            lhs = paired.deviation(t)
            rhs = lemma2_rhs(topo, mats, paired.errors, t)
            assert np.abs(lhs - rhs).max() < 1e-9, f"t={t}"

    @pytest.mark.parametrize("rounding", ROUNDINGS)
    def test_sos_exact(self, rounding, rng):
        topo = torus_2d(4, 4)
        scheme = SecondOrderScheme(topo, beta=1.7)
        proc = LoadBalancingProcess(scheme, rounding=rounding, rng=rng)
        paired = run_paired(proc, point_load(topo, 500), rounds=12)
        mats = contribution_matrices(scheme, 12)
        for t in (1, 5, 12):
            lhs = paired.deviation(t)
            rhs = lemma2_rhs(topo, mats, paired.errors, t)
            assert np.abs(lhs - rhs).max() < 1e-9, f"t={t}"

    def test_heterogeneous_sos_exact(self, rng):
        topo = random_connected_graph(rng, 12, extra_edges=8)
        speeds = 1.0 + rng.integers(0, 4, topo.n).astype(float)
        scheme = SecondOrderScheme(topo, beta=1.5, speeds=speeds)
        proc = LoadBalancingProcess(scheme, rounding="randomized-excess", rng=rng)
        paired = run_paired(proc, point_load(topo, 300), rounds=10)
        mats = contribution_matrices(scheme, 10)
        lhs = paired.deviation(10)
        rhs = lemma2_rhs(topo, mats, paired.errors, 10)
        assert np.abs(lhs - rhs).max() < 1e-9

    def test_identity_rounding_zero_deviation(self, tiny_cycle):
        scheme = SecondOrderScheme(tiny_cycle, beta=1.5)
        proc = LoadBalancingProcess(scheme)  # identity rounding
        paired = run_paired(proc, point_load(tiny_cycle, 100), rounds=8)
        assert paired.max_deviation_series().max() < 1e-9
        assert all(np.abs(e).max() < 1e-12 for e in paired.errors)

    def test_lemma2_rhs_input_validation(self, tiny_cycle):
        scheme = FirstOrderScheme(tiny_cycle)
        mats = contribution_matrices(scheme, 3)
        with pytest.raises(ConfigurationError):
            lemma2_rhs(tiny_cycle, mats, [np.zeros(tiny_cycle.m_edges)] * 2, t=5)


class TestPairedRun:
    def test_round_counts(self, tiny_cycle, rng):
        proc = LoadBalancingProcess(
            FirstOrderScheme(tiny_cycle), rounding="floor", rng=rng
        )
        paired = run_paired(proc, point_load(tiny_cycle, 100), rounds=7)
        assert paired.rounds == 7
        assert len(paired.discrete_loads) == 8
        assert len(paired.continuous_loads) == 8

    def test_rejects_negative_rounds(self, tiny_cycle):
        proc = LoadBalancingProcess(FirstOrderScheme(tiny_cycle))
        with pytest.raises(ConfigurationError):
            run_paired(proc, point_load(tiny_cycle, 10), rounds=-1)

    def test_deviation_stays_below_theorem8_bound(self, rng):
        """Theorem 8 sanity: floor/ceil SOS deviation obeys the O-bound."""
        from repro import second_largest_eigenvalue, theory

        topo = torus_2d(5, 5)
        lam = second_largest_eigenvalue(topo)
        from repro import beta_opt

        scheme = SecondOrderScheme(topo, beta=beta_opt(lam))
        proc = LoadBalancingProcess(scheme, rounding="nearest", rng=rng)
        paired = run_paired(proc, point_load(topo, 25000), rounds=120)
        bound = theory.theorem8_deviation(
            max_degree=4, n=topo.n, smax=1.0, lam=lam, scale=16 * np.sqrt(2)
        )
        assert paired.max_deviation_series().max() <= bound
