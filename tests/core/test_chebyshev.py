"""Tests for the Chebyshev semi-iterative scheme."""

import numpy as np
import pytest

from repro import (
    ChebyshevScheme,
    LoadBalancingProcess,
    LoadState,
    SchemeError,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    chebyshev_omegas,
    cycle,
    cycle_lambda,
    point_load,
    torus_2d,
    torus_lambda,
)


class TestOmegaSequence:
    def test_base_cases(self):
        lam = 0.9
        omegas = chebyshev_omegas(lam, 3)
        assert omegas[0] == 1.0
        assert omegas[1] == pytest.approx(2.0 / (2.0 - lam * lam))
        assert omegas[2] == pytest.approx(
            1.0 / (1.0 - lam * lam * omegas[1] / 4.0)
        )

    def test_convergence_to_beta_opt(self):
        lam = 0.99
        omegas = chebyshev_omegas(lam, 200)
        # After the initial jump the sequence decreases monotonically from
        # 2/(2-lam^2) down to the fixed point beta_opt.
        tail = omegas[1:]
        assert all(b <= a + 1e-12 for a, b in zip(tail, tail[1:]))
        assert tail[0] > beta_opt(lam)
        assert omegas[-1] == pytest.approx(beta_opt(lam), abs=1e-9)

    def test_lambda_zero_stays_one(self):
        assert chebyshev_omegas(0.0, 5) == [1.0] * 5

    def test_validation(self):
        with pytest.raises(SchemeError):
            chebyshev_omegas(1.0, 5)
        with pytest.raises(SchemeError):
            chebyshev_omegas(0.5, 0)


class TestScheme:
    def test_first_round_is_fos(self, small_torus):
        lam = torus_lambda((8, 8))
        cheb = ChebyshevScheme(small_torus, lam)
        from repro import FirstOrderScheme

        fos = FirstOrderScheme(small_torus)
        state = LoadState.initial(small_torus, point_load(small_torus, 100.0))
        assert np.allclose(
            cheb.scheduled_flows(state), fos.scheduled_flows(state)
        )

    def test_omega_accessor_matches_sequence(self, small_torus):
        lam = 0.95
        cheb = ChebyshevScheme(small_torus, lam)
        omegas = chebyshev_omegas(lam, 10)
        for t in range(10):
            assert cheb.omega(t) == pytest.approx(omegas[t])
        with pytest.raises(SchemeError):
            cheb.omega(-1)

    def test_flow_recursion_uses_round_omega(self):
        topo = cycle(4)
        lam = cycle_lambda(4) if False else 0.9
        cheb = ChebyshevScheme(topo, lam)
        load = np.array([6.0, 0.0, 3.0, 0.0])
        prev = np.full(topo.m_edges, 0.25)
        state = LoadState(load=load, flows=prev, round_index=2)
        flows = cheb.scheduled_flows(state)
        omega = cheb.omega(2)
        k = topo.edge_id(0, 1)
        expected = (omega - 1.0) * 0.25 + omega * (6.0 - 0.0) / 3.0
        assert flows[k] == pytest.approx(expected)

    def test_converges_no_slower_than_sos(self):
        """Chebyshev's transient is optimal: it reaches the threshold no
        later than fixed-beta SOS (up to rounding noise)."""
        topo = torus_2d(16, 16)
        lam = torus_lambda((16, 16))
        load = point_load(topo, 1000 * topo.n)

        def rounds_to(scheme, seed):
            proc = LoadBalancingProcess(
                scheme, rounding="randomized-excess",
                rng=np.random.default_rng(seed),
            )
            result = Simulator(proc).run(load, 500)
            return result.first_round_below("max_minus_avg", 10.0)

        cheb_rounds = rounds_to(ChebyshevScheme(topo, lam), 0)
        sos_rounds = rounds_to(SecondOrderScheme(topo, beta=beta_opt(lam)), 0)
        assert cheb_rounds is not None and sos_rounds is not None
        assert cheb_rounds <= sos_rounds + 10

    def test_continuous_converges_to_average(self, small_torus):
        lam = torus_lambda((8, 8))
        proc = LoadBalancingProcess(ChebyshevScheme(small_torus, lam))
        state = proc.run(point_load(small_torus, 64.0), rounds=400)
        assert np.allclose(state.load, 1.0, atol=1e-6)

    def test_conserves_load_discrete(self, small_torus, rng):
        lam = torus_lambda((8, 8))
        proc = LoadBalancingProcess(
            ChebyshevScheme(small_torus, lam),
            rounding="randomized-excess",
            rng=rng,
        )
        state = proc.run(point_load(small_torus, 6400), rounds=60)
        assert state.total_load == 6400
        assert np.allclose(state.load, np.round(state.load))

    def test_validation(self, small_torus):
        with pytest.raises(SchemeError):
            ChebyshevScheme(small_torus, 1.0)
