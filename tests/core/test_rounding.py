"""Unit and property tests for the rounding schemes (Section III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CeilRounding,
    FloorRounding,
    IdentityRounding,
    NearestRounding,
    RandomizedExcessRounding,
    RoundingError,
    UnbiasedEdgeRounding,
    cycle,
    make_rounding,
    star,
    torus_2d,
)

ALL_KEYS = ["identity", "floor", "nearest", "ceil", "unbiased-edge", "randomized-excess"]
DISCRETE_KEYS = [k for k in ALL_KEYS if k != "identity"]


def _random_flows(rng, topo, scale=5.0):
    return rng.normal(scale=scale, size=topo.m_edges)


class TestFactory:
    def test_known_keys(self):
        for key in ALL_KEYS:
            scheme = make_rounding(key)
            assert scheme.key == key

    def test_passthrough_instance(self):
        inst = FloorRounding()
        assert make_rounding(inst) is inst

    def test_unknown_key(self):
        with pytest.raises(RoundingError):
            make_rounding("bogus")
        with pytest.raises(RoundingError):
            make_rounding(42)


class TestDeterministicSchemes:
    def test_identity_returns_input(self, rng):
        topo = cycle(6)
        flows = _random_flows(rng, topo)
        assert np.allclose(IdentityRounding().round_flows(topo, flows), flows)

    def test_floor_truncates_toward_zero(self):
        topo = cycle(3)
        flows = np.array([1.7, -1.7, 0.3])
        out = FloorRounding().round_flows(topo, flows)
        assert out.tolist() == [1.0, -1.0, 0.0]

    def test_ceil_rounds_magnitude_up(self):
        topo = cycle(3)
        flows = np.array([1.2, -1.2, 0.0])
        out = CeilRounding().round_flows(topo, flows)
        assert out.tolist() == [2.0, -2.0, 0.0]

    def test_nearest(self):
        topo = cycle(3)
        flows = np.array([1.6, -1.6, 0.4])
        out = NearestRounding().round_flows(topo, flows)
        assert out.tolist() == [2.0, -2.0, 0.0]


class TestErrorBounds:
    FLOOR_OR_CEIL_KEYS = ["floor", "nearest", "ceil", "unbiased-edge"]

    @pytest.mark.parametrize("key", FLOOR_OR_CEIL_KEYS)
    def test_error_below_one_and_integral(self, key, rng):
        topo = torus_2d(5, 5)
        scheme = make_rounding(key)
        for _ in range(20):
            flows = _random_flows(rng, topo)
            out = scheme.round_flows(topo, flows, rng)
            assert np.allclose(out, np.round(out)), key
            assert np.abs(flows - out).max() < 1.0 + 1e-9, key

    def test_excess_scheme_error_bounds(self, rng):
        """The paper's scheme: never under-sends by a full token; a node's
        over-send on one edge is bounded by its excess budget ceil(r) <= d."""
        topo = torus_2d(5, 5)
        scheme = make_rounding("randomized-excess")
        d = topo.max_degree
        for _ in range(20):
            flows = _random_flows(rng, topo)
            out = scheme.round_flows(topo, flows, rng)
            assert np.allclose(out, np.round(out))
            err = flows - out
            # Under-sending (out magnitude below scheduled): error toward the
            # flow's own sign, strictly below one token.
            assert (err * np.sign(flows)).max() < 1.0 + 1e-9
            # Over-sending bounded by the sender's excess budget.
            assert (-err * np.sign(flows)).max() <= d + 1e-9

    @pytest.mark.parametrize("key", DISCRETE_KEYS)
    def test_integral_flows_unchanged(self, key, rng):
        topo = cycle(8)
        flows = np.array([3.0, -2.0, 0.0, 1.0, -5.0, 4.0, 2.0, -1.0])
        out = make_rounding(key).round_flows(topo, flows, rng)
        assert np.allclose(out, flows), key


class TestRandomizedExcess:
    def test_unbiasedness(self, rng):
        """E[rounded] must equal the continuous flow (Observation 1.2)."""
        topo = star(6)  # hub 0 with 5 leaves
        flows = np.array([0.3, 0.7, 1.4, 0.1, 2.5])  # all outgoing from hub
        scheme = RandomizedExcessRounding()
        trials = 4000
        acc = np.zeros_like(flows)
        for _ in range(trials):
            acc += scheme.round_flows(topo, flows, rng)
        mean = acc / trials
        assert np.allclose(mean, flows, atol=0.05)

    def test_excess_token_budget_per_node(self, rng):
        """A node never sends more than floor + ceil(r) extra tokens total."""
        topo = star(9)
        scheme = RandomizedExcessRounding()
        for _ in range(50):
            flows = rng.random(topo.m_edges) * 2.0  # hub sends on all edges
            out = scheme.round_flows(topo, flows, rng)
            extra = out - np.floor(flows)
            r = np.sum(flows - np.floor(flows))
            assert extra.sum() <= np.ceil(r) + 1e-9
            assert extra.min() >= -1e-9

    def test_negative_flows_round_on_sender_side(self, rng):
        topo = cycle(4)
        flows = np.array([-0.5, -0.5, -0.5, -0.5])
        scheme = RandomizedExcessRounding()
        out = scheme.round_flows(topo, flows, rng)
        assert np.all(out <= 0.0)
        assert np.all(out >= -1.0)

    def test_mixed_senders(self, rng):
        """Each node's excess budget applies to its own outgoing edges only."""
        topo = cycle(6)
        scheme = RandomizedExcessRounding()
        for _ in range(200):
            flows = rng.normal(scale=0.7, size=topo.m_edges)
            out = scheme.round_flows(topo, flows, rng)
            # Antisymmetry is structural; verify the scheme's error bounds:
            # under-send < 1 token, over-send <= excess budget (degree).
            err = flows - out
            assert (err * np.sign(flows)).max(initial=0.0) < 1.0
            assert (-err * np.sign(flows)).max(initial=0.0) <= topo.max_degree
            assert np.allclose(out, np.round(out))

    def test_float_fuzz_near_integers(self, rng):
        topo = cycle(4)
        flows = np.array([2.0 - 1e-12, -3.0 + 1e-12, 1e-12, 5.0])
        out = RandomizedExcessRounding().round_flows(topo, flows, rng)
        assert out.tolist() == [2.0, -3.0, 0.0, 5.0]

    def test_zero_flows(self, rng):
        topo = cycle(4)
        out = RandomizedExcessRounding().round_flows(topo, np.zeros(4), rng)
        assert np.all(out == 0.0)


class TestUnbiasedEdge:
    def test_unbiasedness(self, rng):
        topo = cycle(4)
        flows = np.array([0.25, -0.75, 1.5, -2.1])
        scheme = UnbiasedEdgeRounding()
        acc = np.zeros_like(flows)
        trials = 4000
        for _ in range(trials):
            acc += scheme.round_flows(topo, flows, rng)
        assert np.allclose(acc / trials, flows, atol=0.06)


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    key=st.sampled_from(DISCRETE_KEYS),
)
def test_property_rounding_is_integral_and_bounded(data, key):
    """Property: every discrete scheme yields integral flows with errors
    bounded by the scheme's guarantee (|e| < 1 for floor-or-ceil schemes,
    under-send < 1 and over-send <= degree for the excess-token scheme)."""
    topo = cycle(8)
    flows = np.asarray(
        data.draw(
            st.lists(
                st.floats(min_value=-50, max_value=50, allow_nan=False),
                min_size=topo.m_edges,
                max_size=topo.m_edges,
            )
        )
    )
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    out = make_rounding(key).round_flows(topo, flows, rng)
    assert np.allclose(out, np.round(out))
    err = flows - out
    if key == "randomized-excess":
        assert (err * np.sign(flows)).max(initial=0.0) < 1.0 + 1e-6
        assert (-err * np.sign(flows)).max(initial=0.0) <= topo.max_degree + 1e-6
    else:
        assert np.abs(err).max() < 1.0 + 1e-6
