"""Unit tests for the churn subsystem (schedules, plans, load surgery)."""

import numpy as np
import pytest

from repro.core.churn import (
    CHURN_STREAM_KEY,
    ChurnSchedule,
    RandomChurn,
    apply_handoffs,
    edge_add,
    edge_remove,
    masked_dynamic_values,
    masked_static_values,
    node_crash,
    node_join,
    node_leave,
    parse_churn_spec,
    plan_churn,
    random_churn_schedule,
    remap_flows,
)
from repro.exceptions import ConfigurationError
from repro.graphs import torus_2d
from repro.graphs.topology import Topology


def path(n):
    return Topology(n, [(i, i + 1) for i in range(n - 1)], name=f"path{n}")


class TestEventConstructors:
    def test_rounds_start_at_one(self):
        with pytest.raises(ConfigurationError, match="round 1 on"):
            node_crash(0, 0)

    def test_recover_must_follow_crash(self):
        with pytest.raises(ConfigurationError, match="recover_at"):
            node_crash(0, 5, recover_at=5)

    def test_self_loop_edge_rejected(self):
        with pytest.raises(ConfigurationError, match="self loop"):
            edge_add(3, 3, 1)

    def test_join_needs_attach(self):
        with pytest.raises(ConfigurationError, match="attach"):
            node_join(4, 1, [])

    def test_schedule_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="policy"):
            ChurnSchedule(events=[node_crash(0, 1)], policy="explode")

    def test_schedule_rejects_non_events(self):
        with pytest.raises(ConfigurationError, match="ChurnEvent"):
            ChurnSchedule(events=["crash"], policy="handoff")


class TestPlanValidation:
    def test_disconnect_rejected(self):
        # Removing the middle edge of a path splits the live graph.
        with pytest.raises(ConfigurationError, match="disconnects"):
            plan_churn(
                path(4),
                ChurnSchedule(events=[edge_remove(1, 2, 3)]),
            )

    def test_crash_without_live_neighbour_rejected(self):
        # Node 0's only neighbour (1) is already dead when 0 crashes, so
        # its tokens have nowhere to go.
        topo = path(3)
        with pytest.raises(ConfigurationError, match="no live neighbour"):
            plan_churn(
                topo,
                ChurnSchedule(
                    events=[node_crash(1, 1), node_crash(0, 1)]
                ),
            )

    def test_freeze_without_recover_rejected(self):
        with pytest.raises(ConfigurationError, match="recover_at"):
            plan_churn(
                torus_2d(3, 3),
                ChurnSchedule(events=[node_crash(0, 1)], policy="freeze"),
            )

    def test_join_ids_must_be_contiguous(self):
        with pytest.raises(ConfigurationError, match="contiguous"):
            plan_churn(
                torus_2d(3, 3),
                ChurnSchedule(events=[node_join(11, 1, [0])]),
            )

    def test_double_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="not active"):
            plan_churn(
                torus_2d(3, 3),
                ChurnSchedule(
                    events=[
                        node_crash(0, 1, recover_at=9),
                        node_crash(0, 2, recover_at=9),
                    ]
                ),
            )

    def test_edge_add_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already present"):
            plan_churn(
                torus_2d(3, 3),
                ChurnSchedule(events=[edge_add(0, 1, 1)]),
            )

    def test_edge_remove_missing_rejected(self):
        with pytest.raises(ConfigurationError, match="not present"):
            plan_churn(
                torus_2d(3, 3),
                ChurnSchedule(events=[edge_remove(0, 8, 1)]),
            )

    def test_universe_and_patch_shapes(self):
        topo = torus_2d(3, 3)
        plan = plan_churn(
            topo,
            ChurnSchedule(
                events=[
                    node_crash(4, 2, recover_at=5),
                    node_join(9, 3, [0, 8]),
                ]
            ),
        )
        assert plan.n_base == 9
        assert plan.n_univ == 10
        assert plan.topo0.n == 10
        # Node 9 is not yet born at round 0.
        assert plan.active0.sum() == 9
        p2 = plan.patch_at(2)
        assert p2.n_active == 8 and not p2.active[4]
        p3 = plan.patch_at(3)
        assert p3.n_active == 9 and p3.active[9] and not p3.active[4]
        p5 = plan.patch_at(5)
        assert p5.n_active == 10
        assert plan.patch_at(4) is None

    def test_leave_is_permanent(self):
        topo = torus_2d(3, 3)
        plan = plan_churn(topo, ChurnSchedule(events=[node_leave(4, 2)]))
        patch = plan.patch_at(2)
        # All of node 4's edges are gone from the live topology for good.
        assert 4 not in set(patch.topo.edge_u) | set(patch.topo.edge_v)
        assert patch.handoffs and patch.handoffs[0][0] == 4

    def test_expand_load_pads_joins_with_zero(self):
        topo = torus_2d(3, 3)
        plan = plan_churn(
            topo, ChurnSchedule(events=[node_join(9, 1, [0])])
        )
        load = plan.expand_load(np.arange(9, dtype=np.float64))
        assert load.shape == (10,)
        assert load[9] == 0.0


class TestLoadSurgery:
    def test_handoff_floor_share_arithmetic(self):
        load = np.array([10.0, 0.0, 0.0, 0.0])
        apply_handoffs(load, [(0, [1, 2, 3])])
        # floor(10/3) = 3 to the first two receivers, remainder to the last.
        assert load.tolist() == [0.0, 3.0, 3.0, 4.0]

    def test_handoff_conserves_fractional_loads(self):
        rng = np.random.default_rng(0)
        load = rng.random(6) * 13
        total = load.sum()
        apply_handoffs(load, [(2, [0, 1]), (5, [3])])
        assert load[2] == 0.0 and load[5] == 0.0
        assert np.isclose(load.sum(), total)

    def test_handoff_on_batch_planes(self):
        load = np.array([[9.0, 7.0], [1.0, 1.0], [0.0, 0.0]])
        apply_handoffs(load, [(0, [1, 2])])
        assert load[0].tolist() == [0.0, 0.0]
        assert load[1].tolist() == [5.0, 4.0]
        assert load[2].tolist() == [5.0, 4.0]

    def test_remap_flows_zero_fills_new_edges(self):
        flows = np.array([1.0, 2.0, 3.0])
        out = remap_flows(flows, np.array([2, -1, 0, 1]))
        assert out.tolist() == [3.0, 0.0, 1.0, 2.0]

    def test_masked_values_ignore_inactive(self):
        topo = path(4)
        load = np.array([1.0, 5.0, 3.0, 100.0])
        active_idx = np.array([0, 1, 2])
        vals = masked_static_values(topo, load, active_idx)
        avg = (1.0 + 5.0 + 3.0) / 3.0
        assert vals["max_minus_avg"] == 5.0 - avg
        assert vals["min_load"] == 1.0
        # total_load deliberately sums the whole plane (conservation check
        # must see frozen tokens on dead nodes too).
        assert vals["total_load"] == 109.0
        dyn = masked_dynamic_values(topo, load, active_idx)
        assert dyn["max_minus_avg"] == 5.0 - avg
        assert dyn["total_load"] == 109.0


class TestSpecParser:
    def test_full_grammar(self):
        sched = parse_churn_spec(
            "crash:4@2-7; leave:3@5; join:9@4:0+8; edge-:0-1@3; "
            "edge+:2-7@6; policy:freeze"
        )
        kinds = [ev.kind for ev in sched.events]
        assert kinds == [
            "node_crash", "node_leave", "node_join", "edge_remove",
            "edge_add",
        ]
        assert sched.policy == "freeze"
        assert sched.events[0].recover_at == 7
        assert sched.events[2].attach == (0, 8)

    def test_random_spec(self):
        churn = parse_churn_spec("random:0.25")
        assert isinstance(churn, RandomChurn)
        assert churn.rate == 0.25

    def test_unknown_term_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown churn term"):
            parse_churn_spec("explode:1@2")

    def test_malformed_event_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_churn_spec("crash:4")


class TestRandomChurn:
    def test_deterministic_for_seed(self):
        topo = torus_2d(4, 4)
        a = random_churn_schedule(topo, 0.5, 20, seed=3)
        b = random_churn_schedule(topo, 0.5, 20, seed=3)
        assert a == b

    def test_seed_changes_schedule(self):
        topo = torus_2d(4, 4)
        a = random_churn_schedule(topo, 0.5, 40, seed=3)
        b = random_churn_schedule(topo, 0.5, 40, seed=4)
        assert a != b

    def test_schedule_always_compiles(self):
        topo = torus_2d(4, 4)
        for seed in range(5):
            sched = random_churn_schedule(topo, 0.8, 25, seed=seed)
            plan = plan_churn(topo, sched)
            assert plan.n_univ == topo.n  # random churn never joins

    def test_stream_key_disjoint_from_node_streams(self):
        assert CHURN_STREAM_KEY > 10**9
