"""Statistical tests for the stochastic kernels, at fixed seeds.

Two kernels carry the dynamic/stochastic machinery and are checked against
their *target distributions* (not just for conservation):

* the batched engine's sort-free multinomial excess-token rounding — by
  Observation 1 each of a sender's ``c = ceil(r)`` excess tokens lands on
  outgoing edge ``j`` with probability ``{Yhat_j} / c`` and stays home
  otherwise, so the per-edge counts over many trials form a multinomial
  whose cell probabilities are the fractional flow parts.  A chi-square
  test at a fixed seed verifies the routing probabilities, and the sample
  mean verifies unbiasedness (``E[act] == sched``);
* ``PoissonArrivals`` sampling — moments and a binned chi-square against
  the Poisson pmf.

All draws use fixed seeds, so these tests are deterministic; the acceptance
thresholds are the 99.9% chi-square quantiles (they would flag a broken
kernel, not an unlucky stream).
"""

import numpy as np
import pytest
from scipy import stats

from repro import PoissonArrivals, arrival_stream, star, torus_2d, uniform_load
from repro.engines import EngineConfig
from repro.engines.batched import BatchedVectorEngine


# ----------------------------------------------------------------------
# sort-free multinomial excess-token rounding (batched engine kernel)
# ----------------------------------------------------------------------
def _excess_handle(seed=13):
    """A batched handle on the 5-node star: node 0 sends on all 4 edges."""
    topo = star(5)
    engine = BatchedVectorEngine()
    config = EngineConfig(
        scheme="sos", beta=1.5, rounding="randomized-excess", rounds=1,
        seed=seed,
    )
    handle = engine.prepare(topo, config, uniform_load(topo, 10))
    return engine, handle


def test_excess_rounding_multinomial_chisquare():
    """Token routing matches the multinomial target: edge j with
    probability f_j / c, staying home with 1 - r / c."""
    engine, handle = _excess_handle()
    fracs = np.array([0.7, 0.6, 0.5, 0.4])  # surplus r = 2.2 -> c = 3
    r = fracs.sum()
    c = float(np.ceil(r))
    sched = np.empty((4, 1))
    trials = 4000
    edge_tokens = np.zeros(4)
    for _ in range(trials):
        sched[:, 0] = fracs
        act = engine._round_flows(handle, sched)
        counts = act[:, 0]
        assert np.all(counts >= 0.0) and np.all(counts == np.round(counts))
        assert counts.sum() <= c
        edge_tokens += counts
    total = trials * c
    observed = np.append(edge_tokens, total - edge_tokens.sum())
    probs = np.append(fracs / c, 1.0 - r / c)
    expected = total * probs
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    # df = 5 categories - 1; 99.9% quantile
    assert chi2 < stats.chi2.ppf(0.999, df=4), (chi2, observed, expected)
    # Unbiasedness (Observation 1): the mean actual flow is the schedule.
    mean_act = edge_tokens / trials
    sigma = np.sqrt(probs[:4] * (1 - probs[:4]) * c / trials)
    assert np.all(np.abs(mean_act - fracs) < 5.0 * sigma)


def test_excess_rounding_zero_surplus_sends_nothing():
    engine, handle = _excess_handle()
    sched = np.full((4, 1), 2.0)  # integral flows: no fractional surplus
    act = engine._round_flows(handle, sched)
    np.testing.assert_array_equal(act[:, 0], sched[:, 0])


def test_excess_rounding_single_edge_is_bernoulli():
    """One outgoing fraction f: the token moves with probability exactly f."""
    engine, handle = _excess_handle(seed=29)
    f = 0.3
    sched = np.zeros((4, 1))
    trials = 5000
    moved = 0
    for _ in range(trials):
        sched[0, 0] = f
        sched[1:, 0] = 0.0
        act = engine._round_flows(handle, sched)
        assert act[0, 0] in (0.0, 1.0)
        assert np.all(act[1:, 0] == 0.0)
        moved += int(act[0, 0])
    sigma = np.sqrt(f * (1 - f) / trials)
    assert abs(moved / trials - f) < 5.0 * sigma


def test_excess_rounding_batch_columns_are_independent():
    """Replicas draw from per-replica spawned streams and must stay
    exchangeable: per-column token totals all hit the same ceil(r) budget
    and the joint mean matches the schedule."""
    topo = star(5)
    engine = BatchedVectorEngine()
    B = 64
    config = EngineConfig(
        scheme="sos", beta=1.5, rounding="randomized-excess", rounds=1, seed=7
    )
    handle = engine.prepare(
        topo, config, np.tile(uniform_load(topo, 10), (B, 1))
    )
    fracs = np.array([0.25, 0.25, 0.25, 0.25])  # r = 1.0 -> c = 1
    trials = 800
    totals = np.zeros(B)
    for _ in range(trials):
        sched = np.tile(fracs[:, None], (1, B))
        act = engine._round_flows(handle, sched)
        totals += act.sum(axis=0)
    # every replica moves its single token with probability r / c = 1
    np.testing.assert_array_equal(totals, np.full(B, float(trials)))


# ----------------------------------------------------------------------
# PoissonArrivals sampling
# ----------------------------------------------------------------------
def test_poisson_arrivals_moments():
    topo = torus_2d(8, 8)
    model = PoissonArrivals(rate=3.0)
    rng = arrival_stream(123, 0)
    draws = np.concatenate(
        [model.deltas(topo, t, rng) for t in range(400)]
    )
    k = draws.size  # 25600 samples
    assert np.all(draws >= 0.0) and np.all(draws == np.round(draws))
    sigma_mean = np.sqrt(3.0 / k)
    assert abs(draws.mean() - 3.0) < 5.0 * sigma_mean
    # Poisson: variance == mean (4-sigma band for the sample variance)
    var_sigma = np.sqrt((3.0 + 2.0 * 3.0**2) / k)
    assert abs(draws.var() - 3.0) < 5.0 * var_sigma


def test_poisson_arrivals_chisquare_against_pmf():
    topo = torus_2d(8, 8)
    model = PoissonArrivals(rate=3.0)
    rng = arrival_stream(7, 0)
    draws = np.concatenate(
        [model.deltas(topo, t, rng) for t in range(400)]
    ).astype(np.int64)
    top = 10  # bins 0..9 plus a >= 10 tail
    observed = np.bincount(np.minimum(draws, top), minlength=top + 1)
    probs = stats.poisson.pmf(np.arange(top), 3.0)
    probs = np.append(probs, 1.0 - probs.sum())
    expected = draws.size * probs
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    assert chi2 < stats.chi2.ppf(0.999, df=top), (chi2, observed, expected)


def test_poisson_departures_mean_shift():
    """With departures the deltas are a Skellam-like difference: the mean
    shifts to rate - departure_rate while arrivals/departures stay integral."""
    topo = torus_2d(8, 8)
    model = PoissonArrivals(rate=4.0, departure_rate=1.5)
    rng = arrival_stream(99, 0)
    draws = np.concatenate(
        [model.deltas(topo, t, rng) for t in range(400)]
    )
    k = draws.size
    sigma_mean = np.sqrt((4.0 + 1.5) / k)
    assert abs(draws.mean() - 2.5) < 5.0 * sigma_mean
    assert np.all(draws == np.round(draws))


def test_poisson_stream_layout_is_reproducible_and_independent():
    topo = torus_2d(4, 4)
    model = PoissonArrivals(rate=2.0)
    a = model.deltas(topo, 0, arrival_stream(5, 0))
    b = model.deltas(topo, 0, arrival_stream(5, 0))
    c = model.deltas(topo, 0, arrival_stream(5, 1))
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


# ----------------------------------------------------------------------
# Batch-wide arrival sampling (inverse-CDF / net-delta tables)
# ----------------------------------------------------------------------

def test_batch_poisson_inverse_cdf_chisquare():
    """The tabulated inverse-CDF sampler is Poisson to chi-square scrutiny."""
    from repro.core.dynamic import batch_arrival_stream

    topo = torus_2d(24, 24)
    model = PoissonArrivals(rate=3.0)
    counts = model.batch_deltas(
        topo, 0, batch_arrival_stream(0), 200
    ).ravel().astype(int)
    kmax = counts.max()
    observed = np.bincount(counts, minlength=kmax + 1).astype(float)
    expected = stats.poisson.pmf(np.arange(kmax + 1), 3.0) * counts.size
    expected[-1] += (1.0 - stats.poisson.cdf(kmax, 3.0)) * counts.size
    mask = expected > 5
    chi2 = ((observed[mask] - expected[mask]) ** 2 / expected[mask]).sum()
    pvalue = 1.0 - stats.chi2.cdf(chi2, mask.sum() - 1)
    assert pvalue > 0.005, (chi2, pvalue)


def test_batch_net_delta_is_skellam_chisquare():
    """With departures, the single net-delta draw follows the exact
    difference (Skellam) distribution of the two Poisson laws."""
    from repro.core.dynamic import batch_arrival_stream

    topo = torus_2d(24, 24)
    model = PoissonArrivals(rate=3.0, departure_rate=2.0)
    deltas = model.batch_deltas(
        topo, 0, batch_arrival_stream(1), 300
    ).ravel().astype(int)
    lo, hi = deltas.min(), deltas.max()
    observed = np.bincount(deltas - lo, minlength=hi - lo + 1).astype(float)
    expected = stats.skellam.pmf(np.arange(lo, hi + 1), 3.0, 2.0) * deltas.size
    mask = expected > 5
    chi2 = ((observed[mask] - expected[mask]) ** 2 / expected[mask]).sum()
    pvalue = 1.0 - stats.chi2.cdf(chi2, mask.sum() - 1)
    assert pvalue > 0.005, (chi2, pvalue)
    assert abs(deltas.mean() - 1.0) < 0.05
    assert abs(deltas.var() - 5.0) < 0.2


def test_batch_large_rate_falls_back_to_generator():
    from repro.core.dynamic import batch_arrival_stream

    topo = torus_2d(8, 8)
    model = PoissonArrivals(rate=100.0, departure_rate=90.0)
    deltas = model.batch_deltas(topo, 0, batch_arrival_stream(2), 100)
    assert abs(deltas.mean() - 10.0) < 1.0
