"""Tests for the negative-load analysis (Section V)."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    LoadBalancingProcess,
    NegativeLoadTracker,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    initial_delta,
    minimum_safe_initial_load,
    observation5_bound,
    point_load,
    theorem10_bound,
    theorem11_bound,
    torus_2d,
    torus_lambda,
    uniform_load,
)


class TestDelta:
    def test_homogeneous_delta(self):
        load = np.array([10.0, 0.0, 2.0, 0.0])
        # mean 3 -> max |x - 3| = 7
        assert initial_delta(load) == 7.0

    def test_heterogeneous_delta(self):
        load = np.array([10.0, 0.0])
        speeds = np.array([1.0, 4.0])
        # targets (2, 8) -> deviations (8, 8)
        assert initial_delta(load, speeds) == 8.0


class TestBounds:
    def test_observation5(self):
        assert observation5_bound(100, 5.0) == -50.0
        with pytest.raises(ConfigurationError):
            observation5_bound(0, 1.0)

    def test_theorem10_tighter_gap_means_lower_bound(self):
        loose = theorem10_bound(100, 5.0, lam=0.5)
        tight = theorem10_bound(100, 5.0, lam=0.99)
        assert tight < loose < 0

    def test_theorem11_adds_degree_term(self):
        t10 = theorem10_bound(100, 5.0, 0.9)
        t11 = theorem11_bound(100, 5.0, 0.9, max_degree=4)
        assert t11 == pytest.approx(t10 - 16.0 / np.sqrt(0.1))

    def test_minimum_safe_initial_load_signs(self):
        cont = minimum_safe_initial_load(100, 5.0, 0.9)
        disc = minimum_safe_initial_load(100, 5.0, 0.9, max_degree=4)
        assert disc > cont > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theorem10_bound(100, 5.0, 1.0)
        with pytest.raises(ConfigurationError):
            theorem11_bound(100, 5.0, 0.9, max_degree=-1)


class TestEmpiricalBounds:
    """The simulated transient minimum must respect the paper's bounds."""

    def _run(self, topo, lam, load, rounds, rounding):
        proc = LoadBalancingProcess(
            SecondOrderScheme(topo, beta=beta_opt(lam)),
            rounding=rounding,
            rng=np.random.default_rng(7),
        )
        return Simulator(proc).run(load, rounds)

    def test_continuous_sos_respects_theorem10(self):
        topo = torus_2d(6, 6)
        lam = torus_lambda((6, 6))
        load = point_load(topo, 36 * 50)
        result = self._run(topo, lam, load, 200, "identity")
        delta0 = initial_delta(load)
        bound = theorem10_bound(topo.n, delta0, lam)
        assert result.min_transient_overall >= bound

    def test_discrete_sos_respects_theorem11(self):
        topo = torus_2d(6, 6)
        lam = torus_lambda((6, 6))
        load = point_load(topo, 36 * 50)
        result = self._run(topo, lam, load, 200, "randomized-excess")
        delta0 = initial_delta(load)
        bound = theorem11_bound(topo.n, delta0, lam, max_degree=4)
        assert result.min_transient_overall >= bound

    def test_safe_initial_load_prevents_negative(self):
        topo = torus_2d(6, 6)
        lam = torus_lambda((6, 6))
        # Perturb a uniform load slightly: small Delta(0), big minimum.
        base = 10000.0
        load = uniform_load(topo, base)
        load[0] += 36.0
        load[1] -= 36.0
        delta0 = initial_delta(load)
        needed = minimum_safe_initial_load(topo.n, delta0, lam, max_degree=4)
        assert base >= needed  # premise of the theorem holds
        result = self._run(topo, lam, load, 300, "randomized-excess")
        assert result.min_transient_overall >= 0.0

    def test_point_load_does_go_negative(self):
        """SOS from a point load overdraws — the behaviour Section V studies."""
        topo = torus_2d(8, 8)
        lam = torus_lambda((8, 8))
        load = point_load(topo, 1000 * topo.n)
        result = self._run(topo, lam, load, 150, "randomized-excess")
        assert result.min_transient_overall < 0.0


class TestTracker:
    def test_tracks_minimum_and_first_round(self):
        tracker = NegativeLoadTracker()
        tracker.observe(0, 5.0)
        tracker.observe(1, -2.0)
        tracker.observe(2, -7.0)
        tracker.observe(3, 1.0)
        assert tracker.min_transient == -7.0
        assert tracker.first_negative_round == 1
        assert tracker.negative_rounds == 2
        assert tracker.ever_negative

    def test_summary_empty(self):
        tracker = NegativeLoadTracker()
        summary = tracker.summary()
        assert summary["min_transient"] is None
        assert not tracker.ever_negative
