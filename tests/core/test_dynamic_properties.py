"""Property-based token-conservation invariants of the dynamic regime.

Hypothesis drives random (topology, arrival model, rounding, seed, rounds)
combinations through every engine backend and checks the exact accounting
identities that hold for *any* dynamic run:

* ``total[t] == total[t-1] + arrived[t] - departed[t]`` every round, i.e.
  the final total replays exactly from the initial load plus the reported
  arrival/departure volumes (token counts are integral, so the float sums
  are exact);
* ``departed[t] + clamped[t]`` is the *requested* consumption —
  ``clamped`` is never negative and only the clamped remainder keeps the
  totals from going below what the nodes actually held;
* applying arrivals never drives a node below zero through consumption
  (non-negativity after clamping): a node that was non-negative stays
  non-negative, and a transiently negative node is never made worse;
* re-running with the same seed reproduces the trajectory bit for bit, and
  a different arrival stream key changes it (determinism under re-seeding).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BurstArrivals,
    HotspotArrivals,
    PoissonArrivals,
    cycle,
    hypercube,
    torus_2d,
    uniform_load,
)
from repro.engines import EngineConfig, make_engine

ENGINE_NAMES = ["reference", "batched", "network"]

TOPOLOGIES = {
    "torus": torus_2d(4, 5),
    "cycle": cycle(9),
    "hypercube": hypercube(4),
}

ROUNDINGS = ["floor", "nearest", "ceil", "unbiased-edge", "randomized-excess"]


@st.composite
def dynamic_cases(draw):
    topo = TOPOLOGIES[draw(st.sampled_from(sorted(TOPOLOGIES)))]
    kind = draw(st.sampled_from(["poisson", "burst", "hotspot"]))
    if kind == "poisson":
        model = PoissonArrivals(
            rate=draw(st.floats(0.0, 6.0)),
            departure_rate=draw(st.floats(0.0, 6.0)),
        )
    elif kind == "burst":
        model = BurstArrivals(
            burst=draw(st.integers(0, 500)), period=draw(st.integers(1, 5))
        )
    else:
        model = HotspotArrivals(
            nodes=[draw(st.integers(0, topo.n - 1))],
            rate=draw(st.integers(0, 40)),
        )
    return {
        "topo": topo,
        "model": model,
        "rounding": draw(st.sampled_from(ROUNDINGS)),
        "seed": draw(st.integers(0, 2**16)),
        "rounds": draw(st.integers(1, 10)),
        "level": draw(st.integers(0, 30)),
    }


def _config(case, **kwargs):
    return EngineConfig(
        scheme="sos",
        beta=1.6,
        rounding=case["rounding"],
        rounds=case["rounds"],
        seed=case["seed"],
        arrivals=case["model"],
        **kwargs,
    )


def _handle_loads(engine_name, engine, handle) -> np.ndarray:
    """Current ``(B, n)`` loads of an in-flight dynamic run."""
    if engine_name == "batched":
        return handle.load.T.copy()
    if engine_name == "network":
        return np.stack([r.net.loads() for r in handle.replicas])
    return np.stack([run.state.load for _, run in handle.replicas])


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
@settings(max_examples=15, deadline=None, derandomize=True)
@given(case=dynamic_cases())
def test_token_conservation_exact(engine_name, case):
    topo = case["topo"]
    result = make_engine(engine_name).run_dynamic(
        topo, _config(case), uniform_load(topo, case["level"])
    )[0]
    totals = result.series("total_load")
    arrived = result.series("arrived")
    departed = result.series("departed")
    clamped = result.series("clamped")
    assert np.all(arrived >= 0.0)
    assert np.all(departed >= 0.0)
    assert np.all(clamped >= 0.0)
    replay = case["level"] * float(topo.n) + np.cumsum(arrived - departed)
    np.testing.assert_array_equal(totals, replay)
    assert float(result.final_state.load.sum()) == pytest.approx(
        totals[-1], rel=1e-12
    )


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
@settings(max_examples=10, deadline=None, derandomize=True)
@given(case=dynamic_cases())
def test_non_negativity_after_clamping(engine_name, case):
    """The arrival hook never drives a node below zero through consumption,
    and never makes a transiently negative node worse."""
    topo = case["topo"]
    engine = make_engine(engine_name)
    handle = engine.prepare(
        topo, _config(case), uniform_load(topo, case["level"])
    )
    for _ in range(case["rounds"]):
        before = _handle_loads(engine_name, engine, handle)
        engine.arrive(handle)
        after = _handle_loads(engine_name, engine, handle)
        floor = np.minimum(before, 0.0)
        assert np.all(after >= floor - 1e-9)
        assert np.all(after[before >= 0.0] >= 0.0)
        engine.step(handle)


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
@settings(max_examples=8, deadline=None, derandomize=True)
@given(case=dynamic_cases())
def test_determinism_under_reseeding(engine_name, case):
    topo = case["topo"]
    load = uniform_load(topo, case["level"])
    engine = make_engine(engine_name)
    first = engine.run_dynamic(topo, _config(case), load)[0]
    second = engine.run_dynamic(topo, _config(case), load)[0]
    np.testing.assert_array_equal(
        first.final_state.load, second.final_state.load
    )
    for fieldname in ("total_load", "arrived", "departed", "clamped",
                      "max_minus_avg"):
        np.testing.assert_array_equal(
            first.series(fieldname), second.series(fieldname),
            err_msg=fieldname,
        )


def test_different_stream_keys_change_stochastic_arrivals():
    """arrival_seeds picks the stream: same batch position, different key,
    different Poisson draws (and the same key reproduces them)."""
    topo = TOPOLOGIES["torus"]
    load = uniform_load(topo, 20)
    model = PoissonArrivals(rate=4.0)

    def run(keys):
        config = EngineConfig(
            scheme="sos", beta=1.6, rounding="nearest", rounds=6, seed=0,
            arrivals=model, arrival_seeds=keys,
        )
        return make_engine("batched").run_dynamic(topo, config, load)[0]

    base = run([0])
    np.testing.assert_array_equal(
        base.series("arrived"), run([0]).series("arrived")
    )
    assert not np.array_equal(
        base.series("arrived"), run([7]).series("arrived")
    )


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_departure_only_workload_never_goes_negative(engine_name):
    """Huge departure demand on a nearly empty system: clamping reports the
    refused volume and the total never crosses zero."""
    topo = TOPOLOGIES["torus"]
    case = {
        "topo": topo,
        "model": PoissonArrivals(rate=0.0, departure_rate=50.0),
        "rounding": "randomized-excess",
        "seed": 11,
        "rounds": 15,
        "level": 3,
    }
    result = make_engine(engine_name).run_dynamic(
        topo, _config(case), uniform_load(topo, 3)
    )[0]
    assert float(result.series("total_load")[-1]) >= 0.0
    assert float(result.series("clamped").sum()) > 0.0
    replay = 3.0 * topo.n + np.cumsum(
        result.series("arrived") - result.series("departed")
    )
    np.testing.assert_array_equal(result.series("total_load"), replay)
