"""Unit tests for SOS->FOS switch policies."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FixedRoundSwitch,
    LoadState,
    LocalDifferenceSwitch,
    NeverSwitch,
    PotentialPlateauSwitch,
    cycle,
)


def _state(topo, load, round_index):
    return LoadState(
        load=np.asarray(load, dtype=float),
        flows=np.zeros(topo.m_edges),
        round_index=round_index,
    )


class TestNeverSwitch:
    def test_never_fires(self, tiny_cycle):
        policy = NeverSwitch()
        state = _state(tiny_cycle, np.zeros(8), 100)
        assert not policy.should_switch(tiny_cycle, state)


class TestFixedRound:
    def test_fires_at_round(self, tiny_cycle):
        policy = FixedRoundSwitch(5)
        assert not policy.should_switch(tiny_cycle, _state(tiny_cycle, np.zeros(8), 4))
        assert policy.should_switch(tiny_cycle, _state(tiny_cycle, np.zeros(8), 5))
        assert policy.should_switch(tiny_cycle, _state(tiny_cycle, np.zeros(8), 9))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedRoundSwitch(-1)


class TestLocalDifference:
    def test_fires_when_local_diff_small(self, tiny_cycle):
        policy = LocalDifferenceSwitch(threshold=3.0, min_rounds=0)
        flat = _state(tiny_cycle, np.full(8, 10.0), 5)
        assert policy.should_switch(tiny_cycle, flat)
        spiky = _state(tiny_cycle, [10, 20, 10, 10, 10, 10, 10, 10], 5)
        assert not policy.should_switch(tiny_cycle, spiky)

    def test_min_rounds_guard(self, tiny_cycle):
        policy = LocalDifferenceSwitch(threshold=100.0, min_rounds=10)
        flat = _state(tiny_cycle, np.full(8, 1.0), 3)
        assert not policy.should_switch(tiny_cycle, flat)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalDifferenceSwitch(threshold=-1.0)
        with pytest.raises(ConfigurationError):
            LocalDifferenceSwitch(min_rounds=-1)


class TestPotentialPlateau:
    def test_fires_on_stalled_potential(self, tiny_cycle):
        policy = PotentialPlateauSwitch(window=3, min_drop=0.5, min_rounds=0)
        # Constant potential: after the window fills, should fire.
        load = [5, 0, 5, 0, 5, 0, 5, 0]
        fired = False
        for t in range(6):
            fired = policy.should_switch(tiny_cycle, _state(tiny_cycle, load, t))
        assert fired

    def test_does_not_fire_while_decaying(self, tiny_cycle):
        policy = PotentialPlateauSwitch(window=3, min_drop=0.5, min_rounds=0)
        for t in range(8):
            # Potential decays by 4x per step -> never plateaus.
            scale = 0.5 ** t
            load = np.array([5, 0, 5, 0, 5, 0, 5, 0], dtype=float) * scale
            assert not policy.should_switch(tiny_cycle, _state(tiny_cycle, load, t))

    def test_reset_clears_history(self, tiny_cycle):
        policy = PotentialPlateauSwitch(window=3, min_drop=0.5, min_rounds=0)
        load = [5, 0, 5, 0, 5, 0, 5, 0]
        for t in range(5):
            policy.should_switch(tiny_cycle, _state(tiny_cycle, load, t))
        policy.reset()
        # After reset the window must refill before it can fire.
        assert not policy.should_switch(tiny_cycle, _state(tiny_cycle, load, 0))

    def test_zero_potential_fires(self, tiny_cycle):
        policy = PotentialPlateauSwitch(window=2, min_drop=0.5, min_rounds=0)
        balanced = np.full(8, 3.0)
        fired = False
        for t in range(4):
            fired = policy.should_switch(tiny_cycle, _state(tiny_cycle, balanced, t))
        assert fired

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PotentialPlateauSwitch(window=1)
        with pytest.raises(ConfigurationError):
            PotentialPlateauSwitch(min_drop=0.0)
        with pytest.raises(ConfigurationError):
            PotentialPlateauSwitch(min_drop=1.0)
