"""Unit tests for the Section VI metrics."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    cycle,
    discrepancy,
    initial_discrepancy_K,
    max_deviation,
    max_local_difference,
    max_minus_average,
    min_minus_average,
    normalized_potential,
    potential,
    target_loads,
)


class TestTargets:
    def test_homogeneous_targets(self):
        targets = target_loads(100.0, np.ones(4))
        assert np.allclose(targets, 25.0)

    def test_heterogeneous_targets_proportional_to_speed(self):
        speeds = np.array([1.0, 3.0])
        targets = target_loads(100.0, speeds)
        assert np.allclose(targets, [25.0, 75.0])
        assert targets.sum() == pytest.approx(100.0)

    def test_rejects_zero_speed_sum(self):
        with pytest.raises(ConfigurationError):
            target_loads(10.0, np.zeros(3))


class TestLocalDifference:
    def test_max_over_edges_only(self):
        topo = cycle(4)
        load = np.array([0.0, 10.0, 0.0, 1.0])
        assert max_local_difference(topo, load) == 10.0

    def test_edgeless_graph(self):
        from repro import Topology

        topo = Topology(2, [])
        assert max_local_difference(topo, np.array([5.0, -5.0])) == 0.0


class TestGlobalMetrics:
    def test_max_minus_average(self):
        load = np.array([1.0, 2.0, 9.0])
        assert max_minus_average(load) == pytest.approx(9.0 - 4.0)

    def test_max_minus_average_with_targets(self):
        load = np.array([5.0, 5.0])
        targets = np.array([2.0, 8.0])
        assert max_minus_average(load, targets) == 3.0

    def test_min_minus_average(self):
        load = np.array([1.0, 2.0, 9.0])
        assert min_minus_average(load) == pytest.approx(1.0 - 4.0)

    def test_potential_matches_definition(self):
        load = np.array([2.0, 6.0])
        # mean 4 -> (2-4)^2 + (6-4)^2 = 8
        assert potential(load) == 8.0
        assert normalized_potential(load) == 4.0

    def test_potential_zero_when_balanced(self):
        assert potential(np.full(5, 3.0)) == 0.0

    def test_potential_with_targets(self):
        load = np.array([3.0, 3.0])
        targets = np.array([1.0, 5.0])
        assert potential(load, targets) == 8.0

    def test_discrepancy_and_K(self):
        load = np.array([3.0, -1.0, 7.0])
        assert discrepancy(load) == 8.0
        assert initial_discrepancy_K(load) == 8.0

    def test_max_deviation(self):
        a = np.array([1.0, 2.0])
        b = np.array([4.0, 1.0])
        assert max_deviation(a, b) == 3.0
        with pytest.raises(ConfigurationError):
            max_deviation(a, np.ones(3))
