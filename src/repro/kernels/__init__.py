"""Compiled kernel tier for the discrete edge-wise hot loop.

The batched engine's discrete rounds are dominated by elementwise numpy
passes over ``(m, B)`` planes (schedule, round, token dispatch, apply).
This package provides *fused* single-pass implementations of those four
kernels behind one provider API, selected by ``EngineConfig.kernel``:

* ``"numba"`` — ``@njit(parallel=True, cache=True)`` kernels
  (:mod:`._numba`), available when numba is installed (the ``[compiled]``
  pip extra);
* ``"cffi"`` — the same kernels as C compiled once through cffi with the
  system compiler (:mod:`._cffi`), cached on disk;
* ``"python"`` — a pure numpy/python reference provider (:mod:`._python`)
  that validates the orchestration without any compiler;
* ``"auto"`` — the best available compiled provider (numba, then cffi),
  silently falling back to the numpy tier with a one-time log line;
* ``"numpy"`` — the engine's own vectorised kernels (no provider).

Every provider is **bit-identical** to the numpy tier: deterministic
roundings replay the exact elementwise expression trees and the exact
CSR accumulation order, and the stochastic roundings consume uniforms
pre-drawn from the same per-replica
:func:`~repro.engines.base.rounding_stream` numpy generators in the same
order (the provider compiles the expensive scatter, not the sampling).
The contract is enforced by ``tests/engines/test_compiled.py``.

Provider API (all arrays C-contiguous, loads/flows ``(n, B)``/``(m, B)``
in the engine's dtype; ``consts = [0.0, 1.0, frac_tol]`` in that dtype
so no float literal ever enters the kernels at a foreign precision; the
edge/adjacency index arrays ``eu``/``ev``/``adj_edges``/``edges`` are
**int32** — half the index traffic of the memory-bound large-n runs —
while ``indptr``/``counts``/``totals``/``uoff`` stay int64 and
``adj_signs`` is int8):

* ``round_edges(eu, ev, load, speeds, flows, act, fsg, uni, alpha, ar,
  ac, beta, bm1, bs, mode, rounding, consts)`` — fused schedule + round:
  mode 0 is the round-0 FOS opener ``s = (nu - nv) * alpha``, mode 1 the
  SOS update ``s = flows * (beta - 1) + ((nu - nv) * alpha) * beta``,
  mode 2 the fused-operator form reading the interleaved
  ``E_alpha[_beta].data`` coefficients; ``(ar, ac)`` / ``bs`` are element
  strides into the flat ``alpha`` / ``beta`` rows.  ``rounding`` is a
  :data:`ROUNDING_CODES` value; ``unbiased-edge`` reads its pre-drawn
  uniforms from ``uni`` in **(B, m)** layout (each replica's stream fills
  one contiguous row); ``randomized-excess`` additionally writes the
  signed fractional parts into ``fsg``.
* ``excess_counts(adj_edges, adj_signs, dmax, m, fsg, counts, totals,
  consts)`` — per-(node, replica) token budgets ``ceil(r - tol)`` from a
  walk of the padded adjacency (slot ``e == m`` is padding), plus the
  per-replica token totals reduced into ``totals``.
* ``excess_dispatch(adj_edges, adj_signs, dmax, m, fsg, counts, uni,
  uoff, act, consts)`` — serial token scatter consuming the pre-drawn
  uniforms replica-major (``uoff`` offsets), node-ascending within a
  replica — exactly the numpy tier's stream consumption order.
* ``apply_flows(indptr, edges, signs, act, load)`` — the incidence
  accumulation ``load[i] += sum(signs * act[edges])`` replaying scipy's
  ``csr_matvecs`` per-row sequential order.
"""

from __future__ import annotations

import importlib.util
import logging
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "DISCRETE_ROUNDINGS",
    "HAVE_CFFI",
    "HAVE_NUMBA",
    "KERNEL_CHOICES",
    "ROUNDING_CODES",
    "ensure_warm",
    "get_provider",
    "kernel_blockers",
    "resolve_kernel",
    "warm_up_kernels",
]

logger = logging.getLogger("repro.kernels")

#: Roundings the compiled tier covers (every discrete rounding; the
#: continuous ``identity`` process belongs to the closed-form fast paths).
DISCRETE_ROUNDINGS = (
    "floor", "nearest", "ceil", "unbiased-edge", "randomized-excess",
)

#: Rounding name -> integer code passed into the provider kernels.
ROUNDING_CODES = {name: i for i, name in enumerate(DISCRETE_ROUNDINGS)}

#: Valid ``EngineConfig.kernel`` values.
KERNEL_CHOICES = ("numpy", "numba", "cffi", "python", "auto")

#: Compiled providers in ``"auto"`` preference order.
AUTO_PREFERENCE = ("numba", "cffi")

#: Whether the optional compiled dependencies are importable (spec check
#: only — importing numba eagerly would cost seconds per process).
HAVE_NUMBA = importlib.util.find_spec("numba") is not None
HAVE_CFFI = importlib.util.find_spec("cffi") is not None

#: Provider cache: name -> provider instance, or None when the provider
#: failed to import/build (the failure is memoised, not retried).
_PROVIDERS: Dict[str, Optional[object]] = {}

#: Providers already exercised by :func:`ensure_warm` in this process.
_WARMED = set()

_FALLBACKS_LOGGED = set()


def get_provider(name: str):
    """The named provider instance, or ``None`` when unavailable.

    Import/build failures are logged at debug level and memoised so a
    missing compiler is probed exactly once per process.
    """
    if name in _PROVIDERS:
        return _PROVIDERS[name]
    if name == "python":
        from . import _python as mod
    elif name == "numba":
        mod = None
        if HAVE_NUMBA:
            try:
                from . import _numba as mod
            except Exception as exc:  # pragma: no cover - env dependent
                logger.debug("numba provider unavailable: %s", exc)
                mod = None
    elif name == "cffi":
        mod = None
        if HAVE_CFFI:
            try:
                from . import _cffi as mod
            except Exception as exc:  # pragma: no cover - env dependent
                logger.debug("cffi provider unavailable: %s", exc)
                mod = None
    else:
        raise ValueError(f"unknown kernel provider {name!r}")
    provider = None
    if mod is not None:
        try:
            provider = mod.make_provider()
        except Exception as exc:  # pragma: no cover - env dependent
            logger.debug("kernel provider %r failed to build: %s", name, exc)
            provider = None
    _PROVIDERS[name] = provider
    return provider


def kernel_blockers(config, m_edges: int) -> List[str]:
    """Why this config cannot run a compiled kernel (empty when it can)."""
    blockers = []
    if config.rounding not in DISCRETE_ROUNDINGS:
        blockers.append(
            f"rounding {config.rounding!r} (the compiled tier covers the "
            f"discrete roundings {', '.join(DISCRETE_ROUNDINGS)}; identity "
            "runs use the closed-form fast paths)"
        )
    if m_edges == 0:
        blockers.append("an edgeless topology (no edge-wise hot loop exists)")
    return blockers


def _log_fallback_once(key, message: str) -> None:
    if key not in _FALLBACKS_LOGGED:
        _FALLBACKS_LOGGED.add(key)
        logger.info(message)


def resolve_kernel(config, m_edges: int):
    """Resolve ``config.kernel`` to a provider instance or ``None`` (numpy).

    Forced providers (``"numba"``/``"cffi"``/``"python"``) raise
    :class:`~repro.exceptions.ConfigurationError` when the config is
    blocked or the provider is unavailable, naming the ``[compiled]`` pip
    extra; ``"auto"`` silently falls back to the numpy tier instead, with
    a one-time ``repro.kernels`` log line.
    """
    name = config.kernel
    if name == "numpy":
        return None
    if name not in KERNEL_CHOICES:
        raise ConfigurationError(
            f"kernel must be one of {KERNEL_CHOICES}, got {name!r}"
        )
    blockers = kernel_blockers(config, m_edges)
    if name == "auto":
        if blockers:
            _log_fallback_once(
                ("blocked", tuple(blockers)),
                "kernel='auto' falls back to the numpy tier: "
                + " and ".join(blockers),
            )
            return None
        for candidate in AUTO_PREFERENCE:
            provider = get_provider(candidate)
            if provider is not None:
                _warn_dynamic_clamp(config, candidate)
                return provider
        _log_fallback_once(
            ("missing",),
            "kernel='auto' falls back to the numpy tier: no compiled "
            "provider is available (pip install 'repro-lb[compiled]' for "
            "the numba/cffi tiers)",
        )
        return None
    if blockers:
        raise ConfigurationError(
            f"kernel={name!r} is blocked by " + " and ".join(blockers)
        )
    provider = get_provider(name)
    if provider is None:
        raise ConfigurationError(
            f"kernel={name!r} is unavailable: the {name} provider failed "
            "to import or build (install the compiled extra: "
            "pip install 'repro-lb[compiled]')"
        )
    _warn_dynamic_clamp(config, name)
    return provider


def _warn_dynamic_clamp(config, provider_name: str) -> None:
    """One-time notice that dynamic runs clamp arrivals in numpy.

    The compiled tier covers the static hot loop; the per-round arrival
    clamp of dynamic runs has no compiled kernel yet, so a forced (or
    auto-selected) provider still executes that pass in numpy.  Saying so
    once keeps bench readers from crediting the clamp to the provider.
    """
    if getattr(config, "arrivals", None) is not None:
        _log_fallback_once(
            ("dynamic-clamp", provider_name),
            f"kernel={provider_name!r} covers the static hot loop only: "
            "the dynamic arrival-clamp pass runs in the numpy tier "
            "(compiled clamp coverage is a ROADMAP item)",
        )


def _warm_provider(provider) -> None:
    """Exercise every provider entry point on a tiny two-node problem.

    Triggers JIT/compilation outside any measured loop (both dtypes, all
    rounding codes, all schedule modes, the excess passes and the apply
    pass).  The warm-up draws no engine randomness — every buffer is
    built locally.
    """
    eu = np.array([0], dtype=np.int32)
    ev = np.array([1], dtype=np.int32)
    indptr = np.array([0, 1, 2], dtype=np.int64)
    edges = np.array([0, 0], dtype=np.int32)
    adj_edges = np.array([0, 0], dtype=np.int32)
    adj_signs = np.array([1, -1], dtype=np.int8)
    for dtype in (np.float64, np.float32):
        consts = np.array([0.0, 1.0, 1e-9], dtype=dtype)
        load = np.array([[7.5], [2.0]], dtype=dtype)
        speeds = np.array([1.0, 2.0], dtype=dtype)
        flows = np.zeros((1, 1), dtype=dtype)
        act = np.zeros((1, 1), dtype=dtype)
        fsg = np.zeros((1, 1), dtype=dtype)
        uni = np.full((1, 1), 0.25, dtype=dtype)
        alpha = np.array([0.25], dtype=dtype)
        beta = np.array([1.5], dtype=dtype)
        bm1 = np.array([0.5], dtype=dtype)
        signs = np.array([-1.0, 1.0], dtype=dtype)
        for mode in (0, 1, 2):
            for code in range(len(DISCRETE_ROUNDINGS)):
                provider.round_edges(
                    eu, ev, load, speeds, flows, act, fsg, uni,
                    alpha, 0, 0, beta, bm1, 0, mode, code, consts,
                )
        counts = np.zeros((2, 1), dtype=np.int64)
        totals = np.zeros(1, dtype=np.int64)
        provider.excess_counts(
            adj_edges, adj_signs, 1, 1, fsg, counts, totals, consts
        )
        total = int(counts.sum())
        uoff = np.array([0, total], dtype=np.int64)
        udraws = np.full(max(total, 1), 0.5, dtype=dtype)[:total]
        provider.excess_dispatch(
            adj_edges, adj_signs, 1, 1, fsg, counts, udraws, uoff, act, consts,
        )
        provider.apply_flows(indptr, edges, signs, act, load.copy())


def ensure_warm(provider) -> None:
    """Warm the provider once per process (lazy first-compiled-run hook)."""
    if provider.name in _WARMED:
        return
    _warm_provider(provider)
    _WARMED.add(provider.name)


def warm_up_kernels(names=None) -> Dict[str, bool]:
    """Warm every requested provider; returns ``{name: available}``.

    Benchmarks call this explicitly so JIT/compile time never pollutes
    the measured rounds/sec; the engine calls :func:`ensure_warm` lazily
    on the first compiled run.
    """
    results: Dict[str, bool] = {}
    for name in names if names is not None else ("python", "cffi", "numba"):
        provider = get_provider(name)
        if provider is None:
            results[name] = False
            continue
        ensure_warm(provider)
        results[name] = True
    return results
