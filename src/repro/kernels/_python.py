"""Pure numpy/python provider of the kernel API (reference tier).

Exists so the kernel orchestration — mode/coefficient resolution, the RNG
pre-draw protocol, the padded-adjacency token walk, the sequential apply
order — can be validated on any machine with no compiler and no optional
dependency.  Every expression mirrors the C/numba providers operation for
operation, so it is bit-identical to both and to the engine's own numpy
tier (for which it is *not* a speedup: the token/apply loops are plain
python, fine at test sizes only).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided


class PythonKernels:
    """Array-at-a-time reference implementation of the provider API."""

    name = "python"
    compiled = False

    # ------------------------------------------------------------------
    def round_edges(
        self, eu, ev, load, speeds, flows, act, fsg, uni,
        alpha, ar, ac, beta, bm1, bs, mode, rounding, consts,
    ):
        m, B = act.shape
        it = alpha.dtype.itemsize
        av = as_strided(alpha, shape=(m, B), strides=(ar * it, ac * it))
        bit = beta.dtype.itemsize
        bv = as_strided(beta, shape=(B,), strides=(bs * bit,))
        bm1v = as_strided(bm1, shape=(B,), strides=(bs * bit,))
        nu = load[eu]
        nv = load[ev]
        if speeds is not None and speeds.size:
            nu = nu / speeds[eu][:, None]
            nv = nv / speeds[ev][:, None]
        if mode == 2:
            # Fused-operator order: acc = flows*bm1, then +c*nu, then +(-c)*nv
            # — exactly the csr_matvecs accumulation over the interleaved
            # E_alpha[_beta] data.
            s = flows * bm1v
            s = s + av * nu
            s = s + (-av) * nv
        else:
            d = (nu - nv) * av
            if mode == 1:
                d = d * bv
                s = flows * bm1v + d
            else:
                s = d
        if rounding == 0:  # floor (toward zero)
            np.trunc(s, out=act)
        elif rounding == 1:  # nearest (ties to even)
            np.rint(s, out=act)
        elif rounding == 2:  # ceil (away from zero)
            a = np.abs(s)
            np.ceil(a, out=a)
            np.copysign(a, s, out=act)
        elif rounding == 3:  # unbiased-edge: uni arrives in (B, m) layout
            ab = np.abs(s)
            base = np.floor(ab)
            frac = ab - base
            np.add(base, uni.T < frac, out=base)
            np.copysign(base, s, out=act)
        else:  # randomized-excess: signed base + fractional parts
            np.trunc(s, out=act)
            np.subtract(s, act, out=fsg)
        return act

    # ------------------------------------------------------------------
    @staticmethod
    def _slot_fractions(adj_edges, adj_signs, dmax, m, fsg):
        """Per-slot outgoing fractions ``p`` of the padded adjacency.

        ``p = max(fsg, 0)`` when the node is the edge's u endpoint,
        ``max(fsg, 0) - fsg`` when it is v, ``0`` on padding — the exact
        P/N-block values the numpy tier gathers from its ``pn`` planes.
        """
        n = adj_edges.size // dmax
        B = fsg.shape[1]
        dtype = fsg.dtype
        sl_e = adj_edges.reshape(n, dmax)
        sl_s = adj_signs.reshape(n, dmax)
        fsg_pad = np.concatenate([fsg, np.zeros((1, B), dtype=dtype)], axis=0)
        f = fsg_pad[sl_e]  # (n, dmax, B); the padding slot e == m reads 0.0
        p = np.maximum(f, dtype.type(0.0))
        neg = sl_s < 0
        p[neg] = p[neg] - f[neg]
        return p

    def excess_counts(
        self, adj_edges, adj_signs, dmax, m, fsg, counts, totals, consts,
    ):
        n, B = counts.shape
        dtype = fsg.dtype
        p = self._slot_fractions(adj_edges, adj_signs, dmax, m, fsg)
        # Explicit slot loop: the surplus accumulates in ascending slot
        # order (padding adds +0.0 — value-identical to skipping it).
        cum = np.zeros((n, B), dtype=dtype)
        for j in range(dmax):
            np.add(cum, p[:, j], out=cum)
        c = np.ceil(cum - consts[2])
        counts[...] = c.astype(np.int64)
        totals[...] = counts.sum(axis=0)
        return counts

    def excess_dispatch(
        self, adj_edges, adj_signs, dmax, m, fsg, counts, uni, uoff, act, consts,
    ):
        n, B = counts.shape
        dtype = fsg.dtype
        tol = consts[2]
        sl_e = adj_edges.reshape(n, dmax)
        sl_s = adj_signs.reshape(n, dmax)
        p = self._slot_fractions(adj_edges, adj_signs, dmax, m, fsg)
        for b in range(B):
            off = int(uoff[b])
            for i in range(n):
                k = int(counts[i, b])
                if not k:
                    continue
                cums = np.empty(dmax, dtype=dtype)
                cum = dtype.type(0.0)
                for j in range(dmax):
                    cum = cum + p[i, j, b]
                    cums[j] = cum
                c = np.ceil(cum - tol)
                for _ in range(k):
                    target = uni[off] * c
                    off += 1
                    pos = int(np.count_nonzero(cums <= target))
                    if pos < dmax:
                        act[sl_e[i, pos], b] += dtype.type(sl_s[i, pos])
        return act

    # ------------------------------------------------------------------
    def apply_flows(self, indptr, edges, signs, act, load):
        n = load.shape[0]
        for i in range(n):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            if lo == hi:
                continue
            acc = load[i].copy()
            for j in range(lo, hi):
                acc += signs[j] * act[edges[j]]
            load[i] = acc
        return load


def make_provider() -> PythonKernels:
    return PythonKernels()
