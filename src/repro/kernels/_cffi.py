"""C provider of the kernel API, compiled once through cffi.

The four kernels are instantiated for float64 and float32 from one
template and built with the system C compiler into a module cached under
``src/repro/kernels/_cache/`` (override with ``REPRO_KERNEL_CACHE``; a
temp directory is the fallback when the package directory is read-only).
The module name carries a hash of the source and flags, so editing the
kernels or changing compilers never loads a stale extension.

Compilation flags: ``-O3`` with ``-ffp-contract=off`` — fused
multiply-adds would change results at the ulp level and break the
bit-identity contract with the numpy tier (``-ffast-math`` is out of the
question for the same reason).  ``-fopenmp`` is attempted and dropped if
the toolchain lacks it; the parallel pragmas are over edges/nodes with
static schedules, so thread count never affects results (each iteration
owns its output row).
"""

from __future__ import annotations

import hashlib
import importlib
import os
import sys
import tempfile

import numpy as np

_DECL_TEMPLATE = """
void round_edges_@S@(
    long long m, long long B, const int *eu, const int *ev,
    const @R@ *load, const @R@ *speeds, const @R@ *flows,
    @R@ *act, @R@ *fsg, const @R@ *uni,
    const @R@ *alpha, long long ar, long long ac,
    const @R@ *beta, const @R@ *bm1, long long bs,
    int mode, int rounding, const @R@ *consts);
void excess_counts_@S@(
    long long n, long long B, long long m, long long dmax,
    const int *adj_edges, const signed char *adj_signs,
    const @R@ *fsg, long long *counts, long long *totals,
    const @R@ *consts);
void excess_dispatch_@S@(
    long long n, long long B, long long m, long long dmax,
    const int *adj_edges, const signed char *adj_signs,
    const @R@ *fsg, const long long *counts,
    const @R@ *uni, const long long *uoff,
    @R@ *act, const @R@ *consts);
void apply_flows_@S@(
    long long n, long long B, const long long *indptr,
    const int *edges, const @R@ *signs,
    const @R@ *act, @R@ *load);
"""

_BODY_TEMPLATE = r"""
void round_edges_@S@(
    long long m, long long B, const int *eu, const int *ev,
    const @R@ *load, const @R@ *speeds, const @R@ *flows,
    @R@ *act, @R@ *fsg, const @R@ *uni,
    const @R@ *alpha, long long ar, long long ac,
    const @R@ *beta, const @R@ *bm1, long long bs,
    int mode, int rounding, const @R@ *consts)
{
    const @R@ one = consts[1];
    long long e;
    #pragma omp parallel for schedule(static)
    for (e = 0; e < m; e++) {
        const long long u = eu[e];
        const long long v = ev[e];
        long long b;
        for (b = 0; b < B; b++) {
            @R@ nu = load[u * B + b];
            @R@ nv = load[v * B + b];
            @R@ s, a;
            if (speeds) {
                nu = nu / speeds[u];
                nv = nv / speeds[v];
            }
            if (mode == 2) {
                /* fused operators: flows*bm1, then +c*nu, then +(-c)*nv —
                   the csr_matvecs accumulation over interleaved data */
                const @R@ c = alpha[e * ar + b * ac];
                s = flows[e * B + b] * bm1[b * bs];
                s = s + c * nu;
                s = s + (-c) * nv;
            } else {
                @R@ d = (nu - nv) * alpha[e * ar + b * ac];
                if (mode == 1) {
                    d = d * beta[b * bs];
                    s = flows[e * B + b] * bm1[b * bs] + d;
                } else {
                    s = d;  /* round-0 FOS opener */
                }
            }
            switch (rounding) {
            case 0:  /* floor (toward zero) */
                a = @TRUNC@(s);
                break;
            case 1:  /* nearest (rint: ties to even) */
                a = @RINT@(s);
                break;
            case 2:  /* ceil (away from zero) */
                a = @COPYSIGN@(@CEIL@(@FABS@(s)), s);
                break;
            case 3: {  /* unbiased-edge: pre-drawn uniform, (B, m) layout */
                const @R@ ab = @FABS@(s);
                @R@ base = @FLOOR@(ab);
                const @R@ frac = ab - base;
                if (uni[b * m + e] < frac) {
                    base = base + one;
                }
                a = @COPYSIGN@(base, s);
                break;
            }
            default:  /* randomized-excess: signed base + fractional part */
                a = @TRUNC@(s);
                fsg[e * B + b] = s - a;
                break;
            }
            act[e * B + b] = a;
        }
    }
}

void excess_counts_@S@(
    long long n, long long B, long long m, long long dmax,
    const int *adj_edges, const signed char *adj_signs,
    const @R@ *fsg, long long *counts, long long *totals,
    const @R@ *consts)
{
    const @R@ zero = consts[0];
    const @R@ tol = consts[2];
    long long i, b;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; i++) {
        /* replica-inner: each slot contributes one contiguous fsg row,
           and per (i, b) the slots still accumulate in ascending order —
           the exact summation chain of the numpy tier */
        @R@ cum[B > 0 ? B : 1];
        long long j, bb;
        for (bb = 0; bb < B; bb++) {
            cum[bb] = zero;
        }
        for (j = 0; j < dmax; j++) {
            const long long e = adj_edges[i * dmax + j];
            if (e == m) {
                continue;  /* padding slot: adds exactly zero */
            }
            const @R@ *row = fsg + e * B;
            if (adj_signs[i * dmax + j] > 0) {
                for (bb = 0; bb < B; bb++) {
                    const @R@ f = row[bb];
                    cum[bb] = cum[bb] + ((f > zero) ? f : zero);
                }
            } else {
                for (bb = 0; bb < B; bb++) {
                    const @R@ f = row[bb];
                    @R@ p = (f > zero) ? f : zero;
                    p = p - f;
                    cum[bb] = cum[bb] + p;
                }
            }
        }
        for (bb = 0; bb < B; bb++) {
            counts[i * B + bb] = (long long)@CEIL@(cum[bb] - tol);
        }
    }
    /* per-replica token totals, reduced here so the caller sizes the
       uniform stream without an extra numpy pass over (n, B) */
    for (b = 0; b < B; b++) {
        totals[b] = 0;
    }
    for (i = 0; i < n; i++) {
        for (b = 0; b < B; b++) {
            totals[b] += counts[i * B + b];
        }
    }
}

void excess_dispatch_@S@(
    long long n, long long B, long long m, long long dmax,
    const int *adj_edges, const signed char *adj_signs,
    const @R@ *fsg, const long long *counts,
    const @R@ *uni, const long long *uoff,
    @R@ *act, const @R@ *consts)
{
    const @R@ zero = consts[0];
    const @R@ tol = consts[2];
    long long off[B > 0 ? B : 1];  /* next unread uniform per replica */
    @R@ cums[(dmax > 0 ? dmax : 1) * (B > 0 ? B : 1)];
    long long b, i;
    for (b = 0; b < B; b++) {
        off[b] = uoff[b];
    }
    /* serial, node-major for locality.  A token's uniform is addressed by
       (replica, rank-within-replica) via the off counters, and within a
       replica the node order is preserved — so the values consumed are
       exactly the replica-major / node-ascending stream order of the
       numpy tier, whatever the visit order here. */
    for (i = 0; i < n; i++) {
        long long rowtot = 0;
        for (b = 0; b < B; b++) {
            rowtot += counts[i * B + b];
        }
        if (rowtot == 0) {
            continue;
        }
        /* cumulative slot fractions for every replica of this node at
           once: each slot reads one contiguous fsg row, and per (i, b)
           the slots accumulate in ascending order — the exact summation
           chain of the numpy tier */
        long long j;
        for (j = 0; j < dmax; j++) {
            const long long e = adj_edges[i * dmax + j];
            @R@ *row = cums + j * B;
            const @R@ *prev = row - B;
            if (e == m) {
                for (b = 0; b < B; b++) {
                    row[b] = j ? prev[b] : zero;
                }
            } else if (adj_signs[i * dmax + j] > 0) {
                const @R@ *frow = fsg + e * B;
                for (b = 0; b < B; b++) {
                    const @R@ f = frow[b];
                    row[b] = (j ? prev[b] : zero) + ((f > zero) ? f : zero);
                }
            } else {
                const @R@ *frow = fsg + e * B;
                for (b = 0; b < B; b++) {
                    const @R@ f = frow[b];
                    @R@ p = (f > zero) ? f : zero;
                    p = p - f;
                    row[b] = (j ? prev[b] : zero) + p;
                }
            }
        }
        for (b = 0; b < B; b++) {
            const long long k = counts[i * B + b];
            if (k == 0) {
                continue;
            }
            const @R@ *cb = cums + b;
            const @R@ c = @CEIL@(cb[(dmax - 1) * B] - tol);
            long long t;
            for (t = 0; t < k; t++) {
                const @R@ target = uni[off[b] + t] * c;
                /* slot = #(cumulative fractions <= target); branchless
                   count — the running sum is non-decreasing, so the
                   count equals the first-crossing position without the
                   mispredicted early exit */
                long long pos = 0;
                for (j = 0; j < dmax; j++) {
                    pos += (cb[j * B] <= target);
                }
                if (pos < dmax) {  /* otherwise the token stays home */
                    const long long sl = i * dmax + pos;
                    act[adj_edges[sl] * B + b] += (@R@)adj_signs[sl];
                }
            }
            off[b] += k;
        }
    }
}

void apply_flows_@S@(
    long long n, long long B, const long long *indptr,
    const int *edges, const @R@ *signs,
    const @R@ *act, @R@ *load)
{
    long long i;
    #pragma omp parallel for schedule(static)
    for (i = 0; i < n; i++) {
        const long long lo = indptr[i];
        const long long hi = indptr[i + 1];
        /* replica-inner: each incident edge contributes one contiguous
           act row; per (i, b) the edges still add in CSR order */
        @R@ acc[B > 0 ? B : 1];
        long long b, j;
        for (b = 0; b < B; b++) {
            acc[b] = load[i * B + b];
        }
        for (j = lo; j < hi; j++) {
            const @R@ s = signs[j];
            const @R@ *row = act + edges[j] * B;
            for (b = 0; b < B; b++) {
                acc[b] = acc[b] + s * row[b];
            }
        }
        for (b = 0; b < B; b++) {
            load[i * B + b] = acc[b];
        }
    }
}
"""

_VARIANTS = {
    "f64": {
        "@R@": "double", "@TRUNC@": "trunc", "@RINT@": "rint",
        "@CEIL@": "ceil", "@FABS@": "fabs", "@FLOOR@": "floor",
        "@COPYSIGN@": "copysign",
    },
    "f32": {
        "@R@": "float", "@TRUNC@": "truncf", "@RINT@": "rintf",
        "@CEIL@": "ceilf", "@FABS@": "fabsf", "@FLOOR@": "floorf",
        "@COPYSIGN@": "copysignf",
    },
}


def _instantiate(template: str) -> str:
    parts = []
    for suffix, subs in _VARIANTS.items():
        text = template.replace("@S@", suffix)
        for key, value in subs.items():
            text = text.replace(key, value)
        parts.append(text)
    return "\n".join(parts)


_CDEF = _instantiate(_DECL_TEMPLATE)
_SOURCE = "#include <math.h>\n" + _instantiate(_BODY_TEMPLATE)

_BASE_FLAGS = ["-O3", "-ffp-contract=off"]


def _cache_dir() -> str:
    """Writable build/cache directory for the compiled extension."""
    candidates = [
        os.environ.get("REPRO_KERNEL_CACHE"),
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "_cache"),
        os.path.join(tempfile.gettempdir(), "repro-kernel-cache"),
    ]
    for cand in candidates:
        if not cand:
            continue
        try:
            os.makedirs(cand, exist_ok=True)
            probe = os.path.join(cand, ".write-probe")
            with open(probe, "w"):
                pass
            os.remove(probe)
            return cand
        except OSError:
            continue
    raise OSError("no writable kernel cache directory")


def _load_or_build():
    key = hashlib.sha1(
        (_SOURCE + _CDEF + " ".join(_BASE_FLAGS)).encode()
    ).hexdigest()[:16]
    modname = f"_repro_kern_{key}"
    cache = _cache_dir()
    if cache not in sys.path:
        sys.path.insert(0, cache)
    try:
        return importlib.import_module(modname)
    except ImportError:
        pass
    import cffi

    last_error = None
    for openmp in (True, False):
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        args = _BASE_FLAGS + (["-fopenmp"] if openmp else [])
        ffi.set_source(
            modname, _SOURCE,
            extra_compile_args=args,
            extra_link_args=["-fopenmp"] if openmp else [],
        )
        try:
            ffi.compile(tmpdir=cache, verbose=False)
            break
        except Exception as exc:  # pragma: no cover - toolchain dependent
            last_error = exc
    else:  # pragma: no cover - toolchain dependent
        raise RuntimeError(f"cffi kernel build failed: {last_error}")
    importlib.invalidate_caches()
    return importlib.import_module(modname)


class CffiKernels:
    """Thin pointer-casting wrapper around the compiled extension."""

    name = "cffi"
    compiled = True

    def __init__(self, mod):
        self._ffi = mod.ffi
        self._lib = mod.lib

    # ------------------------------------------------------------------
    def _real(self, dtype) -> str:
        return "double *" if dtype == np.float64 else "float *"

    def _p(self, arr, ctype):
        if arr is None:
            return self._ffi.NULL
        return self._ffi.cast(ctype, arr.ctypes.data)

    def _fn(self, stem: str, dtype):
        suffix = "f64" if dtype == np.float64 else "f32"
        return getattr(self._lib, f"{stem}_{suffix}")

    # ------------------------------------------------------------------
    def round_edges(
        self, eu, ev, load, speeds, flows, act, fsg, uni,
        alpha, ar, ac, beta, bm1, bs, mode, rounding, consts,
    ):
        dtype = act.dtype
        r = self._real(dtype)
        m, B = act.shape
        self._fn("round_edges", dtype)(
            m, B, self._p(eu, "int *"), self._p(ev, "int *"),
            self._p(load, r), self._p(speeds, r), self._p(flows, r),
            self._p(act, r), self._p(fsg, r), self._p(uni, r),
            self._p(alpha, r), int(ar), int(ac),
            self._p(beta, r), self._p(bm1, r), int(bs),
            int(mode), int(rounding), self._p(consts, r),
        )
        return act

    def excess_counts(
        self, adj_edges, adj_signs, dmax, m, fsg, counts, totals, consts,
    ):
        dtype = fsg.dtype
        r = self._real(dtype)
        n, B = counts.shape
        self._fn("excess_counts", dtype)(
            n, B, int(m), int(dmax),
            self._p(adj_edges, "int *"),
            self._p(adj_signs, "signed char *"),
            self._p(fsg, r), self._p(counts, "long long *"),
            self._p(totals, "long long *"), self._p(consts, r),
        )
        return counts

    def excess_dispatch(
        self, adj_edges, adj_signs, dmax, m, fsg, counts, uni, uoff, act, consts,
    ):
        dtype = fsg.dtype
        r = self._real(dtype)
        n, B = counts.shape
        self._fn("excess_dispatch", dtype)(
            n, B, int(m), int(dmax),
            self._p(adj_edges, "int *"),
            self._p(adj_signs, "signed char *"),
            self._p(fsg, r), self._p(counts, "long long *"),
            self._p(uni, r), self._p(uoff, "long long *"),
            self._p(act, r), self._p(consts, r),
        )
        return act

    def apply_flows(self, indptr, edges, signs, act, load):
        dtype = load.dtype
        r = self._real(dtype)
        n, B = load.shape
        self._fn("apply_flows", dtype)(
            n, B, self._p(indptr, "long long *"),
            self._p(edges, "int *"), self._p(signs, r),
            self._p(act, r), self._p(load, r),
        )
        return load


def make_provider() -> CffiKernels:
    return CffiKernels(_load_or_build())
