"""Numba provider of the kernel API.

Module-level ``@njit(parallel=True, cache=True)`` kernels mirroring the C
provider line for line: ``prange`` over edges (round) / nodes (counts,
apply) with each iteration owning its output row, and a serial token
dispatch (it consumes one shared uniform stream).  ``cache=True`` keeps
recompiles out of warm processes; every float literal comes in through
the ``consts`` array so float32 runs never promote through a python
float.  Optional arrays (``speeds``, ``uni``, ``fsg``) arrive as 0-size
arrays instead of None — numba specialises on types, and a uniform array
signature keeps one compilation per dtype.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange


@njit(parallel=True, cache=True)
def _round_edges(
    eu, ev, load, speeds, flows, act, fsg, uni,
    alpha, ar, ac, beta, bm1, bs, mode, rounding, consts,
):
    m, B = act.shape
    one = consts[1]
    has_speeds = speeds.size != 0
    for e in prange(m):
        u = eu[e]
        v = ev[e]
        for b in range(B):
            nu = load[u, b]
            nv = load[v, b]
            if has_speeds:
                nu = nu / speeds[u]
                nv = nv / speeds[v]
            if mode == 2:
                # fused operators: flows*bm1, then +c*nu, then +(-c)*nv —
                # the csr_matvecs accumulation over the interleaved data
                c = alpha[e * ar + b * ac]
                s = flows[e, b] * bm1[b * bs]
                s = s + c * nu
                s = s + (-c) * nv
            else:
                d = (nu - nv) * alpha[e * ar + b * ac]
                if mode == 1:
                    d = d * beta[b * bs]
                    s = flows[e, b] * bm1[b * bs] + d
                else:
                    s = d  # round-0 FOS opener
            if rounding == 0:  # floor (toward zero)
                a = np.trunc(s)
            elif rounding == 1:  # nearest (ties to even)
                a = np.rint(s)
            elif rounding == 2:  # ceil (away from zero)
                a = np.copysign(np.ceil(np.abs(s)), s)
            elif rounding == 3:  # unbiased-edge: (B, m) uniform layout
                ab = np.abs(s)
                base = np.floor(ab)
                frac = ab - base
                if uni[b, e] < frac:
                    base = base + one
                a = np.copysign(base, s)
            else:  # randomized-excess: signed base + fractional part
                a = np.trunc(s)
                fsg[e, b] = s - a
            act[e, b] = a
    return act


@njit(parallel=True, cache=True)
def _excess_counts(adj_edges, adj_signs, dmax, m, fsg, counts, totals, consts):
    n, B = counts.shape
    zero = consts[0]
    for i in prange(n):
        for b in range(B):
            cum = zero
            for j in range(dmax):
                e = adj_edges[i * dmax + j]
                if e == m:
                    continue  # padding slot: adds exactly zero
                f = fsg[e, b]
                p = f if f > zero else zero
                if adj_signs[i * dmax + j] < 0:
                    p = p - f
                cum = cum + p
            counts[i, b] = np.int64(np.ceil(cum - consts[2]))
    # per-replica token totals, reduced here so the caller sizes the
    # uniform stream without an extra numpy pass over (n, B)
    for b in range(B):
        tot = np.int64(0)
        for i in range(n):
            tot += counts[i, b]
        totals[b] = tot
    return counts


@njit(cache=True)
def _excess_dispatch(
    adj_edges, adj_signs, dmax, m, fsg, counts, uni, uoff, act, consts,
):
    n, B = counts.shape
    zero = consts[0]
    tol = consts[2]
    off = uoff[:B].copy()  # next unread uniform per replica
    cums = np.empty(dmax, dtype=fsg.dtype)
    # Serial, node-major for locality.  A token's uniform is addressed by
    # (replica, rank-within-replica) via the off counters, and within a
    # replica the node order is preserved — so the values consumed are
    # exactly the replica-major / node-ascending stream order of the
    # numpy tier, whatever the visit order here.
    for i in range(n):
        rowtot = 0
        for b in range(B):
            rowtot += counts[i, b]
        if rowtot == 0:
            continue
        for b in range(B):
            k = counts[i, b]
            if k == 0:
                continue
            cum = zero
            for j in range(dmax):
                e = adj_edges[i * dmax + j]
                if e != m:
                    f = fsg[e, b]
                    p = f if f > zero else zero
                    if adj_signs[i * dmax + j] < 0:
                        p = p - f
                    cum = cum + p
                cums[j] = cum
            c = np.ceil(cum - tol)
            for t in range(k):
                target = uni[off[b] + t] * c
                # slot = #(cumulative fractions <= target); branchless
                # count — the running sum is non-decreasing, so the count
                # equals the first-crossing position
                pos = 0
                for j in range(dmax):
                    pos += np.int64(cums[j] <= target)
                if pos < dmax:  # otherwise the token stays home
                    sl = i * dmax + pos
                    sgn = consts[1] if adj_signs[sl] > 0 else -consts[1]
                    act[adj_edges[sl], b] += sgn
            off[b] += k
    return act


@njit(parallel=True, cache=True)
def _apply_flows(indptr, edges, signs, act, load):
    n, B = load.shape
    for i in prange(n):
        lo = indptr[i]
        hi = indptr[i + 1]
        for b in range(B):
            acc = load[i, b]
            for j in range(lo, hi):
                acc = acc + signs[j] * act[edges[j], b]
            load[i, b] = acc
    return load


class NumbaKernels:
    """Provider wrapper substituting 0-size sentinels for None arrays."""

    name = "numba"
    compiled = True

    def round_edges(
        self, eu, ev, load, speeds, flows, act, fsg, uni,
        alpha, ar, ac, beta, bm1, bs, mode, rounding, consts,
    ):
        dtype = act.dtype
        B = act.shape[1]
        if speeds is None:
            speeds = np.empty(0, dtype=dtype)
        if uni is None:
            uni = np.empty((B, 0), dtype=dtype)
        if fsg is None:
            fsg = np.empty((0, B), dtype=dtype)
        return _round_edges(
            eu, ev, load, speeds, flows, act, fsg, uni,
            alpha, ar, ac, beta, bm1, bs, mode, rounding, consts,
        )

    def excess_counts(
        self, adj_edges, adj_signs, dmax, m, fsg, counts, totals, consts,
    ):
        return _excess_counts(
            adj_edges, adj_signs, dmax, m, fsg, counts, totals, consts
        )

    def excess_dispatch(
        self, adj_edges, adj_signs, dmax, m, fsg, counts, uni, uoff, act, consts,
    ):
        return _excess_dispatch(
            adj_edges, adj_signs, dmax, m, fsg, counts, uni, uoff, act, consts,
        )

    def apply_flows(self, indptr, edges, signs, act, load):
        return _apply_flows(indptr, edges, signs, act, load)


def make_provider() -> NumbaKernels:
    return NumbaKernels()
