"""Message-passing distributed substrate.

The matrix engine in :mod:`repro.core` computes the global dynamics
directly; this package implements the same protocols as genuinely
*distributed* algorithms: autonomous :class:`BalancerNode` agents that only
ever see messages from their direct neighbours, driven by a synchronous
:class:`SyncNetwork` engine, with optional fault injection.

The equivalence tests (``tests/network/test_equivalence.py``) prove that for
deterministic roundings the global trace of this substrate is *identical* to
the vectorised engine, round for round.
"""

from .messages import (
    Bounce,
    Hello,
    LoadAnnounce,
    Message,
    TokenTransfer,
    WorkInjection,
)
from .node import BalancerNode
from .engine import SyncNetwork
from .async_engine import AsyncNetwork
from .faults import FaultModel, LinkOutage, NoFaults, RandomLinkDrop

__all__ = [
    "Message",
    "Hello",
    "LoadAnnounce",
    "TokenTransfer",
    "Bounce",
    "WorkInjection",
    "BalancerNode",
    "SyncNetwork",
    "AsyncNetwork",
    "FaultModel",
    "NoFaults",
    "RandomLinkDrop",
    "LinkOutage",
]
