"""Fault injection for the message-passing substrate.

The paper assumes a reliable synchronous network; these models are an
*extension* used by the robustness examples and tests.  All faults preserve
load: a dropped token shipment bounces back to its sender (think of it as a
link-layer failure detected by an ack timeout), so the global invariant
``sum of loads = m`` survives arbitrary fault schedules.  Dropping a
shipment also voids the edge's remembered flow for that round, which
degrades SOS toward FOS behaviour on flaky links — the
``examples/fault_tolerance.py`` script measures exactly that.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .messages import TokenTransfer

__all__ = ["FaultModel", "NoFaults", "RandomLinkDrop", "LinkOutage"]


class FaultModel:
    """Decides which token transfers are delivered each round."""

    def filter_transfers(
        self, transfers: Sequence[TokenTransfer], round_index: int
    ) -> Tuple[List[TokenTransfer], List[TokenTransfer]]:
        """Split ``transfers`` into ``(delivered, bounced)``."""
        raise NotImplementedError

    def with_rng(self, rng: np.random.Generator) -> "FaultModel":
        """Return a copy bound to ``rng`` (stateless models return self).

        The engines call this with a generator derived from the run seed, so
        fault schedules reproduce run-to-run like everything else; a model
        constructed with an explicit generator keeps it.
        """
        return self

    def drops(self, transfer: TokenTransfer, round_index: int) -> bool:
        """Per-message fate for event-driven delivery (True = bounce).

        The async engine asks message by message instead of round by round;
        the default delegates to :meth:`filter_transfers` so the two paths
        consume the same random stream for stochastic models.
        """
        _, bounced = self.filter_transfers([transfer], round_index)
        return bool(bounced)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoFaults(FaultModel):
    """The reliable network of the paper (default)."""

    def filter_transfers(self, transfers, round_index):
        return list(transfers), []


class RandomLinkDrop(FaultModel):
    """Each shipment is independently dropped with probability ``p``."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"drop probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.rng = rng

    def with_rng(self, rng):
        if self.rng is not None:  # an explicit generator wins
            return self
        return RandomLinkDrop(self.p, rng)

    def filter_transfers(self, transfers, round_index):
        if not transfers or self.p == 0.0:
            return list(transfers), []
        if self.rng is None:
            raise ConfigurationError(
                "RandomLinkDrop has no random generator: pass rng= explicitly "
                "or run it through an engine, which binds one derived from "
                "the run seed"
            )
        drops = self.rng.random(len(transfers)) < self.p
        delivered = [m for m, d in zip(transfers, drops) if not d]
        bounced = [m for m, d in zip(transfers, drops) if d]
        return delivered, bounced

    def drops(self, transfer, round_index):
        """Per-message fast path: one draw, no list plumbing.

        Consumes the random stream exactly like :meth:`filter_transfers`
        on a single-message batch (one uniform draw per shipment, none
        when ``p == 0``), so the event-driven engine's trajectories are
        unchanged by taking this path.
        """
        if self.p == 0.0:
            return False
        if self.rng is None:
            raise ConfigurationError(
                "RandomLinkDrop has no random generator: pass rng= explicitly "
                "or run it through an engine, which binds one derived from "
                "the run seed"
            )
        return bool(self.rng.random(1)[0] < self.p)

    def __repr__(self) -> str:
        return f"RandomLinkDrop(p={self.p})"


class LinkOutage(FaultModel):
    """Specific undirected links are dead during a round interval.

    Parameters
    ----------
    links:
        Iterable of ``(u, v)`` pairs (order irrelevant).
    start, end:
        Affected rounds are ``start <= round < end`` (``end=None`` means
        forever).
    """

    def __init__(
        self,
        links: Iterable[Tuple[int, int]],
        start: int = 0,
        end: Optional[int] = None,
    ):
        if start < 0 or (end is not None and end < start):
            raise ConfigurationError(f"invalid outage window [{start}, {end})")
        self.links: Set[Tuple[int, int]] = {
            (min(u, v), max(u, v)) for u, v in links
        }
        self.start = int(start)
        self.end = end

    def _active(self, round_index: int) -> bool:
        if round_index < self.start:
            return False
        return self.end is None or round_index < self.end

    def filter_transfers(self, transfers, round_index):
        if not self._active(round_index):
            return list(transfers), []
        delivered, bounced = [], []
        for msg in transfers:
            key = (min(msg.sender, msg.receiver), max(msg.sender, msg.receiver))
            (bounced if key in self.links else delivered).append(msg)
        return delivered, bounced

    def drops(self, transfer, round_index):
        """Per-message fast path: a pure window + set lookup, no lists."""
        if not self._active(round_index):
            return False
        key = (
            min(transfer.sender, transfer.receiver),
            max(transfer.sender, transfer.receiver),
        )
        return key in self.links

    def __repr__(self) -> str:
        return (
            f"LinkOutage(links={sorted(self.links)}, start={self.start}, "
            f"end={self.end})"
        )
