"""Node agents for the message-passing substrate.

A :class:`BalancerNode` holds strictly node-local state: its own load, speed,
the ``alpha`` weight and previous-round flow per incident edge, and whatever
it has learned from neighbour messages.  All flow decisions are taken from
this local view only, which is the point of the substrate — it demonstrates
that the paper's schemes (including the Section III-B randomized rounding)
are genuinely distributed, and the test-suite proves the resulting global
trace equals the vectorised matrix engine.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ProtocolError
from .messages import Hello, LoadAnnounce, TokenTransfer, WorkInjection

__all__ = ["BalancerNode"]

_FRAC_TOL = 1e-9


class BalancerNode:
    """One processor running FOS or SOS from purely local information.

    Parameters
    ----------
    node_id:
        This node's identifier.
    neighbors:
        Sorted list of neighbour ids.
    speed:
        This node's speed ``s_i``.
    load:
        Initial (integral) load.
    scheme:
        ``"fos"`` or ``"sos"``.
    beta:
        SOS relaxation parameter (ignored for FOS).
    rounding:
        One of ``"identity"``, ``"floor"``, ``"nearest"``, ``"ceil"``,
        ``"unbiased-edge"``, ``"randomized-excess"`` — mirrors
        :mod:`repro.core.rounding` but implemented node-locally.
    rng:
        Node-local random generator for the randomized roundings.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        speed: float,
        load: float,
        scheme: str = "fos",
        beta: float = 1.0,
        rounding: str = "identity",
        rng: Optional[np.random.Generator] = None,
    ):
        if scheme not in ("fos", "sos"):
            raise ProtocolError(f"unknown scheme {scheme!r}")
        if rounding not in (
            "identity",
            "floor",
            "nearest",
            "ceil",
            "unbiased-edge",
            "randomized-excess",
        ):
            raise ProtocolError(f"unknown rounding {rounding!r}")
        self.node_id = int(node_id)
        self.neighbors: List[int] = sorted(int(x) for x in neighbors)
        self.speed = float(speed)
        self.load = float(load)
        self.scheme = scheme
        self.beta = float(beta)
        self.rounding = rounding
        self.rng = rng or np.random.default_rng()

        self.degree = len(self.neighbors)
        self.neighbor_speeds: Dict[int, float] = {}
        self.neighbor_degrees: Dict[int, int] = {}
        self.alpha: Dict[int, float] = {}
        #: Previous-round flow from this node's perspective (positive = sent).
        self.prev_flow: Dict[int, float] = {j: 0.0 for j in self.neighbors}
        self._announced: Dict[int, float] = {}
        self._pending_scheduled: Dict[int, float] = {}
        self._sent_this_round: Dict[int, float] = {}
        self.round_index = 0
        #: Most negative transient load this node ever observed on itself.
        self.min_transient = math.inf

    # -- setup ------------------------------------------------------------
    def hello_messages(self) -> List[Hello]:
        """Introduce this node to all neighbours (setup phase)."""
        return [
            Hello(sender=self.node_id, receiver=j, speed=self.speed, degree=self.degree)
            for j in self.neighbors
        ]

    def receive_hello(self, msg: Hello) -> None:
        """Learn a neighbour's speed and degree; derive ``alpha_ij``."""
        if msg.sender not in self.prev_flow:
            raise ProtocolError(
                f"node {self.node_id} got Hello from non-neighbour {msg.sender}"
            )
        self.neighbor_speeds[msg.sender] = msg.speed
        self.neighbor_degrees[msg.sender] = msg.degree
        # Heterogeneous-safe alpha (reduces to 1/(max degree + 1) when
        # speeds are 1) — must match repro.core.alphas.heterogeneous_safe.
        self.alpha[msg.sender] = min(self.speed, msg.speed) / (
            max(self.degree, msg.degree) + 1.0
        )

    def receive_work(self, msg: WorkInjection) -> float:
        """Apply an external workload injection (dynamic regime).

        Creates ``msg.arrive`` tokens and consumes up to ``msg.depart``,
        clamped at this node's available non-negative load (SOS can leave
        transiently negative loads, which departures must not touch).
        Returns the tokens actually consumed so the injector can keep exact
        totals.
        """
        if msg.round_index != self.round_index:
            raise ProtocolError(
                f"node {self.node_id}: work injection for round "
                f"{msg.round_index} arrived in round {self.round_index}"
            )
        if msg.arrive < 0.0 or msg.depart < 0.0:
            raise ProtocolError(
                f"node {self.node_id}: negative work injection {msg!r}"
            )
        consumed = min(msg.depart, max(self.load, 0.0))
        self.load = self.load + msg.arrive - consumed
        return consumed

    # -- per-round protocol -----------------------------------------------
    def announce(self) -> List[LoadAnnounce]:
        """Phase 1: broadcast the speed-normalised load to all neighbours."""
        value = self.load / self.speed
        return [
            LoadAnnounce(
                sender=self.node_id,
                receiver=j,
                round_index=self.round_index,
                normalized_load=value,
            )
            for j in self.neighbors
        ]

    def receive_announce(self, msg: LoadAnnounce) -> None:
        """Phase 1 delivery: store neighbour loads for the flow computation."""
        if msg.round_index != self.round_index:
            raise ProtocolError(
                f"node {self.node_id}: announce for round {msg.round_index} "
                f"arrived in round {self.round_index}"
            )
        self._announced[msg.sender] = msg.normalized_load

    def set_neighbor_loads(self, announced: Dict[int, float]) -> None:
        """Install a (possibly stale) neighbour-load view for this round.

        The event-driven async engine's entry point: it tracks the latest
        heard announcement per neighbour and installs the whole view right
        before :meth:`compute_transfers`, bypassing the synchronous
        :meth:`receive_announce` round check (under latency the freshest
        known value *is* from an older round — that staleness is the point).
        """
        self._announced = dict(announced)

    def _scheduled_flow(self, j: int) -> float:
        """Continuous scheduled flow from this node toward neighbour ``j``."""
        gradient = self.alpha[j] * (self.load / self.speed - self._announced[j])
        if self.scheme == "sos" and self.round_index > 0:
            return (self.beta - 1.0) * self.prev_flow[j] + self.beta * gradient
        return gradient

    def compute_transfers(self) -> List[TokenTransfer]:
        """Phase 2: decide and emit this node's outgoing token shipments.

        Both endpoints of an edge compute the same scheduled flow (they both
        know the two normalised loads, the shared ``alpha`` and — by induction
        — the same previous flow); only the endpoint with *positive* flow is
        the sender and performs the rounding.
        """
        missing = [j for j in self.neighbors if j not in self._announced]
        if missing:
            raise ProtocolError(
                f"node {self.node_id} misses announcements from {missing}"
            )
        outgoing = {j: self._scheduled_flow(j) for j in self.neighbors}
        senders = {j: f for j, f in outgoing.items() if f > 0.0}
        rounded = self._round_outgoing(senders)

        transfers = []
        self._sent_this_round = {}
        for j, f in outgoing.items():
            if f > 0.0:
                amount = rounded[j]
                self.prev_flow[j] = amount
                self._sent_this_round[j] = amount
                if amount != 0.0:
                    transfers.append(
                        TokenTransfer(
                            sender=self.node_id,
                            receiver=j,
                            round_index=self.round_index,
                            amount=amount,
                        )
                    )
            elif f == 0.0:
                self.prev_flow[j] = 0.0
            # For f < 0 the neighbour is the sender; prev_flow[j] is updated
            # when its TokenTransfer (or its absence) is observed.
        self._pending_scheduled = outgoing
        return transfers

    def _round_outgoing(self, flows: Dict[int, float]) -> Dict[int, float]:
        """Round this node's outgoing flow magnitudes (node-local rounding)."""
        if self.rounding == "identity":
            return dict(flows)
        if self.rounding == "floor":
            return {j: math.floor(f) for j, f in flows.items()}
        if self.rounding == "nearest":
            return {j: float(np.rint(f)) for j, f in flows.items()}
        if self.rounding == "ceil":
            return {j: math.ceil(f) for j, f in flows.items()}
        if self.rounding == "unbiased-edge":
            out = {}
            for j, f in flows.items():
                base = math.floor(f)
                frac = f - base
                out[j] = base + (1.0 if self.rng.random() < frac else 0.0)
            return out
        # randomized-excess: the paper's Section III-B scheme.
        base = {}
        fracs = {}
        for j, f in flows.items():
            b = math.floor(f)
            fr = f - b
            if fr < _FRAC_TOL:
                fr = 0.0
            elif fr > 1.0 - _FRAC_TOL:
                b += 1
                fr = 0.0
            base[j] = float(b)
            fracs[j] = fr
        r = sum(fracs.values())
        if r <= 0.0:
            return base
        c = max(1, math.ceil(r - _FRAC_TOL))
        order = sorted(j for j in fracs if fracs[j] > 0.0)
        cum = np.cumsum([fracs[j] for j in order])
        for _ in range(c):
            draw = self.rng.random() * c
            pos = int(np.searchsorted(cum, draw, side="right"))
            if pos < len(order):
                base[order[pos]] += 1.0
        return base

    def apply_send_phase(self) -> None:
        """Deduct everything sent this round; track the transient minimum."""
        self.load -= sum(self._sent_this_round.values())
        if self.load < self.min_transient:
            self.min_transient = self.load

    def receive_transfer(self, msg: TokenTransfer) -> None:
        """Phase 2 delivery: accept tokens; remember the edge's flow."""
        if msg.sender not in self.prev_flow:
            raise ProtocolError(
                f"node {self.node_id} got tokens from non-neighbour {msg.sender}"
            )
        self.load += msg.amount
        # From this node's perspective the flow on that edge was negative.
        self.prev_flow[msg.sender] = -msg.amount

    def finish_round(self, received_from: Sequence[int]) -> None:
        """Close the round: zero flows on quiet incoming edges, advance t.

        ``received_from`` lists neighbours whose transfer arrived this round;
        any neighbour that was the computed sender but shipped zero tokens
        must still have its ``prev_flow`` updated (to the exact zero).
        """
        received = set(received_from)
        for j in self.neighbors:
            f = self._pending_scheduled.get(j, 0.0)
            if f < 0.0 and j not in received:
                self.prev_flow[j] = 0.0
        self._announced.clear()
        self._pending_scheduled = {}
        self._sent_this_round = {}
        self.round_index += 1

    def __repr__(self) -> str:
        return (
            f"BalancerNode(id={self.node_id}, load={self.load}, "
            f"scheme={self.scheme!r}, round={self.round_index})"
        )
