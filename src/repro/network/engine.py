"""Synchronous message-passing engine.

:class:`SyncNetwork` wires :class:`~repro.network.node.BalancerNode` agents
to a :class:`~repro.graphs.topology.Topology` and drives them round by round:

* **setup**: one Hello exchange so nodes learn neighbour speeds/degrees,
* **per round**: (phase 1) every node announces its normalised load and the
  engine delivers all announcements; (phase 2) every node computes and emits
  its token transfers, the engine applies the send phase (recording the
  transient loads of Section V), delivers the transfers, and closes the round.

The engine is single-process but *only* moves messages; all balancing logic
lives in the nodes.  An optional :class:`~repro.network.faults.FaultModel`
may intercept token transfers (dropped shipments bounce back to the sender so
load is conserved).  The equivalence test-suite proves the engine's global
trace equals :class:`repro.core.simulator.Simulator` for deterministic
roundings.
"""

from __future__ import annotations

import math

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ProtocolError
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology

from .faults import FaultModel, NoFaults
from .messages import TokenTransfer, WorkInjection
from .node import BalancerNode

__all__ = ["SyncNetwork", "FAULT_STREAM_KEY"]

# Fault RNG stream id: the fault model draws from default_rng([seed, KEY]),
# disjoint from the per-node streams default_rng([seed, i]) because the key
# is far above any node id (it spells "faults" as a big-endian integer).
FAULT_STREAM_KEY = int.from_bytes(b"faults", "big")


class SyncNetwork:
    """A network of autonomous balancer nodes driven in synchronous rounds.

    Parameters
    ----------
    topo:
        The communication graph.
    initial_load:
        Per-node starting load.
    scheme / beta / rounding:
        Protocol configuration handed to every node (see
        :class:`~repro.network.node.BalancerNode`).
    speeds:
        Heterogeneous speeds (defaults to all ones).
    seed:
        Base seed; node ``i`` gets an independent generator derived from it
        (``default_rng([seed, i])``), so runs are reproducible regardless of
        scheduling order.
    faults:
        Optional fault model applied to token transfers.
    switch_to_fos_at:
        Optional round index at which *every* node synchronously switches
        from SOS to FOS — the paper's hybrid strategy, executed as a truly
        distributed synchronous decision (each node flips its own scheme
        when its local round counter reaches the agreed value).
    """

    def __init__(
        self,
        topo: Topology,
        initial_load: np.ndarray,
        scheme: str = "fos",
        beta: float = 1.0,
        rounding: str = "identity",
        speeds: Optional[np.ndarray] = None,
        seed: int = 0,
        faults: Optional[FaultModel] = None,
        switch_to_fos_at: Optional[int] = None,
    ):
        initial_load = np.asarray(initial_load, dtype=np.float64)
        if initial_load.shape != (topo.n,):
            raise ConfigurationError(
                f"initial load has shape {initial_load.shape}, expected ({topo.n},)"
            )
        self.topo = topo
        self.speeds = validate_speeds(
            speeds if speeds is not None else uniform_speeds(topo.n), topo.n
        )
        self.faults = (faults or NoFaults()).with_rng(
            np.random.default_rng([seed, FAULT_STREAM_KEY])
        )
        if switch_to_fos_at is not None and switch_to_fos_at < 0:
            raise ConfigurationError(
                f"switch round must be >= 0, got {switch_to_fos_at}"
            )
        self.switch_to_fos_at = switch_to_fos_at
        self.round_index = 0
        self.nodes: List[BalancerNode] = [
            BalancerNode(
                node_id=i,
                neighbors=topo.neighbors(i),
                speed=float(self.speeds[i]),
                load=float(initial_load[i]),
                scheme=scheme,
                beta=beta,
                rounding=rounding,
                rng=np.random.default_rng([seed, i]),
            )
            for i in range(topo.n)
        ]
        self._setup()

    def _setup(self) -> None:
        """Run the Hello exchange so alphas are known everywhere."""
        for node in self.nodes:
            for msg in node.hello_messages():
                self.nodes[msg.receiver].receive_hello(msg)

    # ------------------------------------------------------------------
    def apply_churn(self, patch) -> None:
        """Apply a :class:`~repro.core.churn.ChurnPatch` between rounds.

        First the patch's handoffs run (a crashed/leaving node splits its
        load over its live neighbours using the same floor-share arithmetic
        as :func:`repro.core.churn.apply_handoffs`, so the engine fleet
        stays bit-identical), then the network rewires onto ``patch.topo``.
        Surviving edges keep their SOS flow memory; new edges start at zero.
        """
        for src, receivers in patch.handoffs:
            amount = self.nodes[src].load
            k = len(receivers)
            share = float(math.floor(amount / k))
            for j in receivers[:-1]:
                self.nodes[j].load += share
            self.nodes[receivers[-1]].load += amount - share * (k - 1)
            self.nodes[src].load = 0.0
        self._rewire(patch.topo)

    def _rewire(self, topo: Topology) -> None:
        """Swap the communication graph and re-run the Hello exchange.

        Flow memory carries over per surviving neighbour link; all hello
        state (speeds, degrees, alphas) is rebuilt because degrees — and
        hence the diffusion alphas — may have changed.
        """
        self.topo = topo
        for node in self.nodes:
            new_neighbors = sorted(int(j) for j in topo.neighbors(node.node_id))
            node.neighbors = new_neighbors
            node.degree = len(new_neighbors)
            node.prev_flow = {
                j: node.prev_flow.get(j, 0.0) for j in new_neighbors
            }
            node.neighbor_speeds = {}
            node.neighbor_degrees = {}
            node.alpha = {}
            node._announced = {}
            node._pending_scheduled = {}
            node._sent_this_round = {}
        self._setup()

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one full balancing round."""
        if (
            self.switch_to_fos_at is not None
            and self.round_index == self.switch_to_fos_at
        ):
            for node in self.nodes:
                node.scheme = "fos"
        # Phase 1: announcements.
        for node in self.nodes:
            for msg in node.announce():
                self.nodes[msg.receiver].receive_announce(msg)

        # Phase 2: transfers.  Collect everything first (synchronous model),
        # then apply sends, then deliver.
        transfers: List[TokenTransfer] = []
        for node in self.nodes:
            transfers.extend(node.compute_transfers())

        delivered, bounced = self.faults.filter_transfers(
            transfers, round_index=self.round_index
        )

        for node in self.nodes:
            node.apply_send_phase()

        # Bounced shipments return to their sender: the tokens were deducted
        # in the send phase, so credit them back and void the edge's flow.
        received_from: Dict[int, List[int]] = defaultdict(list)
        for msg in bounced:
            sender = self.nodes[msg.sender]
            sender.load += msg.amount
            sender.prev_flow[msg.receiver] = 0.0
        for msg in delivered:
            self.nodes[msg.receiver].receive_transfer(msg)
            received_from[msg.receiver].append(msg.sender)

        for node in self.nodes:
            node.finish_round(received_from.get(node.node_id, ()))
        self.round_index += 1

    def inject_work(self, deltas: np.ndarray) -> Tuple[float, float, float]:
        """Deliver per-node workload deltas as :class:`WorkInjection` messages.

        Positive entries create tokens at the node, negative entries request
        consumption (each node clamps at its own available non-negative
        load).  Call before :meth:`step` each round for the dynamic regime.
        Returns ``(arrived, departed, clamped)`` token totals, ``clamped``
        being the requested consumption the nodes refused.
        """
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.shape != (self.topo.n,):
            raise ConfigurationError(
                f"work deltas have shape {deltas.shape}, "
                f"expected ({self.topo.n},)"
            )
        arrived = departed = clamped = 0.0
        for i, node in enumerate(self.nodes):
            d = float(deltas[i])
            if d == 0.0:
                continue
            arrive = d if d > 0.0 else 0.0
            want = -d if d < 0.0 else 0.0
            consumed = node.receive_work(
                WorkInjection(
                    sender=-1,
                    receiver=i,
                    round_index=self.round_index,
                    arrive=arrive,
                    depart=want,
                )
            )
            arrived += arrive
            departed += consumed
            clamped += want - consumed
        return arrived, departed, clamped

    def run(self, rounds: int) -> np.ndarray:
        """Run ``rounds`` rounds and return the final load vector."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        for _ in range(rounds):
            self.step()
        return self.loads()

    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Current per-node load vector."""
        return np.asarray([node.load for node in self.nodes], dtype=np.float64)

    def flows(self) -> np.ndarray:
        """Previous-round flows in the oriented per-edge convention.

        Entry ``k`` is the flow from ``edge_u[k]`` to ``edge_v[k]`` last
        round, matching :class:`repro.core.state.LoadState.flows`; raises if
        the two endpoints disagree (protocol violation).
        """
        out = np.zeros(self.topo.m_edges, dtype=np.float64)
        for k in range(self.topo.m_edges):
            u = int(self.topo.edge_u[k])
            v = int(self.topo.edge_v[k])
            f_u = self.nodes[u].prev_flow[v]
            f_v = self.nodes[v].prev_flow[u]
            if abs(f_u + f_v) > 1e-9 * max(1.0, abs(f_u)):
                raise ProtocolError(
                    f"edge ({u},{v}): endpoints disagree on flow {f_u} vs {f_v}"
                )
            out[k] = f_u
        return out

    def min_transients(self) -> np.ndarray:
        """Per-node most-negative transient load observed so far."""
        return np.asarray(
            [node.min_transient for node in self.nodes], dtype=np.float64
        )

    @property
    def total_load(self) -> float:
        """Total load in the network (conserved)."""
        return float(self.loads().sum())
