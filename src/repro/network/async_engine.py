"""Event-driven asynchronous message-passing engine.

:class:`AsyncNetwork` drives the same :class:`~repro.network.node.
BalancerNode` agents as :class:`~repro.network.engine.SyncNetwork`, but
with no global round barrier: every message is an event in a priority
queue keyed on its delivery time, and each link may carry a latency (in
rounds) and a bandwidth (tokens per round) from the topology's stamped
``link_latency``/``link_bandwidth`` attributes (the pyFogSim
``LINK_PR``/``LINK_BW`` analogues) or from explicit constructor overrides.

The schedule per node round (local round ``r`` starting at local time
``t``):

* **announce** (phase 0): the node broadcasts its normalised load; each
  copy arrives at ``t + delay(edge, size=1)``.  The SOS -> FOS switch
  flips here, on the node's *local* round counter, exactly as in the
  synchronous engine.
* **compute** (phase 2): the node computes and rounds its outgoing
  transfers from the *latest heard* neighbour loads — which under latency
  are stale by one or more rounds — then deducts the sent tokens
  (recording the Section V transient minimum).  Each transfer travels for
  ``delay(edge, size=1 + |amount|)``; a transfer the fault model drops
  becomes a :class:`~repro.network.messages.Bounce` event arriving back
  at the sender after a full round trip.
* **deliver** (phase 1 announces / phase 3 transfers and bounces):
  pure state updates on the receiver.
* **finish** (phase 4): the node closes its round (zeroing remembered
  flows on quiet incoming edges) and schedules round ``r + 1`` at
  ``t + 1`` — gated, when ``max_skew`` is set, on having heard round
  ``>= r - max_skew`` from every neighbour.

With zero latency everywhere (no stamped attributes, no overrides) the
phase ordering above replays the synchronous engine's phase structure
event for event, so the trajectory is **bit-identical** to
:class:`SyncNetwork` — the cross-engine equivalence suite asserts it.
With latency, nodes schedule on stale loads and SOS momentum acts on
out-of-date flows; the convergence degradation versus mean staleness is
measured by ``benchmarks/bench_async.py``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..graphs.topology import Topology

from .engine import SyncNetwork
from .faults import FaultModel
from .messages import Bounce, LoadAnnounce, TokenTransfer, WorkInjection

__all__ = ["AsyncNetwork"]

# Event phases at one timestamp, in pop order.  At zero latency every
# phase of a round shares the round's timestamp, so this ordering is what
# reproduces the synchronous engine's announce -> deliver -> compute ->
# deliver -> finish structure bit for bit.
PH_ANNOUNCE = 0
PH_DELIVER_ANNOUNCE = 1
PH_COMPUTE = 2
PH_DELIVER = 3
PH_FINISH = 4


def _as_edge_array(value, m_edges: int, name: str) -> Optional[np.ndarray]:
    if value is None:
        return None
    arr = np.broadcast_to(
        np.asarray(value, dtype=np.float64), (m_edges,)
    ).copy()
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} must be finite")
    return arr


class AsyncNetwork(SyncNetwork):
    """Latency-aware event-driven network of autonomous balancer nodes.

    Accepts every :class:`SyncNetwork` parameter plus:

    Parameters
    ----------
    link_latency:
        Per-edge message latency in rounds (scalar or ``(m_edges,)``);
        ``None`` reads the topology's stamped ``link_latency`` (``None``
        there too means zero latency — the synchronous regime).
    link_bandwidth:
        Per-edge bandwidth in tokens per round: a message of size ``s``
        occupies the link for ``s / bandwidth`` rounds on top of the
        latency (announces have size 1, a transfer of ``a`` tokens size
        ``1 + |a|``).  ``None`` means infinite bandwidth.
    max_skew:
        Bounded-staleness gate: a node may not start round ``r`` until it
        has heard round ``>= r - 1 - max_skew`` from every neighbour.
        ``None`` means unbounded skew.

    :meth:`step` advances the *global* round count by one: it pops events
    until every node has finished that round (fast nodes may already be
    further ahead — that skew is the regime under study).  ``loads`` /
    ``flows`` / ``min_transients`` then observe the same quantities as the
    synchronous engine; ``flows`` reports the engine-side per-edge record
    of the last computed shipments (exact at zero latency, best-effort
    under skew, where both endpoints of an edge may transiently ship).
    """

    def __init__(
        self,
        topo: Topology,
        initial_load: np.ndarray,
        scheme: str = "fos",
        beta: float = 1.0,
        rounding: str = "identity",
        speeds: Optional[np.ndarray] = None,
        seed: int = 0,
        faults: Optional[FaultModel] = None,
        switch_to_fos_at: Optional[int] = None,
        link_latency=None,
        link_bandwidth=None,
        max_skew: Optional[int] = None,
    ):
        super().__init__(
            topo,
            initial_load,
            scheme=scheme,
            beta=beta,
            rounding=rounding,
            speeds=speeds,
            seed=seed,
            faults=faults,
            switch_to_fos_at=switch_to_fos_at,
        )
        if max_skew is not None and max_skew < 0:
            raise ConfigurationError(f"max_skew must be >= 0, got {max_skew}")
        self.max_skew = max_skew
        m = topo.m_edges
        self._lat = _as_edge_array(
            link_latency if link_latency is not None else topo.link_latency,
            m, "link_latency",
        )
        if self._lat is not None and np.any(self._lat < 0.0):
            raise ConfigurationError("link latency must be >= 0")
        self._bw = _as_edge_array(
            link_bandwidth if link_bandwidth is not None else topo.link_bandwidth,
            m, "link_bandwidth",
        )
        if self._bw is not None and np.any(self._bw <= 0.0):
            raise ConfigurationError("link bandwidth must be > 0")

        # Per-node neighbour -> edge-id map for O(1) delay/flow lookups.
        self._eid: List[Dict[int, int]] = [
            {
                int(j): int(e)
                for j, e in zip(topo.neighbors(i), topo.incident_edges(i))
            }
            for i in range(topo.n)
        ]
        # Latest heard neighbour state: normalised load and the round it
        # was announced in.  Bootstrapped from the initial loads (the
        # setup Hello exchange can carry them), so a node never waits for
        # an announcement — it computes on whatever it knows.
        self._view_val: List[Dict[int, float]] = [
            {
                int(j): float(initial_load[j]) / float(self.speeds[j])
                for j in topo.neighbors(i)
            }
            for i in range(topo.n)
        ]
        self._view_round: List[Dict[int, int]] = [
            {int(j): -1 for j in topo.neighbors(i)} for i in range(topo.n)
        ]
        self._received: List[Set[int]] = [set() for _ in range(topo.n)]
        self._edge_flow = np.zeros(m, dtype=np.float64)
        #: Earliest allowed next-round start time per gated node (None =
        #: not waiting on the max_skew gate).
        self._waiting: List[Optional[float]] = [None] * topo.n

        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0
        self._time = 0.0
        self._target = 0
        self._behind = 0
        self._in_flight_amount = 0.0
        self._in_flight_messages = 0
        self.delivered_count = 0
        self.bounced_count = 0
        self._stale_sum = 0
        self._stale_count = 0
        self.max_staleness = 0

        for i in range(topo.n):
            self._push(0.0, PH_ANNOUNCE, i)

    # -- churn -------------------------------------------------------------
    def apply_churn(self, patch) -> None:
        """Live topology surgery between global rounds.

        Runs the synchronous handoff+rewire, then rebuilds every per-edge
        table for the new edge numbering (``patch.edge_map`` carries each
        new edge back to its pre-patch id; new edges come up with zero
        latency and infinite bandwidth — a fresh link has no queue).
        Events already in the heap are *not* rewritten: an in-flight
        shipment whose edge or receiver the patch removed bounces back to
        its sender on delivery, exactly like a link failure, so load is
        conserved.  Nodes stuck on the ``max_skew`` gate are re-checked —
        a crashed neighbour no longer gates them.
        """
        super().apply_churn(patch)
        topo = patch.topo
        m = topo.m_edges
        keep = patch.edge_map >= 0
        src = patch.edge_map[keep]
        if self._lat is not None:
            lat = np.zeros(m, dtype=np.float64)
            lat[keep] = self._lat[src]
            self._lat = lat
        if self._bw is not None:
            bw = np.full(m, np.inf, dtype=np.float64)
            bw[keep] = self._bw[src]
            self._bw = bw
        edge_flow = np.zeros(m, dtype=np.float64)
        edge_flow[keep] = self._edge_flow[src]
        self._edge_flow = edge_flow
        self._eid = [
            {
                int(j): int(e)
                for j, e in zip(topo.neighbors(i), topo.incident_edges(i))
            }
            for i in range(topo.n)
        ]
        old_val, old_round = self._view_val, self._view_round
        self._view_val = [
            {
                int(j): old_val[i].get(
                    int(j),
                    float(self.nodes[int(j)].load) / float(self.speeds[int(j)]),
                )
                for j in topo.neighbors(i)
            }
            for i in range(topo.n)
        ]
        self._view_round = [
            {int(j): old_round[i].get(int(j), -1) for j in topo.neighbors(i)}
            for i in range(topo.n)
        ]
        for i, start in enumerate(self._waiting):
            if start is not None and self._gate_ok(
                i, self.nodes[i].round_index
            ):
                self._waiting[i] = None
                self._push(max(start, self._time), PH_ANNOUNCE, i)

    # -- event machinery ---------------------------------------------------
    def _push(self, time: float, phase: int, payload) -> None:
        heapq.heappush(self._heap, (time, phase, self._seq, payload))
        self._seq += 1

    def _delay(self, edge: int, size: float) -> float:
        d = 0.0
        if self._lat is not None:
            d += float(self._lat[edge])
        if self._bw is not None:
            d += size / float(self._bw[edge])
        return d

    def _gate_ok(self, i: int, next_round: int) -> bool:
        if self.max_skew is None:
            return True
        floor = next_round - 1 - self.max_skew
        return all(r >= floor for r in self._view_round[i].values())

    # -- event handlers ----------------------------------------------------
    def _on_announce(self, t: float, i: int) -> None:
        node = self.nodes[i]
        if (
            self.switch_to_fos_at is not None
            and node.round_index == self.switch_to_fos_at
        ):
            node.scheme = "fos"
        for msg in node.announce():
            e = self._eid[i][msg.receiver]
            self._push(t + self._delay(e, 1.0), PH_DELIVER_ANNOUNCE, msg)
        self._push(t, PH_COMPUTE, i)
        self._push(t, PH_FINISH, i)

    def _on_deliver_announce(self, t: float, msg: LoadAnnounce) -> None:
        i = msg.receiver
        # An announce that crossed a churn patch (its edge no longer
        # exists) is silently dropped, but still re-checks the skew gate.
        heard = self._view_round[i].get(msg.sender)
        if heard is not None and msg.round_index >= heard:
            self._view_round[i][msg.sender] = msg.round_index
            self._view_val[i][msg.sender] = msg.normalized_load
        start = self._waiting[i]
        if start is not None and self._gate_ok(i, self.nodes[i].round_index):
            self._waiting[i] = None
            self._push(max(start, t), PH_ANNOUNCE, i)

    def _on_compute(self, t: float, i: int) -> None:
        node = self.nodes[i]
        r = node.round_index
        views = self._view_val[i]
        rounds_heard = self._view_round[i]
        for j in node.neighbors:
            s = r - rounds_heard[j]
            if s < 0:
                s = 0  # the neighbour is ahead — its view is fresh
            self._stale_sum += s
            if s > self.max_staleness:
                self.max_staleness = s
            self._stale_count += 1
        node.set_neighbor_loads(views)
        transfers = node.compute_transfers()
        node.apply_send_phase()

        # Engine-side per-edge flow record (sign: edge_u -> edge_v
        # positive).  Senders — including zero-token senders — write the
        # edge; the scheduled-receiver side leaves it to the sender.
        sent = node._sent_this_round
        for j, f in node._pending_scheduled.items():
            e = self._eid[i][j]
            if f == 0.0:
                self._edge_flow[e] = 0.0
            elif f > 0.0:
                amount = sent[j]
                self._edge_flow[e] = amount if i < j else -amount

        for msg in transfers:
            e = self._eid[i][msg.receiver]
            size = 1.0 + abs(msg.amount)
            self._in_flight_amount += msg.amount
            self._in_flight_messages += 1
            if self.faults.drops(msg, msg.round_index):
                bounce = Bounce(
                    sender=msg.sender,
                    receiver=msg.receiver,
                    round_index=msg.round_index,
                    amount=msg.amount,
                )
                self._push(t + 2.0 * self._delay(e, size), PH_DELIVER, bounce)
            else:
                self._push(t + self._delay(e, size), PH_DELIVER, msg)

    def _on_deliver(self, t: float, msg) -> None:
        self._in_flight_amount -= msg.amount
        self._in_flight_messages -= 1
        if isinstance(msg, Bounce) or (
            msg.sender not in self.nodes[msg.receiver].prev_flow
        ):
            # The link failed — or a churn patch removed the edge (or
            # crashed the receiver) while the tokens were in flight: the
            # tokens return to their sender, which credits them back and
            # voids the edge's remembered flow, the same accounting the
            # synchronous engine applies inline.
            sender = self.nodes[msg.sender]
            sender.load += msg.amount
            if msg.receiver in sender.prev_flow:
                sender.prev_flow[msg.receiver] = 0.0
            e = self._eid[msg.sender].get(msg.receiver)
            if e is not None:
                self._edge_flow[e] = 0.0
            self.bounced_count += 1
        else:
            self.nodes[msg.receiver].receive_transfer(msg)
            self._received[msg.receiver].add(msg.sender)
            self.delivered_count += 1

    def _on_finish(self, t: float, i: int) -> None:
        node = self.nodes[i]
        node.finish_round(tuple(self._received[i]))
        self._received[i].clear()
        if node.round_index == self._target:
            self._behind -= 1
        next_start = t + 1.0
        if self._gate_ok(i, node.round_index):
            self._push(next_start, PH_ANNOUNCE, i)
        else:
            self._waiting[i] = next_start

    # -- public surface ----------------------------------------------------
    def step(self) -> None:
        """Advance the global round count by one.

        Pops events until every node has finished round
        ``self.round_index`` (nodes are free to have run further ahead).
        """
        target = self.round_index + 1
        self._target = target
        self._behind = sum(
            1 for node in self.nodes if node.round_index < target
        )
        while self._behind > 0:
            if not self._heap:  # pragma: no cover - gate liveness guard
                raise SimulationError(
                    "async event queue drained before the round completed"
                )
            t, phase, _, payload = heapq.heappop(self._heap)
            self._time = t
            if phase == PH_ANNOUNCE:
                self._on_announce(t, payload)
            elif phase == PH_DELIVER_ANNOUNCE:
                self._on_deliver_announce(t, payload)
            elif phase == PH_COMPUTE:
                self._on_compute(t, payload)
            elif phase == PH_DELIVER:
                self._on_deliver(t, payload)
            else:
                self._on_finish(t, payload)
        self.round_index = target

    def flows(self) -> np.ndarray:
        """Last computed shipment per edge (``edge_u -> edge_v`` positive).

        Exact (bit-identical to :meth:`SyncNetwork.flows`) at zero
        latency; under skew it is the engine-side observability record —
        the two endpoints of an edge no longer share a consistent flow
        history, which is precisely the regime under study.
        """
        return self._edge_flow.copy()

    def inject_work(self, deltas: np.ndarray) -> Tuple[float, float, float]:
        """Deliver per-node workload deltas at each node's *local* round.

        Same accounting as the synchronous engine; under skew the
        injections land in whatever local round each node is in.
        """
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.shape != (self.topo.n,):
            raise ConfigurationError(
                f"work deltas have shape {deltas.shape}, "
                f"expected ({self.topo.n},)"
            )
        arrived = departed = clamped = 0.0
        for i, node in enumerate(self.nodes):
            d = float(deltas[i])
            if d == 0.0:
                continue
            arrive = d if d > 0.0 else 0.0
            want = -d if d < 0.0 else 0.0
            consumed = node.receive_work(
                WorkInjection(
                    sender=-1,
                    receiver=i,
                    round_index=node.round_index,
                    arrive=arrive,
                    depart=want,
                )
            )
            arrived += arrive
            departed += consumed
            clamped += want - consumed
        return arrived, departed, clamped

    @property
    def total_load(self) -> float:
        """Total load including tokens currently in flight (conserved)."""
        return float(self.loads().sum()) + self._in_flight_amount

    @property
    def in_flight(self) -> int:
        """Number of token shipments currently traversing links."""
        return self._in_flight_messages

    @property
    def mean_staleness(self) -> float:
        """Mean age, in rounds, of the neighbour loads used by computes.

        0 everywhere in the synchronous regime; ``ceil(latency)`` on a
        uniform-latency graph once the pipeline fills.
        """
        if self._stale_count == 0:
            return 0.0
        return self._stale_sum / self._stale_count

    @property
    def time(self) -> float:
        """Simulation time of the last processed event."""
        return self._time
