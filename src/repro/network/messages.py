"""Message types for the synchronous message-passing substrate.

The paper's model assumes synchronous rounds in which nodes "are only allowed
to communicate with their direct neighbors".  One balancing round decomposes
into two message exchanges:

1. **LoadAnnounce** — every node tells each neighbour its current
   speed-normalised load ``x_i / s_i`` (FOS/SOS flows depend only on these),
2. **TokenTransfer** — the edge's sender ships the (rounded) number of
   tokens.

A **Hello** message is exchanged once during setup so nodes learn their
neighbours' speeds and degrees (needed for the ``alpha_ij`` computation,
which depends on both endpoint degrees).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Message", "Hello", "LoadAnnounce", "TokenTransfer", "Bounce",
    "WorkInjection",
]


@dataclass(frozen=True)
class Message:
    """Base message: every message knows its sender and addressee."""

    sender: int
    receiver: int


@dataclass(frozen=True)
class Hello(Message):
    """Setup-time introduction carrying static node attributes."""

    speed: float
    degree: int


@dataclass(frozen=True)
class LoadAnnounce(Message):
    """Per-round broadcast of the sender's normalised load ``x_i / s_i``."""

    round_index: int
    normalized_load: float


@dataclass(frozen=True)
class TokenTransfer(Message):
    """Integral (or fractional, for idealised runs) load shipment."""

    round_index: int
    amount: float


@dataclass(frozen=True)
class Bounce(Message):
    """A failed :class:`TokenTransfer` returning to its sender.

    ``sender``/``receiver``/``round_index``/``amount`` are those of the
    original shipment; the event-driven engine delivers the bounce back at
    ``sender`` after a round trip on the link, crediting the tokens and
    voiding the edge's remembered flow (load is conserved under arbitrary
    fault schedules).  The synchronous engine applies the same credit
    inline at the end of the round.
    """

    round_index: int
    amount: float


@dataclass(frozen=True)
class WorkInjection(Message):
    """External workload delta delivered to one node (dynamic regime).

    ``arrive`` tokens are created at the receiver, ``depart`` tokens are
    *requested* to be consumed — the node clamps consumption at its
    available non-negative load and reports what it actually consumed.  The
    sender is the outside world (``sender == -1``).
    """

    round_index: int
    arrive: float
    depart: float
