"""Parameter sweeps: convergence-time scaling measurements.

The paper's quantitative core is the convergence-time law — FOS needs
``O(log(Kn)/(1-lambda))`` rounds, SOS ``O(log(Kn)/sqrt(1-lambda))`` — so on
a ``k x k`` torus (gap ``~ 1/k^2``) the balancing time should scale like
``k^2`` for FOS but only ``k`` for SOS.  :func:`torus_size_sweep` measures
the rounds-to-balance across torus sizes and :func:`fit_power_law` extracts
the exponent, which the scaling bench compares against 2 and 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..core import (
    FirstOrderScheme,
    LoadBalancingProcess,
    SecondOrderScheme,
    Simulator,
    beta_opt,
    point_load,
    torus_lambda,
)
from ..graphs import torus_2d
from ..analysis import convergence_round

__all__ = ["SweepPoint", "torus_size_sweep", "fit_power_law"]


@dataclass(frozen=True)
class SweepPoint:
    """One measurement of a size sweep."""

    size: int
    n: int
    lam: float
    rounds_to_balance: Optional[int]


def torus_size_sweep(
    sizes: Sequence[int],
    kind: str = "sos",
    threshold: float = 10.0,
    average_load: int = 1000,
    round_cap: int = 50000,
    seed: int = 0,
) -> List[SweepPoint]:
    """Measure rounds-to-balance of FOS or SOS across torus sizes.

    Each instance runs the discrete (randomized-excess) scheme from a point
    load until the max-above-average stays below ``threshold`` for three
    consecutive rounds, using an adaptive round budget derived from the
    theoretical law (capped at ``round_cap``).
    """
    if kind not in ("fos", "sos"):
        raise ConfigurationError(f"kind must be 'fos' or 'sos', got {kind!r}")
    points: List[SweepPoint] = []
    for size in sizes:
        topo = torus_2d(size, size)
        lam = torus_lambda((size, size))
        gap = 1.0 - lam
        k_disc = average_load * topo.n
        if kind == "fos":
            scheme = FirstOrderScheme(topo)
            budget = 6.0 * np.log(k_disc) / gap
        else:
            scheme = SecondOrderScheme(topo, beta=beta_opt(lam))
            budget = 6.0 * np.log(k_disc) / np.sqrt(gap)
        rounds = int(min(budget, round_cap))
        proc = LoadBalancingProcess(
            scheme, rounding="randomized-excess", rng=np.random.default_rng(seed)
        )
        result = Simulator(proc).run(point_load(topo, k_disc), rounds)
        points.append(
            SweepPoint(
                size=size,
                n=topo.n,
                lam=lam,
                rounds_to_balance=convergence_round(
                    result, threshold=threshold, sustained=3
                ),
            )
        )
    return points


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ~ c * x^e`` in log-log space.

    Returns ``(exponent, prefactor)``; requires at least two positive
    samples.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = (x > 0) & (y > 0)
    if mask.sum() < 2:
        raise ConfigurationError("need at least two positive samples to fit")
    exponent, intercept = np.polyfit(np.log(x[mask]), np.log(y[mask]), 1)
    return float(exponent), float(np.exp(intercept))
