"""Parameter sweeps: convergence-time scaling and replica ensembles.

The paper's quantitative core is the convergence-time law — FOS needs
``O(log(Kn)/(1-lambda))`` rounds, SOS ``O(log(Kn)/sqrt(1-lambda))`` — so on
a ``k x k`` torus (gap ``~ 1/k^2``) the balancing time should scale like
``k^2`` for FOS but only ``k`` for SOS.  :func:`torus_size_sweep` measures
the rounds-to-balance across torus sizes and :func:`fit_power_law` extracts
the exponent, which the scaling bench compares against 2 and 1.

:func:`replica_ensemble` is the ensemble-throughput path: it submits a whole
batch of seeds/initial loads as *one* engine call (the batched backend runs
every replica per vectorised step; ``engine="sharded"`` additionally splits
the batch across worker processes, bit-identical to the batched run) and
reduces the per-replica results to mean/std statistics of the Section VI
metrics.

:func:`dynamic_replica_ensemble` is the same idea for the dynamic regime:
the full cross product seeds x arrival-models x initial-loads goes to the
engine as *one* batched dynamic call, and the per-replica
:class:`~repro.core.dynamic.DynamicResult` objects reduce to steady-state
imbalance statistics per arrival model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..core import (
    DynamicResult,
    SimulationResult,
    beta_opt,
    make_arrival_model,
    point_load,
    torus_lambda,
    uniform_load,
)
from ..engines import EngineConfig, make_engine
from ..graphs import Topology, torus_2d
from ..analysis import convergence_round

__all__ = [
    "SweepPoint",
    "EnsembleResult",
    "DynamicEnsembleResult",
    "torus_size_sweep",
    "replica_ensemble",
    "dynamic_replica_ensemble",
    "ensemble_series",
    "fit_power_law",
]


@dataclass(frozen=True)
class SweepPoint:
    """One measurement of a size sweep."""

    size: int
    n: int
    lam: float
    rounds_to_balance: Optional[int]


def torus_size_sweep(
    sizes: Sequence[int],
    kind: str = "sos",
    threshold: float = 10.0,
    average_load: int = 1000,
    round_cap: int = 50000,
    seed: int = 0,
    engine: str = "reference",
) -> List[SweepPoint]:
    """Measure rounds-to-balance of FOS or SOS across torus sizes.

    Each instance runs the discrete (randomized-excess) scheme from a point
    load until the max-above-average stays below ``threshold`` for three
    consecutive rounds, using an adaptive round budget derived from the
    theoretical law (capped at ``round_cap``).  ``engine`` picks the
    execution backend for every instance.
    """
    if kind not in ("fos", "sos"):
        raise ConfigurationError(f"kind must be 'fos' or 'sos', got {kind!r}")
    backend = make_engine(engine)
    points: List[SweepPoint] = []
    for size in sizes:
        topo = torus_2d(size, size)
        lam = torus_lambda((size, size))
        gap = 1.0 - lam
        k_disc = average_load * topo.n
        if kind == "fos":
            budget = 6.0 * np.log(k_disc) / gap
        else:
            budget = 6.0 * np.log(k_disc) / np.sqrt(gap)
        config = EngineConfig(
            scheme=kind,
            beta=beta_opt(lam) if kind == "sos" else 1.0,
            rounding="randomized-excess",
            rounds=int(min(budget, round_cap)),
            seed=seed,
        )
        result = backend.run(topo, config, point_load(topo, k_disc))[0]
        points.append(
            SweepPoint(
                size=size,
                n=topo.n,
                lam=lam,
                rounds_to_balance=convergence_round(
                    result, threshold=threshold, sustained=3
                ),
            )
        )
    return points


@dataclass
class EnsembleResult:
    """A replica ensemble's per-replica results plus reduced statistics.

    ``stats`` maps ``<metric>_mean`` / ``<metric>_std`` over the final
    recorded round of every replica, plus the distribution of
    rounds-to-balance (``None`` entries excluded from the moments but
    counted in ``unconverged``).
    """

    results: List[SimulationResult]
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        return len(self.results)


def replica_ensemble(
    topo: Topology,
    config: EngineConfig,
    initial_loads: Optional[np.ndarray] = None,
    n_replicas: int = 16,
    average_load: int = 1000,
    threshold: float = 10.0,
    engine: str = "batched",
) -> EnsembleResult:
    """Run ``n_replicas`` independent replicas as one batched engine call.

    When ``initial_loads`` is omitted every replica starts from the paper's
    point load; replicas always differ in their random streams (replica
    ``b`` derives from ``config.seed + b`` on the per-replica backends, and
    from the spawned stream ``rounding_stream(config.seed, b)`` on the
    vectorised ones).  ``engine="sharded"`` (with ``config.workers``) runs
    the same ensemble split across worker processes — the per-replica
    results are bit-identical to ``engine="batched"``.
    """
    if initial_loads is None:
        if n_replicas < 1:
            raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
        initial_loads = np.tile(point_load(topo, average_load * topo.n), (n_replicas, 1))
    results = make_engine(engine).run(topo, config, initial_loads)
    finals = {
        name: np.array([r.series(name)[-1] for r in results])
        for name in ("max_minus_avg", "max_local_diff", "min_transient")
    }
    stats: Dict[str, float] = {}
    for name, values in finals.items():
        stats[f"{name}_mean"] = float(values.mean())
        stats[f"{name}_std"] = float(values.std())
    balance_rounds = [
        convergence_round(r, threshold=threshold, sustained=1) for r in results
    ]
    converged = [r for r in balance_rounds if r is not None]
    stats["unconverged"] = float(len(balance_rounds) - len(converged))
    if converged:
        stats["rounds_to_balance_mean"] = float(np.mean(converged))
        stats["rounds_to_balance_std"] = float(np.std(converged))
    return EnsembleResult(results=results, stats=stats)


@dataclass
class DynamicEnsembleResult:
    """A dynamic ensemble's per-replica results plus reduced statistics.

    ``labels[b]`` identifies replica ``b`` as ``(model_key, load_index,
    seed)``; ``model_keys`` maps each key to the model's repr.  ``stats``
    reduces every model's replicas to steady-state imbalance moments, the
    mean final total, and exact arrival/departure volumes.
    """

    results: List[DynamicResult]
    labels: List[Tuple[str, int, int]]
    model_keys: Dict[str, str] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        return len(self.results)


def dynamic_replica_ensemble(
    topo: Topology,
    config: EngineConfig,
    arrival_models: Sequence,
    seeds: Sequence[int] = (0,),
    initial_loads: Optional[np.ndarray] = None,
    average_load: int = 100,
    engine: str = "batched",
    tail_fraction: float = 0.5,
) -> DynamicEnsembleResult:
    """Run seeds x arrival-models x initial-loads as ONE batched dynamic call.

    Every combination becomes one replica of a single
    :meth:`~repro.engines.base.Engine.run_dynamic` submission (models outer,
    loads middle, seeds inner).  Each replica's *arrival* stream is keyed by
    its seed value (``arrival_stream(config.seed, s)``), so same-seed
    replicas share their arrival randomness across models — common random
    numbers — independent of batch position.  (The rounding stream defaults
    to the batch-position key, so with randomized roundings a replica's
    full trajectory still depends on the ensemble composition; pin
    ``config.replica_keys`` — or use a deterministic rounding — when exact
    position-independence matters.)  When
    ``initial_loads`` is omitted every replica starts from the uniform load
    (``average_load`` per node), the natural base state of the dynamic
    regime.
    """
    models = [make_arrival_model(m) for m in arrival_models]
    if not models:
        raise ConfigurationError("need at least one arrival model")
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if initial_loads is None:
        initial_loads = uniform_load(topo, average_load)[None, :]
    else:
        initial_loads = np.asarray(initial_loads, dtype=np.float64)
        if initial_loads.ndim == 1:
            initial_loads = initial_loads[None, :]
        if initial_loads.ndim != 2 or initial_loads.shape[1] != topo.n:
            raise ConfigurationError(
                f"initial loads have shape {initial_loads.shape}, "
                f"expected (n,) or (L, n) with n={topo.n}"
            )
    n_loads = initial_loads.shape[0]
    n_replicas = len(models) * n_loads * len(seeds)

    batch_loads = np.empty((n_replicas, topo.n))
    per_replica_models: List = []
    stream_keys: List[int] = []
    labels: List[Tuple[str, int, int]] = []
    model_keys: Dict[str, str] = {}
    b = 0
    for mi, model in enumerate(models):
        key = f"m{mi}"
        model_keys[key] = repr(model)
        for li in range(n_loads):
            for s in seeds:
                batch_loads[b] = initial_loads[li]
                per_replica_models.append(model)
                stream_keys.append(s)
                labels.append((key, li, s))
                b += 1
    # Batch-wide sampling draws every replica from one shared stream, so the
    # per-seed stream keys (common random numbers across models) do not
    # apply — and the engine rejects them.
    cfg = replace(
        config,
        arrivals=per_replica_models,
        arrival_seeds=(
            stream_keys if config.arrival_sampling != "batch" else None
        ),
    )
    results = make_engine(engine).run_dynamic(topo, cfg, batch_loads)

    stats: Dict[str, float] = {"n_replicas": float(n_replicas)}
    for mi, model in enumerate(models):
        key = f"m{mi}"
        group = [
            r for r, (k, _, _) in zip(results, labels) if k == key
        ]
        steady = np.array(
            [r.steady_state_imbalance(tail_fraction) for r in group]
        )
        stats[f"{key}_steady_state_mean"] = float(steady.mean())
        stats[f"{key}_steady_state_std"] = float(steady.std())
        stats[f"{key}_final_total_mean"] = float(
            np.mean([r.series("total_load")[-1] for r in group])
        )
        stats[f"{key}_arrived_total_mean"] = float(
            np.mean([r.series("arrived").sum() for r in group])
        )
        stats[f"{key}_departed_total_mean"] = float(
            np.mean([r.series("departed").sum() for r in group])
        )
    return DynamicEnsembleResult(
        results=results, labels=labels, model_keys=model_keys, stats=stats
    )


def ensemble_series(
    results: Sequence[SimulationResult], fieldname: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean and standard deviation of one metric across replica results.

    All results must share a record grid (same engine call, or same
    ``record_every``); returns ``(mean, std)`` over the replica axis, one
    entry per recorded round.  This is how the seed-averaged figure drivers
    reduce a batched ensemble to the paper's curves.
    """
    if not results:
        raise ConfigurationError("need at least one replica result")
    stacked = np.stack([np.asarray(r.series(fieldname)) for r in results])
    return stacked.mean(axis=0), stacked.std(axis=0)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ~ c * x^e`` in log-log space.

    Returns ``(exponent, prefactor)``; requires at least two positive
    samples.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = (x > 0) & (y > 0)
    if mask.sum() < 2:
        raise ConfigurationError("need at least two positive samples to fit")
    exponent, intercept = np.polyfit(np.log(x[mask]), np.log(y[mask]), 1)
    return float(exponent), float(np.exp(intercept))
