"""Parameter sweeps: convergence-time scaling and replica ensembles.

The paper's quantitative core is the convergence-time law — FOS needs
``O(log(Kn)/(1-lambda))`` rounds, SOS ``O(log(Kn)/sqrt(1-lambda))`` — so on
a ``k x k`` torus (gap ``~ 1/k^2``) the balancing time should scale like
``k^2`` for FOS but only ``k`` for SOS.  :func:`torus_size_sweep` measures
the rounds-to-balance across torus sizes and :func:`fit_power_law` extracts
the exponent, which the scaling bench compares against 2 and 1.

:func:`replica_ensemble` is the ensemble-throughput path: it submits a whole
batch of seeds/initial loads as *one* engine call (the batched backend runs
every replica per vectorised step; ``engine="sharded"`` additionally splits
the batch across worker processes, bit-identical to the batched run) and
reduces the per-replica results to mean/std statistics of the Section VI
metrics.

:func:`dynamic_replica_ensemble` is the same idea for the dynamic regime:
the full cross product seeds x arrival-models x initial-loads goes to the
engine as *one* batched dynamic call, and the per-replica
:class:`~repro.core.dynamic.DynamicResult` objects reduce to steady-state
imbalance statistics per arrival model.

:class:`ParamGrid` / :func:`sweep_ensemble` generalise this to *parameter*
sweeps: every grid point (switch round, beta, alpha scale, initial-load
scale, arrival-rate scale) times every seed becomes one replica of a
single engine call, carried by the per-replica parameter planes of
:class:`~repro.engines.ReplicaParams`.  The fig08 switch sweep and the
beta-sensitivity sweep both run this way — sweep throughput scales with
the batched/sharded engines instead of with Python loop iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..core import (
    DynamicResult,
    SimulationResult,
    beta_opt,
    make_arrival_model,
    point_load,
    torus_lambda,
    uniform_load,
)
from ..engines import EngineConfig, ReplicaParams, make_engine
from ..graphs import Topology, torus_2d
from ..analysis import convergence_round

__all__ = [
    "SweepPoint",
    "EnsembleResult",
    "DynamicEnsembleResult",
    "ParamGrid",
    "SweepEnsembleResult",
    "SWEEP_KEYS",
    "torus_size_sweep",
    "replica_ensemble",
    "dynamic_replica_ensemble",
    "sweep_ensemble",
    "beta_sensitivity_sweep",
    "ensemble_series",
    "fit_power_law",
]


@dataclass(frozen=True)
class SweepPoint:
    """One measurement of a size sweep."""

    size: int
    n: int
    lam: float
    rounds_to_balance: Optional[int]


def torus_size_sweep(
    sizes: Sequence[int],
    kind: str = "sos",
    threshold: float = 10.0,
    average_load: int = 1000,
    round_cap: int = 50000,
    seed: int = 0,
    engine: str = "reference",
) -> List[SweepPoint]:
    """Measure rounds-to-balance of FOS or SOS across torus sizes.

    Each instance runs the discrete (randomized-excess) scheme from a point
    load until the max-above-average stays below ``threshold`` for three
    consecutive rounds, using an adaptive round budget derived from the
    theoretical law (capped at ``round_cap``).  ``engine`` picks the
    execution backend for every instance.
    """
    if kind not in ("fos", "sos"):
        raise ConfigurationError(f"kind must be 'fos' or 'sos', got {kind!r}")
    backend = make_engine(engine)
    points: List[SweepPoint] = []
    for size in sizes:
        topo = torus_2d(size, size)
        lam = torus_lambda((size, size))
        gap = 1.0 - lam
        k_disc = average_load * topo.n
        if kind == "fos":
            budget = 6.0 * np.log(k_disc) / gap
        else:
            budget = 6.0 * np.log(k_disc) / np.sqrt(gap)
        config = EngineConfig(
            scheme=kind,
            beta=beta_opt(lam) if kind == "sos" else 1.0,
            rounding="randomized-excess",
            rounds=int(min(budget, round_cap)),
            seed=seed,
        )
        result = backend.run(topo, config, point_load(topo, k_disc))[0]
        points.append(
            SweepPoint(
                size=size,
                n=topo.n,
                lam=lam,
                rounds_to_balance=convergence_round(
                    result, threshold=threshold, sustained=3
                ),
            )
        )
    return points


@dataclass
class EnsembleResult:
    """A replica ensemble's per-replica results plus reduced statistics.

    ``stats`` maps ``<metric>_mean`` / ``<metric>_std`` over the final
    recorded round of every replica, plus the distribution of
    rounds-to-balance (``None`` entries excluded from the moments but
    counted in ``unconverged``).
    """

    results: List[SimulationResult]
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        return len(self.results)


def replica_ensemble(
    topo: Topology,
    config: EngineConfig,
    initial_loads: Optional[np.ndarray] = None,
    n_replicas: int = 16,
    average_load: int = 1000,
    threshold: float = 10.0,
    engine: str = "batched",
) -> EnsembleResult:
    """Run ``n_replicas`` independent replicas as one batched engine call.

    When ``initial_loads`` is omitted every replica starts from the paper's
    point load; replicas always differ in their random streams (replica
    ``b`` derives from ``config.seed + b`` on the per-replica backends, and
    from the spawned stream ``rounding_stream(config.seed, b)`` on the
    vectorised ones).  ``engine="sharded"`` (with ``config.workers``) runs
    the same ensemble split across worker processes — the per-replica
    results are bit-identical to ``engine="batched"``.  Setting
    ``config.pool=True`` additionally routes every sharded call in the
    process through the shared persistent worker pool
    (:func:`repro.engines.pool.default_pool`), so an ensemble sweep reuses
    one set of warm workers — and their cached topology operators — for
    all of its points.
    """
    if initial_loads is None:
        if n_replicas < 1:
            raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
        initial_loads = np.tile(point_load(topo, average_load * topo.n), (n_replicas, 1))
    results = make_engine(engine).run(topo, config, initial_loads)
    finals = {
        name: np.array([r.series(name)[-1] for r in results])
        for name in ("max_minus_avg", "max_local_diff", "min_transient")
    }
    stats: Dict[str, float] = {}
    for name, values in finals.items():
        stats[f"{name}_mean"] = float(values.mean())
        stats[f"{name}_std"] = float(values.std())
    balance_rounds = [
        convergence_round(r, threshold=threshold, sustained=1) for r in results
    ]
    converged = [r for r in balance_rounds if r is not None]
    stats["unconverged"] = float(len(balance_rounds) - len(converged))
    if converged:
        stats["rounds_to_balance_mean"] = float(np.mean(converged))
        stats["rounds_to_balance_std"] = float(np.std(converged))
    return EnsembleResult(results=results, stats=stats)


@dataclass
class DynamicEnsembleResult:
    """A dynamic ensemble's per-replica results plus reduced statistics.

    ``labels[b]`` identifies replica ``b`` as ``(model_key, load_index,
    seed)``; ``model_keys`` maps each key to the model's repr.  ``stats``
    reduces every model's replicas to steady-state imbalance moments, the
    mean final total, and exact arrival/departure volumes.
    """

    results: List[DynamicResult]
    labels: List[Tuple[str, int, int]]
    model_keys: Dict[str, str] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        return len(self.results)


def dynamic_replica_ensemble(
    topo: Topology,
    config: EngineConfig,
    arrival_models: Sequence,
    seeds: Sequence[int] = (0,),
    initial_loads: Optional[np.ndarray] = None,
    average_load: int = 100,
    engine: str = "batched",
    tail_fraction: float = 0.5,
) -> DynamicEnsembleResult:
    """Run seeds x arrival-models x initial-loads as ONE batched dynamic call.

    Every combination becomes one replica of a single
    :meth:`~repro.engines.base.Engine.run_dynamic` submission (models outer,
    loads middle, seeds inner).  Each replica's *arrival* stream is keyed by
    its seed value (``arrival_stream(config.seed, s)``), so same-seed
    replicas share their arrival randomness across models — common random
    numbers — independent of batch position.  (The rounding stream defaults
    to the batch-position key, so with randomized roundings a replica's
    full trajectory still depends on the ensemble composition; pin
    ``config.replica_keys`` — or use a deterministic rounding — when exact
    position-independence matters.)  When
    ``initial_loads`` is omitted every replica starts from the uniform load
    (``average_load`` per node), the natural base state of the dynamic
    regime.
    """
    models = [make_arrival_model(m) for m in arrival_models]
    if not models:
        raise ConfigurationError("need at least one arrival model")
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if initial_loads is None:
        initial_loads = uniform_load(topo, average_load)[None, :]
    else:
        initial_loads = np.asarray(initial_loads, dtype=np.float64)
        if initial_loads.ndim == 1:
            initial_loads = initial_loads[None, :]
        if initial_loads.ndim != 2 or initial_loads.shape[1] != topo.n:
            raise ConfigurationError(
                f"initial loads have shape {initial_loads.shape}, "
                f"expected (n,) or (L, n) with n={topo.n}"
            )
    n_loads = initial_loads.shape[0]
    n_replicas = len(models) * n_loads * len(seeds)

    batch_loads = np.empty((n_replicas, topo.n))
    per_replica_models: List = []
    stream_keys: List[int] = []
    labels: List[Tuple[str, int, int]] = []
    model_keys: Dict[str, str] = {}
    b = 0
    for mi, model in enumerate(models):
        key = f"m{mi}"
        model_keys[key] = repr(model)
        for li in range(n_loads):
            for s in seeds:
                batch_loads[b] = initial_loads[li]
                per_replica_models.append(model)
                stream_keys.append(s)
                labels.append((key, li, s))
                b += 1
    # Batch-wide sampling draws every replica from one shared stream, so the
    # per-seed stream keys (common random numbers across models) do not
    # apply — and the engine rejects them.
    cfg = replace(
        config,
        arrivals=per_replica_models,
        arrival_seeds=(
            stream_keys if config.arrival_sampling != "batch" else None
        ),
    )
    results = make_engine(engine).run_dynamic(topo, cfg, batch_loads)

    stats: Dict[str, float] = {"n_replicas": float(n_replicas)}
    for mi, model in enumerate(models):
        key = f"m{mi}"
        group = [
            r for r, (k, _, _) in zip(results, labels) if k == key
        ]
        steady = np.array(
            [r.steady_state_imbalance(tail_fraction) for r in group]
        )
        stats[f"{key}_steady_state_mean"] = float(steady.mean())
        stats[f"{key}_steady_state_std"] = float(steady.std())
        stats[f"{key}_final_total_mean"] = float(
            np.mean([r.series("total_load")[-1] for r in group])
        )
        stats[f"{key}_arrived_total_mean"] = float(
            np.mean([r.series("arrived").sum() for r in group])
        )
        stats[f"{key}_departed_total_mean"] = float(
            np.mean([r.series("departed").sum() for r in group])
        )
    return DynamicEnsembleResult(
        results=results, labels=labels, model_keys=model_keys, stats=stats
    )


#: Grid keys a :class:`ParamGrid` accepts, mapped to the
#: :class:`~repro.engines.ReplicaParams` plane each one fills.
SWEEP_KEYS: Dict[str, str] = {
    "switch_round": "switch_rounds",
    "beta": "betas",
    "alpha_scale": "alpha_scales",
    "load_scale": "load_scales",
    "arrival_scale": "arrival_scales",
}


class ParamGrid:
    """A named parameter sweep grid, crossed into per-replica planes.

    Axes are given as keyword sequences over the keys of
    :data:`SWEEP_KEYS`::

        ParamGrid(switch_round=[None, 300, 500, 700, 900])   # fig08
        ParamGrid(beta=[1.0, 1.5, 1.9], alpha_scale=[0.5, 1.0])

    Points enumerate in row-major order (the first axis is outermost).  A
    ``switch_round`` of ``None`` (or any negative value) means "never
    switch" — the pure-SOS curve of a switch sweep.
    """

    def __init__(self, **axes):
        unknown = set(axes) - set(SWEEP_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep axes {sorted(unknown)}; "
                f"known: {sorted(SWEEP_KEYS)}"
            )
        if not axes:
            raise ConfigurationError("ParamGrid needs at least one axis")
        self.axes: Dict[str, list] = {}
        for key, values in axes.items():
            values = list(values)
            if not values:
                raise ConfigurationError(f"sweep axis {key!r} must not be empty")
            self.axes[key] = values

    @property
    def n_points(self) -> int:
        out = 1
        for values in self.axes.values():
            out *= len(values)
        return out

    def points(self) -> List[Dict[str, object]]:
        """Every grid point as an axis -> value dict, row-major order."""
        pts: List[Dict[str, object]] = [{}]
        for key, values in self.axes.items():
            pts = [dict(p, **{key: v}) for p in pts for v in values]
        return pts

    def labels(self) -> List[str]:
        """One compact ``key=value`` label per grid point."""

        def fmt(value) -> str:
            if value is None:
                return "never"
            if isinstance(value, float):
                return f"{value:g}"
            return str(value)

        return [
            ",".join(f"{key}={fmt(p[key])}" for key in self.axes)
            for p in self.points()
        ]

    def replica_params(self, n_seeds: int = 1) -> ReplicaParams:
        """The grid unrolled into :class:`~repro.engines.ReplicaParams`
        planes, each point's value repeated ``n_seeds`` consecutive times
        (seeds innermost — the layout :func:`sweep_ensemble` submits)."""
        if n_seeds < 1:
            raise ConfigurationError(f"n_seeds must be >= 1, got {n_seeds}")
        pts = self.points()
        planes = {
            plane: [p[key] for p in pts for _ in range(n_seeds)]
            for key, plane in SWEEP_KEYS.items()
            if key in self.axes
        }
        return ReplicaParams(**planes)

    def __repr__(self) -> str:
        axes = ", ".join(f"{k}x{len(v)}" for k, v in self.axes.items())
        return f"ParamGrid({axes}, {self.n_points} points)"


@dataclass
class SweepEnsembleResult:
    """A parameter sweep run as one engine call, plus per-point reductions.

    Replica layout: point ``i``'s seed replicas are the consecutive slice
    ``results[i * n_seeds : (i + 1) * n_seeds]`` (:meth:`point_results`).
    ``point_stats[i]`` reduces that group to final-imbalance moments and
    rounds-to-balance (static sweeps) or steady-state moments (dynamic
    sweeps); ``labels[i]`` names the grid point.
    """

    grid: ParamGrid
    points: List[Dict[str, object]]
    labels: List[str]
    n_seeds: int
    results: List
    point_stats: List[Dict[str, float]] = field(default_factory=list)
    dynamic: bool = False

    @property
    def n_replicas(self) -> int:
        return len(self.results)

    def point_results(self, index: int) -> List:
        """The seed-replica results of grid point ``index``."""
        if not 0 <= index < len(self.points):
            raise ConfigurationError(
                f"point index {index} out of range [0, {len(self.points)})"
            )
        return self.results[index * self.n_seeds : (index + 1) * self.n_seeds]

    def series(self, index: int, fieldname: str) -> Tuple[np.ndarray, np.ndarray]:
        """Seed-averaged ``(mean, std)`` series of one metric at one point."""
        return ensemble_series(self.point_results(index), fieldname)


def sweep_ensemble(
    topo: Topology,
    config: EngineConfig,
    grid: ParamGrid,
    initial_loads: Optional[np.ndarray] = None,
    n_seeds: int = 1,
    seeds: Optional[Sequence[int]] = None,
    average_load: int = 1000,
    threshold: float = 10.0,
    tail_fraction: float = 0.5,
    engine: str = "batched",
) -> SweepEnsembleResult:
    """Run a whole parameter grid as ONE engine call.

    Every grid point becomes ``n_seeds`` consecutive replicas of a single
    batched submission: the sweep axes travel as
    :class:`~repro.engines.ReplicaParams` planes, so the engine advances
    every sweep point per vectorised step (and the sharded engine splits
    them across worker processes, bit-identically).  With
    ``config.pool=True`` every sharded call of a multi-sweep study runs on
    the same persistent worker pool, amortising process startup and
    per-topology operator preparation across sweeps.

    On the vectorised engines the rounding-stream keys are pinned per
    point to the seed *values* (default ``0 .. n_seeds-1``), which are
    exactly the streams a standalone per-point
    :func:`replica_ensemble` call would hand its replicas — so the fused
    sweep reproduces the old one-call-per-point loop replica for replica:
    bit for bit for deterministic roundings, stream for stream for the
    randomized ones.  Dynamic sweeps (``config.arrivals`` set) pin the
    arrival streams the same way and reduce to steady-state statistics.

    ``initial_loads`` is one base load row ``(n,)`` (default: the paper's
    point load for static sweeps, the uniform load for dynamic ones);
    per-replica load families come from a ``load_scale`` axis.
    """
    if isinstance(grid, dict):
        grid = ParamGrid(**grid)
    backend = make_engine(engine)
    # The grid owns the per-replica planes and stream keys; silently
    # overwriting caller-set ones would run a different experiment than
    # the caller described, so a pre-set value is an error.
    for owned in ("replica_params", "replica_keys", "arrival_seeds"):
        if getattr(config, owned) is not None:
            raise ConfigurationError(
                f"sweep_ensemble builds config.{owned} from the grid; "
                "pass a config with it unset (sweep axes and seeds are "
                "the ParamGrid/seeds arguments)"
            )
    pts = grid.points()
    labels = grid.labels()
    if seeds is None:
        if n_seeds < 1:
            raise ConfigurationError(f"n_seeds must be >= 1, got {n_seeds}")
        seeds = list(range(int(n_seeds)))
    else:
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ConfigurationError("need at least one seed")
    n_seeds = len(seeds)
    params = grid.replica_params(n_seeds)
    dynamic = config.arrivals is not None
    if "arrival_scale" in grid.axes and not dynamic:
        raise ConfigurationError(
            "an arrival_scale axis needs a dynamic config (set "
            "config.arrivals)"
        )
    if initial_loads is None:
        initial_loads = (
            uniform_load(topo, average_load)
            if dynamic
            else point_load(topo, average_load * topo.n)
        )
    base = np.asarray(initial_loads, dtype=np.float64)
    if base.ndim != 1 or base.shape[0] != topo.n:
        raise ConfigurationError(
            f"sweep_ensemble takes one base load row (n,), got shape "
            f"{base.shape}; per-replica load families come from a "
            "load_scale axis"
        )
    batch = np.tile(base, (grid.n_points * n_seeds, 1))
    stream_keys = [s for _ in pts for s in seeds]
    cfg = replace(config, replica_params=params)
    if getattr(backend, "name", "") in ("batched", "sharded"):
        # The per-replica backends key streams by batch position and
        # reject pinned keys; the vectorised ones take the per-point seed
        # values so each point reproduces its standalone ensemble.
        cfg = replace(cfg, replica_keys=stream_keys)
    if dynamic:
        cfg = replace(
            cfg,
            arrival_seeds=(
                stream_keys if config.arrival_sampling != "batch" else None
            ),
        )
        results = backend.run_dynamic(topo, cfg, batch)
    else:
        results = backend.run(topo, cfg, batch)

    point_stats: List[Dict[str, float]] = []
    for i in range(grid.n_points):
        group = results[i * n_seeds : (i + 1) * n_seeds]
        stats: Dict[str, float] = {}
        if dynamic:
            steady = np.array(
                [r.steady_state_imbalance(tail_fraction) for r in group]
            )
            stats["steady_state_mean"] = float(steady.mean())
            stats["steady_state_std"] = float(steady.std())
            stats["final_total_mean"] = float(
                np.mean([r.series("total_load")[-1] for r in group])
            )
        else:
            finals = np.array([r.series("max_minus_avg")[-1] for r in group])
            stats["final_max_minus_avg_mean"] = float(finals.mean())
            stats["final_max_minus_avg_std"] = float(finals.std())
            balance = [
                convergence_round(r, threshold=threshold, sustained=1)
                for r in group
            ]
            converged = [r for r in balance if r is not None]
            stats["unconverged"] = float(len(balance) - len(converged))
            if converged:
                stats["rounds_to_balance_mean"] = float(np.mean(converged))
                stats["rounds_to_balance_std"] = float(np.std(converged))
        point_stats.append(stats)
    return SweepEnsembleResult(
        grid=grid,
        points=pts,
        labels=labels,
        n_seeds=n_seeds,
        results=results,
        point_stats=point_stats,
        dynamic=dynamic,
    )


def beta_sensitivity_sweep(
    side: int = 32,
    betas: Optional[Sequence[float]] = None,
    rounds: int = 3000,
    average_load: int = 1000,
    threshold: float = 10.0,
    seed: int = 0,
    n_seeds: int = 1,
    engine: str = "batched",
) -> Dict[str, object]:
    """SOS beta sensitivity on a ``side x side`` torus as ONE engine call.

    The classic ablation (convergence time is minimised near ``beta_opt``)
    ran one simulator loop per beta; here every ``(beta, seed)`` pair is a
    replica of a single :func:`sweep_ensemble` submission over a ``beta``
    axis.  Returns a JSON-friendly dict with the torus spectrum data, the
    betas swept, and the (seed-averaged) rounds until the max-above-average
    stays below ``threshold`` for three consecutive recorded rounds —
    ``None`` for betas that never balance within the budget.
    """
    topo = torus_2d(side, side)
    lam = torus_lambda((side, side))
    b_opt = beta_opt(lam)
    if betas is None:
        betas = [
            1.0,
            0.5 * (1.0 + b_opt),
            0.95 * b_opt,
            b_opt,
            min(1.999, 0.5 * (b_opt + 2.0)),
        ]
    betas = [float(b) for b in betas]
    config = EngineConfig(
        scheme="sos",
        beta=b_opt,
        rounding="randomized-excess",
        rounds=rounds,
        seed=seed,
    )
    sweep = sweep_ensemble(
        topo,
        config,
        ParamGrid(beta=betas),
        n_seeds=n_seeds,
        average_load=average_load,
        threshold=threshold,
        engine=engine,
    )
    rounds_to: Dict[str, Optional[float]] = {}
    for i, beta in enumerate(betas):
        per_seed = [
            convergence_round(r, threshold=threshold, sustained=3)
            for r in sweep.point_results(i)
        ]
        converged = [r for r in per_seed if r is not None]
        rounds_to[f"{beta:.6f}"] = float(np.mean(converged)) if converged else None
    return {
        "lambda": lam,
        "beta_opt": b_opt,
        "betas": betas,
        "n_seeds": sweep.n_seeds,
        "engine_calls": 1,
        "rounds_to_balance": rounds_to,
    }


def ensemble_series(
    results: Sequence[SimulationResult], fieldname: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean and standard deviation of one metric across replica results.

    All results must share a record grid (same engine call, or same
    ``record_every``); returns ``(mean, std)`` over the replica axis, one
    entry per recorded round.  This is how the seed-averaged figure drivers
    reduce a batched ensemble to the paper's curves.
    """
    if not results:
        raise ConfigurationError("need at least one replica result")
    stacked = np.stack([np.asarray(r.series(fieldname)) for r in results])
    return stacked.mean(axis=0), stacked.std(axis=0)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ~ c * x^e`` in log-log space.

    Returns ``(exponent, prefactor)``; requires at least two positive
    samples.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = (x > 0) & (y > 0)
    if mask.sum() < 2:
        raise ConfigurationError("need at least two positive samples to fit")
    exponent, intercept = np.polyfit(np.log(x[mask]), np.log(y[mask]), 1)
    return float(exponent), float(np.exp(intercept))
