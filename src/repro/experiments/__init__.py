"""Experiment harness: Table I configs, figure drivers, registry, reports."""

from .configs import (
    GRAPH_CONFIGS,
    PAPER_BETAS,
    BuiltGraph,
    GraphConfig,
    build_graph,
    engine_config,
)
from .tables import Table1Row, reproduce_table1
from .runner import EXPERIMENTS, list_experiments, run_experiment
from .report import format_record, format_summary, format_table
from .sweeps import (
    DynamicEnsembleResult,
    EnsembleResult,
    SweepPoint,
    dynamic_replica_ensemble,
    ensemble_series,
    fit_power_law,
    replica_ensemble,
    torus_size_sweep,
)
from . import figures

__all__ = [
    "GRAPH_CONFIGS",
    "PAPER_BETAS",
    "BuiltGraph",
    "GraphConfig",
    "build_graph",
    "engine_config",
    "Table1Row",
    "reproduce_table1",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
    "format_record",
    "format_summary",
    "format_table",
    "DynamicEnsembleResult",
    "EnsembleResult",
    "SweepPoint",
    "dynamic_replica_ensemble",
    "ensemble_series",
    "fit_power_law",
    "replica_ensemble",
    "torus_size_sweep",
    "figures",
]
