"""Experiment harness: Table I configs, figure drivers, registry, reports."""

from .configs import GRAPH_CONFIGS, PAPER_BETAS, BuiltGraph, GraphConfig, build_graph
from .tables import Table1Row, reproduce_table1
from .runner import EXPERIMENTS, list_experiments, run_experiment
from .report import format_record, format_summary, format_table
from .sweeps import SweepPoint, fit_power_law, torus_size_sweep
from . import figures

__all__ = [
    "GRAPH_CONFIGS",
    "PAPER_BETAS",
    "BuiltGraph",
    "GraphConfig",
    "build_graph",
    "Table1Row",
    "reproduce_table1",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
    "format_record",
    "format_summary",
    "format_table",
    "SweepPoint",
    "fit_power_law",
    "torus_size_sweep",
    "figures",
]
