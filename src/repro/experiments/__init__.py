"""Experiment harness: Table I configs, figure drivers, registry, reports."""

from .configs import (
    GRAPH_CONFIGS,
    PAPER_BETAS,
    BuiltGraph,
    GraphConfig,
    build_graph,
    engine_config,
)
from .tables import Table1Row, reproduce_table1
from .runner import EXPERIMENTS, list_experiments, run_experiment
from .report import format_record, format_summary, format_table
from .sweeps import (
    SWEEP_KEYS,
    DynamicEnsembleResult,
    EnsembleResult,
    ParamGrid,
    SweepEnsembleResult,
    SweepPoint,
    beta_sensitivity_sweep,
    dynamic_replica_ensemble,
    ensemble_series,
    fit_power_law,
    replica_ensemble,
    sweep_ensemble,
    torus_size_sweep,
)
from . import figures

__all__ = [
    "GRAPH_CONFIGS",
    "PAPER_BETAS",
    "BuiltGraph",
    "GraphConfig",
    "build_graph",
    "engine_config",
    "Table1Row",
    "reproduce_table1",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
    "format_record",
    "format_summary",
    "format_table",
    "SWEEP_KEYS",
    "DynamicEnsembleResult",
    "EnsembleResult",
    "ParamGrid",
    "SweepEnsembleResult",
    "SweepPoint",
    "beta_sensitivity_sweep",
    "dynamic_replica_ensemble",
    "ensemble_series",
    "fit_power_law",
    "replica_ensemble",
    "sweep_ensemble",
    "torus_size_sweep",
    "figures",
]
