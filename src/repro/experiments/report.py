"""Plain-text report formatting for experiment outputs.

The bench harness prints the reproduced tables/figures through these
helpers so runs are readable in CI logs without plotting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..io import ExperimentRecord

__all__ = ["format_table", "format_record", "format_summary"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with auto-sized columns."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.4e}"
        return f"{value:.6g}"
    return str(value)


def format_summary(summary: Dict[str, Any], indent: str = "  ") -> str:
    """Key/value block for an experiment summary."""
    if not summary:
        return indent + "(no summary)"
    width = max(len(k) for k in summary)
    return "\n".join(
        f"{indent}{k.ljust(width)} : {_fmt(v)}" for k, v in sorted(summary.items())
    )


def format_record(record: ExperimentRecord) -> str:
    """Human-readable rendering of a full experiment record."""
    lines = [f"=== {record.name} ==="]
    if record.params:
        lines.append("params:")
        lines.append(format_summary(record.params))
    lines.append("summary:")
    lines.append(format_summary(record.summary))
    if record.series:
        sizes = {k: len(v) for k, v in record.series.items()}
        lines.append(f"series: {sizes}")
    return "\n".join(lines)
