"""Figure drivers: one function per figure of the paper's Section VI.

Every ``figNN_*`` function runs the corresponding simulation at a chosen
scale (``"ci"`` by default — same construction laws as the paper, smaller
sizes; ``"paper"`` for the original sizes) and returns an
:class:`~repro.io.results.ExperimentRecord` whose ``series`` are the curves
of the figure and whose ``summary`` holds the headline quantities recorded
in ``EXPERIMENTS.md``.  The benchmark harness in ``benchmarks/`` calls these
and prints the rows.

Scaling note: round counts shrink with the spectral gap.  On the
``100 x 100`` torus the paper itself switches SOS -> FOS between rounds 300
and 900 (Figure 8), so the CI defaults below mirror the paper's *small*
torus setup exactly and scale the big-torus experiments onto it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import point_load, uniform_load
from ..engines import make_engine
from ..analysis import (
    TorusFourierAnalyzer,
    bump_period,
    convergence_round,
    detect_bumps,
    measured_speedup,
    remaining_imbalance,
)
from ..io import ExperimentRecord
from ..viz import load_to_grayscale
from .configs import BuiltGraph, build_graph, engine_config

__all__ = [
    "fig01_torus_sos_vs_fos",
    "fig02_initial_load",
    "fig03_discrete_vs_ideal",
    "fig04_05_switching",
    "fig06_ideal_error",
    "fig07_eigencoefficients",
    "fig08_switch_sweep",
    "fig09_11_renders",
    "fig12_random_graph",
    "fig13_hypercube",
    "fig14_rgg",
    "fig15_torus_combined",
]

#: Initial per-node average load used throughout Section VI.
DEFAULT_AVERAGE_LOAD = 1000


def _simulate(
    built: BuiltGraph,
    kind: str,
    rounds: int,
    rounding: str = "randomized-excess",
    seed: int = 0,
    switch_round: Optional[int] = None,
    keep_loads: bool = False,
    record_every: int = 1,
    average_load: int = DEFAULT_AVERAGE_LOAD,
    initial: Optional[np.ndarray] = None,
    engine: str = "reference",
):
    """Run one scheme on a built graph with the paper's default workload.

    Dispatches through the pluggable engine layer; ``engine="reference"``
    (the default) reproduces the classic per-round simulator exactly, while
    ``"batched"`` or ``"network"`` select the vectorised ensemble engine or
    the message-passing substrate.
    """
    topo = built.topo
    if initial is None:
        initial = point_load(topo, average_load * topo.n, node=0)
    if kind not in ("fos", "sos"):
        raise ValueError(f"unknown scheme kind {kind!r}")
    config = engine_config(
        built,
        scheme=kind,
        rounding=rounding,
        rounds=rounds,
        record_every=record_every,
        seed=seed,
        switch_round=switch_round,
        keep_loads=keep_loads,
    )
    return make_engine(engine).run(topo, config, initial)[0]


def _default_rounds(built: BuiltGraph, factor: float = 3.0, cap: int = 20000) -> int:
    """Round budget ~ ``factor`` x the continuous SOS balancing time."""
    k_disc = DEFAULT_AVERAGE_LOAD * built.n
    horizon = factor * math.log(k_disc) / math.sqrt(max(1.0 - built.lam, 1e-12))
    return min(int(horizon) + 10, cap)


# ----------------------------------------------------------------------
# Figure 1 — SOS metrics + FOS comparison on the big torus
# ----------------------------------------------------------------------

def fig01_torus_sos_vs_fos(
    scale: str = "ci",
    rounds: Optional[int] = None,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 1: max-avg, max local difference and potential under SOS,
    with the FOS max-avg curve as comparison (two-dimensional torus)."""
    built = build_graph("torus-1000", scale)
    rounds = rounds or _default_rounds(built)
    sos = _simulate(built, "sos", rounds, seed=seed, engine=engine)
    fos = _simulate(built, "fos", rounds, seed=seed + 1, engine=engine)
    threshold = 10.0
    speedup = measured_speedup(fos, sos, built.lam, threshold=threshold)
    # The paper observes discontinuities whenever the wavefronts collide
    # ("approximately every 1200 to 1300 steps" on the big torus).
    bumps = detect_bumps(
        sos.series("max_local_diff"), window=10, min_rise=1.2, skip=5
    )
    return ExperimentRecord(
        name="fig01",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "beta": built.beta,
            "lambda": built.lam,
            "rounds": rounds,
            "avg_load": DEFAULT_AVERAGE_LOAD,
        },
        series={
            "round": sos.rounds.tolist(),
            "sos_max_minus_avg": sos.series("max_minus_avg").tolist(),
            "sos_max_local_diff": sos.series("max_local_diff").tolist(),
            "sos_potential_per_node": sos.series("potential_per_node").tolist(),
            "fos_max_minus_avg": fos.series("max_minus_avg").tolist(),
        },
        summary={
            "sos_round_below_10": speedup.sos_round,
            "fos_round_below_10": speedup.fos_round,
            "measured_speedup": speedup.measured,
            "predicted_speedup": speedup.predicted,
            "sos_plateau_max_minus_avg": remaining_imbalance(sos).mean,
            "sos_plateau_local_diff": remaining_imbalance(
                sos, field="max_local_diff"
            ).mean,
            "discontinuity_count": len(bumps),
            "discontinuity_period": bump_period(bumps),
        },
    )


# ----------------------------------------------------------------------
# Figure 2 — initial-load sensitivity
# ----------------------------------------------------------------------

def fig02_initial_load(
    scale: str = "ci",
    rounds: Optional[int] = None,
    averages: Sequence[int] = (10, 100, 1000),
    seed: int = 0,
    engine: str = "reference",
    n_seeds: int = 1,
) -> ExperimentRecord:
    """Figure 2: max-avg for three different total loads (avg 10/100/1000).

    The paper's observation: the amount of initial load only has limited
    impact on behaviour, especially after convergence.

    With ``n_seeds > 1`` the whole sweep — every (average load, seed)
    combination — is submitted as *one* :func:`~repro.experiments.sweeps
    .replica_ensemble` call (the batched engine advances all replicas per
    vectorised step) and each average's curve comes back seed-averaged:
    ``avg<K>_max_minus_avg`` is the cross-seed mean and
    ``avg<K>_max_minus_avg_std`` the cross-seed deviation.
    """
    built = build_graph("torus-1000", scale)
    rounds = rounds or _default_rounds(built)
    series: Dict[str, List[float]] = {}
    summary: Dict[str, float] = {}
    if n_seeds <= 1:
        for idx, avg in enumerate(averages):
            res = _simulate(
                built, "sos", rounds, seed=seed + idx, average_load=avg,
                engine=engine,
            )
            series[f"avg{avg}_max_minus_avg"] = res.series("max_minus_avg").tolist()
            if "round" not in series:
                series["round"] = res.rounds.tolist()
            summary[f"avg{avg}_plateau"] = remaining_imbalance(res).mean
            summary[f"avg{avg}_round_below_10"] = convergence_round(
                res, threshold=10.0, sustained=3
            )
    else:
        from .sweeps import ensemble_series, replica_ensemble

        topo = built.topo
        batch = np.stack(
            [
                point_load(topo, avg * topo.n, node=0)
                for avg in averages
                for _ in range(n_seeds)
            ]
        )
        config = engine_config(
            built, scheme="sos", rounds=rounds, seed=seed
        )
        ensemble = replica_ensemble(
            topo, config, initial_loads=batch, engine=engine
        )
        series["round"] = ensemble.results[0].rounds.tolist()
        for gi, avg in enumerate(averages):
            group = ensemble.results[gi * n_seeds : (gi + 1) * n_seeds]
            mean, std = ensemble_series(group, "max_minus_avg")
            series[f"avg{avg}_max_minus_avg"] = mean.tolist()
            series[f"avg{avg}_max_minus_avg_std"] = std.tolist()
            summary[f"avg{avg}_plateau"] = float(
                np.mean([remaining_imbalance(r).mean for r in group])
            )
            below = [
                convergence_round(r, threshold=10.0, sustained=3) for r in group
            ]
            converged = [r for r in below if r is not None]
            summary[f"avg{avg}_round_below_10"] = (
                float(np.mean(converged)) if converged else None
            )
            summary[f"avg{avg}_unconverged"] = len(below) - len(converged)
    return ExperimentRecord(
        name="fig02",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "rounds": rounds,
            "averages": list(averages),
            "n_seeds": n_seeds,
        },
        series=series,
        summary=summary,
    )


# ----------------------------------------------------------------------
# Figure 3 — discrete (randomized rounding) vs idealized, SOS and FOS
# ----------------------------------------------------------------------

def fig03_discrete_vs_ideal(
    scale: str = "ci",
    rounds: Optional[int] = None,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 3: SOS vs FOS max-avg — discrete (left) and idealized (right)."""
    built = build_graph("torus-1000", scale)
    rounds = rounds or _default_rounds(built)
    runs = {
        "discrete_sos": _simulate(built, "sos", rounds, seed=seed, engine=engine),
        "discrete_fos": _simulate(
            built, "fos", rounds, seed=seed + 1, engine=engine
        ),
        "ideal_sos": _simulate(
            built, "sos", rounds, rounding="identity", engine=engine
        ),
        "ideal_fos": _simulate(
            built, "fos", rounds, rounding="identity", engine=engine
        ),
    }
    series = {"round": runs["discrete_sos"].rounds.tolist()}
    summary = {}
    for label, res in runs.items():
        series[f"{label}_max_minus_avg"] = res.series("max_minus_avg").tolist()
        summary[f"{label}_round_below_10"] = convergence_round(
            res, threshold=10.0, sustained=3
        )
        summary[f"{label}_final"] = res.records[-1].max_minus_avg
    return ExperimentRecord(
        name="fig03",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "rounds": rounds,
        },
        series=series,
        summary=summary,
    )


# ----------------------------------------------------------------------
# Figures 4 & 5 — hybrid switch at an early and a late round
# ----------------------------------------------------------------------

def fig04_05_switching(
    scale: str = "ci",
    rounds: Optional[int] = None,
    switch_rounds: Optional[Sequence[int]] = None,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figures 4/5: switching from SOS to FOS drops the residual imbalance.

    The paper switches at 2500 ("early", end of the exponential-decay phase)
    and 3000 ("late") on the 1000x1000 torus; the CI default scales these to
    the small torus's decay horizon.
    """
    built = build_graph("torus-1000", scale)
    if switch_rounds is None:
        base = _default_rounds(built, factor=1.2)
        switch_rounds = (base, int(base * 1.2))
    rounds = rounds or int(max(switch_rounds) * 1.6)

    sos_only = _simulate(built, "sos", rounds, seed=seed, engine=engine)
    series = {
        "round": sos_only.rounds.tolist(),
        "sos_only_max_minus_avg": sos_only.series("max_minus_avg").tolist(),
        "sos_only_max_local_diff": sos_only.series("max_local_diff").tolist(),
    }
    summary = {
        "sos_only_plateau_max_minus_avg": remaining_imbalance(sos_only).mean,
        "sos_only_plateau_local_diff": remaining_imbalance(
            sos_only, field="max_local_diff"
        ).mean,
    }
    for switch in switch_rounds:
        res = _simulate(
            built, "sos", rounds, seed=seed, switch_round=switch, engine=engine
        )
        tag = f"switch{switch}"
        series[f"{tag}_max_minus_avg"] = res.series("max_minus_avg").tolist()
        series[f"{tag}_max_local_diff"] = res.series("max_local_diff").tolist()
        tail = [r for r in res.records if r.round_index >= switch + (rounds - switch) // 2]
        summary[f"{tag}_final_max_minus_avg"] = float(
            np.mean([r.max_minus_avg for r in tail])
        )
        summary[f"{tag}_final_local_diff"] = float(
            np.mean([r.max_local_diff for r in tail])
        )
    return ExperimentRecord(
        name="fig04_05",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "rounds": rounds,
            "switch_rounds": list(switch_rounds),
        },
        series=series,
        summary=summary,
    )


# ----------------------------------------------------------------------
# Figure 6 — idealized vs randomized rounding + float drift of the total
# ----------------------------------------------------------------------

def fig06_ideal_error(
    scale: str = "ci",
    rounds: Optional[int] = None,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 6: idealized (double-precision) SOS vs randomized rounding,
    plus the absolute error of the idealized scheme's total load."""
    built = build_graph("torus-1000", scale)
    rounds = rounds or _default_rounds(built)
    ideal = _simulate(built, "sos", rounds, rounding="identity", engine=engine)
    discrete = _simulate(built, "sos", rounds, seed=seed, engine=engine)
    total0 = ideal.records[0].total_load
    drift = [abs(r.total_load - total0) for r in ideal.records]
    return ExperimentRecord(
        name="fig06",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "rounds": rounds,
        },
        series={
            "round": ideal.rounds.tolist(),
            "ideal_max_minus_avg": ideal.series("max_minus_avg").tolist(),
            "discrete_max_minus_avg": discrete.series("max_minus_avg").tolist(),
            "ideal_total_load_abs_error": drift,
        },
        summary={
            "max_total_drift": float(max(drift)),
            "discrete_plateau": remaining_imbalance(discrete).mean,
            "ideal_final": ideal.records[-1].max_minus_avg,
        },
    )


# ----------------------------------------------------------------------
# Figure 7 — impact of eigenvectors on the load
# ----------------------------------------------------------------------

def fig07_eigencoefficients(
    scale: str = "ci",
    rounds: Optional[int] = None,
    seed: int = 0,
    record_every: int = 1,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 7: eigen-coefficient magnitudes and the leading eigenvector.

    Uses the exact Fourier eigenbasis of the torus (the paper used LAPACK on
    the dense matrix; on a torus both give the same coefficients).  Tracks
    ``max_i |a_i|`` and the currently leading mode per round.
    """
    built = build_graph("torus-100", scale if scale != "paper" else "ci")
    side = int(round(math.sqrt(built.n)))
    rounds = rounds or _default_rounds(built)
    res = _simulate(
        built, "sos", rounds, seed=seed, keep_loads=True,
        record_every=record_every, engine=engine,
    )
    analyzer = TorusFourierAnalyzer(side, side)
    trace = analyzer.trace(res.loads_history)
    span = trace.stable_leader_span()
    stable_mode = (
        int(trace.leading_index[span[0]]) if span[1] > span[0] else None
    )
    return ExperimentRecord(
        name="fig07",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "rounds": rounds,
            "record_every": record_every,
        },
        series={
            "round": res.rounds.tolist(),
            "leading_coefficient": trace.leading_value.tolist(),
            "leading_mode_flat_index": trace.leading_index.tolist(),
            "leading_mode_eigenvalue": trace.leading_eigenvalue().tolist(),
        },
        summary={
            "stable_leader_mode": stable_mode,
            "stable_leader_from_round": int(res.rounds[span[0]]) if span[1] > span[0] else None,
            "stable_leader_to_round": int(res.rounds[span[1] - 1]) if span[1] > span[0] else None,
            "stable_leader_span_rounds": int(span[1] - span[0]),
        },
    )


# ----------------------------------------------------------------------
# Figure 8 — sweep of the switch round
# ----------------------------------------------------------------------

def fig08_switch_sweep(
    scale: str = "ci",
    rounds: int = 1000,
    switch_rounds: Sequence[int] = (300, 500, 700, 900),
    seed: int = 0,
    engine: str = "reference",
    n_seeds: int = 1,
) -> ExperimentRecord:
    """Figure 8: effect of the SOS->FOS switch round on the 100x100 torus.

    The paper's parameters are used verbatim (this figure is already at CI
    scale in the paper): switches at rounds 300/500/700/900 within a
    1000-round run.

    The whole sweep — the pure-SOS curve plus one curve per switch round,
    times the seed replicas — is submitted as *one*
    :func:`~repro.experiments.sweeps.sweep_ensemble` call: the switch
    rounds travel as a per-replica
    :class:`~repro.engines.ReplicaParams` plane, so every curve advances
    per vectorised step on the batched/sharded engines instead of one
    engine call per sweep point.  With ``n_seeds > 1`` the series come
    back seed-averaged with ``_std`` companions.
    """
    from .sweeps import ParamGrid, ensemble_series, sweep_ensemble

    built = build_graph("torus-100", scale if scale != "paper" else "ci")
    n_seeds = max(int(n_seeds), 1)
    config = engine_config(built, scheme="sos", rounds=rounds, seed=seed)
    sweep = sweep_ensemble(
        built.topo,
        config,
        ParamGrid(switch_round=[None, *switch_rounds]),
        n_seeds=n_seeds,
        average_load=DEFAULT_AVERAGE_LOAD,
        engine=engine,
    )
    tags = ["sos_only"] + [f"fos{switch}" for switch in switch_rounds]
    series: Dict[str, List[float]] = {
        "round": sweep.results[0].rounds.tolist()
    }
    summary: Dict[str, float] = {}
    for i, tag in enumerate(tags):
        group = sweep.point_results(i)
        if n_seeds == 1:
            res = group[0]
            series[f"{tag}_max_minus_avg"] = res.series(
                "max_minus_avg"
            ).tolist()
            if tag == "sos_only":
                series["sos_only_max_local_diff"] = res.series(
                    "max_local_diff"
                ).tolist()
                summary["sos_only_final"] = res.records[-1].max_minus_avg
            else:
                tail = [
                    r.max_minus_avg
                    for r in res.records
                    if r.round_index >= rounds - 50
                ]
                summary[f"{tag}_final"] = float(np.mean(tail))
        else:
            for fieldname in ("max_minus_avg", "max_local_diff"):
                mean, std = ensemble_series(group, fieldname)
                series[f"{tag}_{fieldname}"] = mean.tolist()
                series[f"{tag}_{fieldname}_std"] = std.tolist()
            finals = [
                float(
                    np.mean(
                        np.asarray(r.series("max_minus_avg"))[
                            np.asarray(r.rounds) >= rounds - 50
                        ]
                    )
                )
                for r in group
            ]
            summary[f"{tag}_final"] = float(np.mean(finals))
    return ExperimentRecord(
        name="fig08",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "rounds": rounds,
            "switch_rounds": list(switch_rounds),
            "n_seeds": n_seeds,
            "engine_calls": 1,
        },
        series=series,
        summary=summary,
    )


# ----------------------------------------------------------------------
# Figures 9-11 — raster renders of the torus load
# ----------------------------------------------------------------------

def fig09_11_renders(
    scale: str = "ci",
    snapshot_rounds: Optional[Sequence[int]] = None,
    seed: int = 0,
    directory: Optional[str] = None,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figures 9-11: grayscale rasters of the load on the torus.

    Renders adaptive-shading snapshots (Figures 9/10: wavefronts emanating
    from the loaded corner and collapsing in the centre) and
    threshold-shading snapshots before/after an SOS->FOS switch (Figure 11:
    FOS smooths the SOS noise).  When ``directory`` is given the frames are
    written as PGM files; the record always carries summary statistics.
    """
    built = build_graph("torus-1000", scale)
    side = int(round(math.sqrt(built.n)))
    horizon = _default_rounds(built, factor=1.5)
    if snapshot_rounds is None:
        snapshot_rounds = sorted(
            {int(horizon * f) for f in (0.15, 0.3, 0.4, 0.45, 0.6, 1.0)}
        )
    rounds = max(snapshot_rounds)
    res = _simulate(built, "sos", rounds, seed=seed, keep_loads=True, engine=engine)
    avg = res.records[0].total_load / built.n

    written = []
    mean_shade = {}
    for t in snapshot_rounds:
        load = res.loads_history[t]
        img = load_to_grayscale(load, (side, side), mode="adaptive")
        mean_shade[str(t)] = float(img.mean())
        if directory is not None:
            from ..viz import write_pgm
            import os

            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, f"fig09-round{t:05d}.pgm")
            written.append(write_pgm(path, img))

    # Figure 11: threshold renders around a switch (clamped into the run).
    switch = max(1, min(int(horizon * 0.8), int(rounds * 0.6)))
    res_switch = _simulate(
        built, "sos", rounds, seed=seed, switch_round=switch, keep_loads=True,
        engine=engine,
    )
    thr_before = load_to_grayscale(
        res_switch.loads_history[switch], (side, side), mode="threshold",
        threshold=10.0, average=avg,
    )
    after_round = min(switch + max(1, (rounds - switch) // 2), rounds)
    thr_after = load_to_grayscale(
        res_switch.loads_history[after_round], (side, side), mode="threshold",
        threshold=10.0, average=avg,
    )
    if directory is not None:
        from ..viz import write_pgm
        import os

        written.append(
            write_pgm(os.path.join(directory, "fig11-before-switch.pgm"), thr_before)
        )
        written.append(
            write_pgm(os.path.join(directory, "fig11-after-switch.pgm"), thr_after)
        )

    return ExperimentRecord(
        name="fig09_11",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "snapshot_rounds": list(snapshot_rounds),
            "switch_round": switch,
        },
        series={
            "round": res.rounds.tolist(),
            "max_minus_avg": res.series("max_minus_avg").tolist(),
        },
        summary={
            "mean_shade_per_snapshot": mean_shade,
            "white_fraction_before_switch": float((thr_before == 255).mean()),
            "white_fraction_after_switch": float((thr_after == 255).mean()),
            "frames_written": len(written),
        },
    )


# ----------------------------------------------------------------------
# Figures 12-14 — other graph classes
# ----------------------------------------------------------------------

def _other_network_figure(
    name: str,
    graph_key: str,
    scale: str,
    rounds: Optional[int],
    switch_fraction: float,
    seed: int,
    engine: str = "reference",
) -> ExperimentRecord:
    """Shared driver for Figures 12 (CM), 13 (hypercube), 14 (RGG)."""
    built = build_graph(graph_key, scale, seed=seed)
    rounds = rounds or max(_default_rounds(built, factor=4.0), 60)
    switch = max(2, int(rounds * switch_fraction))
    sos = _simulate(built, "sos", rounds, seed=seed, engine=engine)
    fos = _simulate(built, "fos", rounds, seed=seed + 1, engine=engine)
    hybrid = _simulate(
        built, "sos", rounds, seed=seed, switch_round=switch, engine=engine
    )
    # "Balanced up to an additive constant": the discrete residual scales
    # with the degree, so the convergence threshold must too (the RGG has
    # max degree ~35 at CI scale and plateaus above 10 tokens).
    threshold = float(max(10, built.topo.max_degree))
    speedup = measured_speedup(fos, sos, built.lam, threshold=threshold)
    return ExperimentRecord(
        name=name,
        params={
            "graph": graph_key,
            "scale": scale,
            "n": built.n,
            "lambda": built.lam,
            "beta": built.beta,
            "rounds": rounds,
            "switch_round": switch,
        },
        series={
            "round": sos.rounds.tolist(),
            "sos_max_minus_avg": sos.series("max_minus_avg").tolist(),
            "sos_max_local_diff": sos.series("max_local_diff").tolist(),
            "sos_potential_per_node": sos.series("potential_per_node").tolist(),
            "fos_max_minus_avg": fos.series("max_minus_avg").tolist(),
            "hybrid_max_minus_avg": hybrid.series("max_minus_avg").tolist(),
        },
        summary={
            "balance_threshold": threshold,
            "sos_round_below_10": speedup.sos_round,
            "fos_round_below_10": speedup.fos_round,
            "measured_speedup": speedup.measured,
            "predicted_speedup": speedup.predicted,
            "sos_plateau": remaining_imbalance(sos).mean,
            "fos_plateau": remaining_imbalance(fos).mean,
            "hybrid_final": float(
                np.mean([r.max_minus_avg for r in hybrid.records[-20:]])
            ),
        },
    )


def fig12_random_graph(
    scale: str = "ci",
    rounds: Optional[int] = None,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 12: configuration-model random graph — SOS barely beats FOS."""
    return _other_network_figure("fig12", "cm", scale, rounds, 0.12, seed, engine)


def fig13_hypercube(
    scale: str = "ci",
    rounds: Optional[int] = None,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 13: hypercube — limited SOS improvement; switch to FOS midway."""
    return _other_network_figure("fig13", "hypercube", scale, rounds, 0.25, seed, engine)


def fig14_rgg(
    scale: str = "ci",
    rounds: Optional[int] = None,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 14: random geometric graph — torus-like behaviour."""
    return _other_network_figure("fig14", "rgg", scale, rounds, 0.5, seed, engine)


# ----------------------------------------------------------------------
# Figure 15 — combined torus metrics + eigen-coefficient overlay
# ----------------------------------------------------------------------

def fig15_torus_combined(
    scale: str = "ci",
    rounds: int = 1000,
    switch_round: int = 500,
    seed: int = 0,
    engine: str = "reference",
) -> ExperimentRecord:
    """Figure 15: 100x100 torus — metrics, FOS switch at 500, and the
    leading eigen-coefficient overlay (``-a_4`` leads from ~100 to ~700)."""
    built = build_graph("torus-100", scale if scale != "paper" else "ci")
    side = int(round(math.sqrt(built.n)))
    res = _simulate(built, "sos", rounds, seed=seed, keep_loads=True, engine=engine)
    hybrid = _simulate(
        built, "sos", rounds, seed=seed, switch_round=switch_round, engine=engine
    )
    analyzer = TorusFourierAnalyzer(side, side)
    trace = analyzer.trace(res.loads_history)
    span = trace.stable_leader_span()
    return ExperimentRecord(
        name="fig15",
        params={
            "graph": built.key,
            "scale": scale,
            "n": built.n,
            "rounds": rounds,
            "switch_round": switch_round,
        },
        series={
            "round": res.rounds.tolist(),
            "max_minus_avg": res.series("max_minus_avg").tolist(),
            "max_local_diff": res.series("max_local_diff").tolist(),
            "potential_per_node": res.series("potential_per_node").tolist(),
            "leading_coefficient": trace.leading_value.tolist(),
            "leading_mode_flat_index": trace.leading_index.tolist(),
            "hybrid_max_minus_avg": hybrid.series("max_minus_avg").tolist(),
        },
        summary={
            "stable_leader_mode": int(trace.leading_index[span[0]])
            if span[1] > span[0]
            else None,
            "stable_leader_from_round": int(span[0]),
            "stable_leader_to_round": int(span[1] - 1),
            "hybrid_final": float(
                np.mean([r.max_minus_avg for r in hybrid.records[-50:]])
            ),
            "sos_final": float(
                np.mean([r.max_minus_avg for r in res.records[-50:]])
            ),
        },
    )
