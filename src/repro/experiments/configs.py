"""Graph configurations of Table I, at paper scale and CI-friendly scales.

Table I of the paper:

    ============================  ===========  ====================
    Graph                         Size         beta
    ============================  ===========  ====================
    Two-dimensional torus         1000 x 1000  1.9920836447
    Two-dimensional torus         100 x 100    1.9235874877
    Random graph (CM)             n=10^6,      1.0651965147
                                  d=floor(log2 n) = 19
    Random geometric graph        n=10^4,      1.9554636334
                                  r=4 sqrt(log n)
    Hypercube                     n=2^20       1.4026054847
    ============================  ===========  ====================

Each :class:`GraphConfig` can build the graph at three scales:

* ``"paper"`` — the sizes above (the two tori and the hypercube expose
  their ``lambda``/``beta`` analytically, so even the million-node entries
  are *exactly* reproducible without building the graph; building the
  ``10^6``-node graphs themselves is possible but slow),
* ``"ci"``   — the bench default: same construction laws, reduced sizes,
* ``"tiny"`` — a few hundred nodes for unit tests.

``build()`` returns a :class:`BuiltGraph` bundling topology, ``lambda``
(analytic where available, else numeric) and ``beta_opt``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs import (
    Topology,
    configuration_model,
    hypercube,
    random_geometric,
    torus_2d,
)
from ..core.spectral import (
    beta_opt,
    hypercube_lambda,
    second_largest_eigenvalue,
    torus_lambda,
)

__all__ = [
    "BuiltGraph",
    "GraphConfig",
    "GRAPH_CONFIGS",
    "PAPER_BETAS",
    "build_graph",
    "engine_config",
]

#: The beta values printed in Table I of the paper, for comparison.
PAPER_BETAS: Dict[str, float] = {
    "torus-1000": 1.9920836447,
    "torus-100": 1.9235874877,
    "cm": 1.0651965147,
    "rgg": 1.9554636334,
    "hypercube": 1.4026054847,
}


@dataclass
class BuiltGraph:
    """A constructed experiment graph with its spectral data."""

    key: str
    scale: str
    topo: Topology
    lam: float
    beta: float
    lam_source: str  # "analytic" or "numeric"

    @property
    def n(self) -> int:
        return self.topo.n


@dataclass
class GraphConfig:
    """One Table I row: how to build the graph at each scale."""

    key: str
    description: str
    paper_size: str
    sizes: Dict[str, dict]
    builder: Callable[..., Tuple[Topology, Optional[float]]]

    def build(self, scale: str = "ci", seed: int = 0) -> BuiltGraph:
        """Construct the graph at the requested scale.

        ``lambda`` uses the closed form when the builder provides one;
        otherwise the dense/sparse numeric solver.
        """
        if scale not in self.sizes:
            raise ConfigurationError(
                f"config {self.key!r} has no scale {scale!r}; "
                f"known: {sorted(self.sizes)}"
            )
        params = dict(self.sizes[scale])
        topo, lam = self.builder(seed=seed, **params)
        if lam is None:
            lam = second_largest_eigenvalue(topo)
            source = "numeric"
        else:
            source = "analytic"
        return BuiltGraph(
            key=self.key,
            scale=scale,
            topo=topo,
            lam=lam,
            beta=beta_opt(lam),
            lam_source=source,
        )

    def paper_beta(self) -> Optional[float]:
        """The beta Table I quotes for this graph (None if absent)."""
        return PAPER_BETAS.get(self.key)

    def analytic_paper_beta(self) -> Optional[float]:
        """Exact beta at *paper scale* via closed-form spectra, if available."""
        params = self.sizes.get("paper")
        if params is None:
            return None
        if self.key.startswith("torus"):
            side = params["side"]
            return beta_opt(torus_lambda((side, side)))
        if self.key == "hypercube":
            return beta_opt(hypercube_lambda(params["dimension"]))
        return None


# ----------------------------------------------------------------------
# Builders (seed is accepted uniformly; deterministic graphs ignore it)
# ----------------------------------------------------------------------

def _build_torus(side: int, seed: int = 0):
    topo = torus_2d(side, side)
    return topo, torus_lambda((side, side))


def _build_cm(n: int, degree: int, seed: int = 0):
    topo = configuration_model(n, degree, rng=np.random.default_rng(seed))
    return topo, None


def _build_rgg(n: int, radius_factor: float = 1.0, seed: int = 0):
    # Figure 14 uses radius sqrt(log n) while Table I says 4 sqrt(log n);
    # the driver controls the factor (1.0 -> sqrt(log n)).
    radius = radius_factor * math.sqrt(math.log(n))
    topo = random_geometric(n, radius=radius, rng=np.random.default_rng(seed))
    return topo, None


def _build_hypercube(dimension: int, seed: int = 0):
    topo = hypercube(dimension)
    return topo, hypercube_lambda(dimension)


GRAPH_CONFIGS: Dict[str, GraphConfig] = {
    "torus-1000": GraphConfig(
        key="torus-1000",
        description="Two-dimensional torus (paper's main platform)",
        paper_size="1000 x 1000",
        sizes={
            "paper": {"side": 1000},
            "ci": {"side": 100},
            "tiny": {"side": 16},
        },
        builder=_build_torus,
    ),
    "torus-100": GraphConfig(
        key="torus-100",
        description="Two-dimensional torus (eigen-analysis platform)",
        paper_size="100 x 100",
        sizes={
            "paper": {"side": 100},
            "ci": {"side": 100},
            "tiny": {"side": 12},
        },
        builder=_build_torus,
    ),
    "cm": GraphConfig(
        key="cm",
        description="Random graph, configuration model, d = floor(log2 n)",
        paper_size="n = 10^6, d = 19",
        sizes={
            "paper": {"n": 10**6, "degree": 19},
            "ci": {"n": 4096, "degree": 12},
            "tiny": {"n": 128, "degree": 7},
        },
        builder=_build_cm,
    ),
    "rgg": GraphConfig(
        key="rgg",
        description="Random geometric graph on [0, sqrt(n)]^2",
        paper_size="n = 10^4, r = 4 sqrt(log n)",
        sizes={
            "paper": {"n": 10**4, "radius_factor": 4.0},
            "ci": {"n": 1024, "radius_factor": 1.0},
            "tiny": {"n": 128, "radius_factor": 1.0},
        },
        builder=_build_rgg,
    ),
    "hypercube": GraphConfig(
        key="hypercube",
        description="Hypercube",
        paper_size="n = 2^20",
        sizes={
            "paper": {"dimension": 20},
            "ci": {"dimension": 10},
            "tiny": {"dimension": 6},
        },
        builder=_build_hypercube,
    ),
}


def build_graph(key: str, scale: str = "ci", seed: int = 0) -> BuiltGraph:
    """Build one of Table I's graphs by key."""
    try:
        config = GRAPH_CONFIGS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown graph config {key!r}; known: {sorted(GRAPH_CONFIGS)}"
        ) from None
    return config.build(scale=scale, seed=seed)


def engine_config(
    built: BuiltGraph,
    scheme: str = "sos",
    rounding: str = "randomized-excess",
    rounds: int = 500,
    record_every: int = 1,
    seed: int = 0,
    switch_round: Optional[int] = None,
    keep_loads: bool = False,
    precision: str = "float64",
    **engine_options,
):
    """An :class:`~repro.engines.EngineConfig` for a built Table I graph.

    Uses the graph's own ``beta_opt`` for SOS and translates the classic
    ``switch_round`` convention into the engine switch spec, so experiment
    drivers can hand whole sweeps to any engine backend in one call.
    Extra keyword arguments (``fast_path``, ``tile_size``, ``record_mode``,
    ``record_fields``, ``arrival_sampling``, ...) pass straight through to
    :class:`~repro.engines.EngineConfig`.
    """
    from ..engines import EngineConfig

    return EngineConfig(
        scheme=scheme,
        beta=built.beta if scheme == "sos" else 1.0,
        rounding=rounding,
        rounds=rounds,
        record_every=record_every,
        seed=seed,
        switch=("fixed", switch_round) if switch_round is not None else None,
        keep_loads=keep_loads,
        precision=precision,
        **engine_options,
    )
