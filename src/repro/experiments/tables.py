"""Table I reproduction: graph classes and their ``beta_opt``.

For the two tori and the hypercube ``beta`` is evaluated from the
closed-form spectra at the *paper's original scale* (``1000 x 1000``,
``100 x 100``, ``2^20``) and compared digit by digit against the printed
values; for the sampled graph classes (CM random graph, RGG) the numeric
``lambda`` of a freshly generated instance at the requested scale is
reported — the paper's values are instance-specific for those, so only the
magnitude is comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .configs import GRAPH_CONFIGS, BuiltGraph

__all__ = ["Table1Row", "reproduce_table1"]


@dataclass
class Table1Row:
    """One row of the reproduced Table I."""

    key: str
    description: str
    paper_size: str
    scale: str
    n: int
    lam: float
    beta: float
    lam_source: str
    paper_beta: Optional[float]
    analytic_paper_beta: Optional[float]

    @property
    def beta_abs_error(self) -> Optional[float]:
        """|analytic paper-scale beta - printed beta| when both exist."""
        if self.paper_beta is None or self.analytic_paper_beta is None:
            return None
        return abs(self.analytic_paper_beta - self.paper_beta)


def reproduce_table1(scale: str = "ci", seed: int = 0) -> List[Table1Row]:
    """Build every Table I graph at ``scale`` and compute its beta.

    Returns one row per config, carrying both the built instance's beta and
    (where closed forms exist) the exact paper-scale beta for comparison
    with the printed table.
    """
    rows: List[Table1Row] = []
    for key, config in GRAPH_CONFIGS.items():
        built: BuiltGraph = config.build(scale=scale, seed=seed)
        rows.append(
            Table1Row(
                key=key,
                description=config.description,
                paper_size=config.paper_size,
                scale=scale,
                n=built.n,
                lam=built.lam,
                beta=built.beta,
                lam_source=built.lam_source,
                paper_beta=config.paper_beta(),
                analytic_paper_beta=config.analytic_paper_beta(),
            )
        )
    return rows
