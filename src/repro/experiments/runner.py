"""Experiment registry and dispatch.

Maps experiment ids (``table1``, ``fig01`` ... ``fig15``) to their drivers
so the CLI and the bench harness share one entry point.  ``run_experiment``
optionally persists the resulting record as JSON.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..exceptions import ConfigurationError
from ..io import ExperimentRecord, save_record
from . import figures
from .report import format_table
from .tables import reproduce_table1

__all__ = ["EXPERIMENTS", "list_experiments", "run_experiment"]


def _table1_driver(scale: str = "ci", seed: int = 0, **_ignored) -> ExperimentRecord:
    rows = reproduce_table1(scale=scale, seed=seed)
    return ExperimentRecord(
        name="table1",
        params={"scale": scale, "seed": seed},
        summary={
            row.key: {
                "n": row.n,
                "lambda": row.lam,
                "beta": row.beta,
                "paper_beta": row.paper_beta,
                "analytic_paper_beta": row.analytic_paper_beta,
            }
            for row in rows
        },
    )


EXPERIMENTS: Dict[str, Callable[..., ExperimentRecord]] = {
    "table1": _table1_driver,
    "fig01": figures.fig01_torus_sos_vs_fos,
    "fig02": figures.fig02_initial_load,
    "fig03": figures.fig03_discrete_vs_ideal,
    "fig04_05": figures.fig04_05_switching,
    "fig06": figures.fig06_ideal_error,
    "fig07": figures.fig07_eigencoefficients,
    "fig08": figures.fig08_switch_sweep,
    "fig09_11": figures.fig09_11_renders,
    "fig12": figures.fig12_random_graph,
    "fig13": figures.fig13_hypercube,
    "fig14": figures.fig14_rgg,
    "fig15": figures.fig15_torus_combined,
}


def list_experiments() -> List[str]:
    """Sorted experiment ids."""
    return sorted(EXPERIMENTS)


def run_experiment(
    name: str,
    output_dir: Optional[str] = None,
    engine: Optional[str] = None,
    **kwargs,
) -> ExperimentRecord:
    """Run one experiment by id; optionally persist the record as JSON.

    ``engine`` selects the execution backend (``reference`` / ``batched`` /
    ``network``) for drivers that simulate; ``None`` keeps each driver's
    default (the reference engine).
    """
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {list_experiments()}"
        ) from None
    if engine is not None:
        kwargs["engine"] = engine
    record = driver(**kwargs)
    if output_dir is not None:
        save_record(record, output_dir)
    return record
