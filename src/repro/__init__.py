"""repro — Discrete load balancing in heterogeneous networks.

A from-scratch reproduction of *"Discrete Load Balancing in Heterogeneous
Networks with a Focus on Second-Order Diffusion"* (Akbari, Berenbrink,
Elsässer, Kaaser — ICDCS 2015).

Quickstart
----------
>>> import numpy as np
>>> from repro import (torus_2d, SecondOrderScheme, LoadBalancingProcess,
...                    Simulator, point_load, torus_lambda, beta_opt)
>>> topo = torus_2d(16, 16)
>>> beta = beta_opt(torus_lambda((16, 16)))
>>> process = LoadBalancingProcess(
...     SecondOrderScheme(topo, beta=beta),
...     rounding="randomized-excess",
...     rng=np.random.default_rng(0),
... )
>>> result = Simulator(process).run(point_load(topo, 1000 * topo.n), rounds=200)
>>> result.records[-1].max_minus_avg < 32
True

The public API is re-exported flat from this package; see DESIGN.md for the
full system inventory and the per-experiment index.
"""

from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    ProtocolError,
    ReproError,
    RoundingError,
    SchemeError,
    SimulationError,
    SpeedError,
    TopologyError,
)
from .graphs import *  # noqa: F401,F403
from .graphs import __all__ as _graphs_all
from .core import *  # noqa: F401,F403
from .core import __all__ as _core_all

__version__ = "1.0.0"

__all__ = (
    [
        "ReproError",
        "ConfigurationError",
        "TopologyError",
        "SpeedError",
        "SchemeError",
        "RoundingError",
        "SimulationError",
        "ConvergenceError",
        "ProtocolError",
        "__version__",
    ]
    + list(_graphs_all)
    + list(_core_all)
)
