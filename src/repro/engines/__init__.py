"""Pluggable execution engines for replica ensembles.

One protocol (:class:`~repro.engines.base.Engine`), six backends:

=========  ==================================================================
name       backend
=========  ==================================================================
reference  per-replica loop through the classic :class:`~repro.core.simulator.
           Simulator` core — the semantic ground truth
batched    :class:`~repro.engines.batched.BatchedVectorEngine` — a ``(B, n)``
           load matrix advanced by CSR edge-wise numpy kernels, every replica
           per step
sharded    :class:`~repro.engines.sharded.ShardedEngine` — contiguous column
           shards of the batch, one batched engine per worker *process*,
           merged bit-identically to the single-process batched run
network    :class:`~repro.engines.network.NetworkEngine` — the message-passing
           :class:`~repro.network.engine.SyncNetwork` behind the same protocol
async      :class:`~repro.engines.async_net.AsyncNetworkEngine` — event-driven
           :class:`~repro.network.async_engine.AsyncNetwork` with per-link
           latency/bandwidth and no global round barrier (bit-identical to
           ``network`` at zero latency)
staleness  :class:`~repro.engines.staleness.StalenessEngine` — the async
           regime vectorised: integer round buckets per link and delayed-view
           planes over the whole ``(n, B)`` ensemble (bit-identical to
           ``async`` for integer latencies under ``max_skew``)
=========  ==================================================================

Quickstart::

    from repro import torus_2d, point_load
    from repro.engines import EngineConfig, run_replicas

    topo = torus_2d(32, 32)
    config = EngineConfig(scheme="sos", beta=1.8, rounds=500, seed=0)
    loads = [point_load(topo, 1000 * topo.n) for _ in range(128)]
    results = run_replicas(topo, config, loads, engine="batched")
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.simulator import SimulationResult
from ..graphs.topology import Topology

from .base import (
    ENGINES,
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    ReplicaParams,
    ResolvedReplicaParams,
    StepBatch,
    apply_load_scales,
    as_load_batch,
    make_engine,
    make_switch_policy,
    merge_record_batches,
    plan_shards,
    register_engine,
    resolve_arrival_models,
    resolve_arrival_rngs,
    resolve_record_fields,
    resolve_replica_params,
    resolve_rounding_rngs,
    resolve_tile_size,
    resolve_workers,
    rounding_stream,
    uniform_plane_value,
)
from .reference import ReferenceEngine
from .batched import BatchedVectorEngine
from .sharded import ShardedEngine
from .network import NetworkEngine
from .async_net import AsyncNetworkEngine
from .staleness import StalenessEngine
from .pool import ShardedWorkerPool, default_pool, topology_fingerprint
from .session import EngineSession

__all__ = [
    "ENGINES",
    "ArrivalBatch",
    "Engine",
    "EngineConfig",
    "RecordBatch",
    "ReplicaParams",
    "ResolvedReplicaParams",
    "StepBatch",
    "ReferenceEngine",
    "BatchedVectorEngine",
    "ShardedEngine",
    "NetworkEngine",
    "AsyncNetworkEngine",
    "StalenessEngine",
    "ShardedWorkerPool",
    "EngineSession",
    "default_pool",
    "topology_fingerprint",
    "apply_load_scales",
    "as_load_batch",
    "make_engine",
    "make_switch_policy",
    "merge_record_batches",
    "plan_shards",
    "register_engine",
    "resolve_arrival_models",
    "resolve_arrival_rngs",
    "resolve_record_fields",
    "resolve_replica_params",
    "resolve_rounding_rngs",
    "resolve_tile_size",
    "resolve_workers",
    "rounding_stream",
    "run_replicas",
    "run_dynamic_replicas",
    "uniform_plane_value",
]


def run_replicas(
    topo: Topology,
    config: EngineConfig,
    initial_loads: np.ndarray,
    engine: str = "batched",
) -> List[SimulationResult]:
    """Run a whole replica batch through the chosen engine backend.

    ``initial_loads`` is one load vector ``(n,)`` or a batch ``(B, n)``;
    one :class:`~repro.core.simulator.SimulationResult` per replica comes
    back, regardless of backend.
    """
    return make_engine(engine).run(topo, config, initial_loads)


def run_dynamic_replicas(
    topo: Topology,
    config: EngineConfig,
    initial_loads: np.ndarray,
    engine: str = "batched",
) -> List:
    """Run a dynamic-workload replica batch (``config.arrivals`` set).

    Every round each replica's arrivals are applied (departures clamped at
    the non-negative current load) before the balancing step; one
    :class:`~repro.core.dynamic.DynamicResult` per replica comes back,
    recorded every round against the current (moving) average.
    """
    return make_engine(engine).run_dynamic(topo, config, initial_loads)
