"""Long-lived simulation sessions over the incremental simulator core.

:class:`EngineSession` surfaces the incremental ``start`` / ``inject`` /
``advance`` / ``finish`` loop of one replica as a public API, with JSON
checkpointing on top: :meth:`EngineSession.checkpoint` captures the
complete mid-run state — load/flow vectors, the rounding and arrival
generator states, the recorded table rows, the switch-policy history and
the arrival accounting — and :meth:`EngineSession.resume` reconstructs a
session that continues the run **bit for bit**, as if it had never been
interrupted.

A session replica is constructed exactly like the reference engine's
replica ``b``: rounding generator ``default_rng(seed + replica)``,
arrival stream ``arrival_stream(seed, key)`` with ``key =
arrival_seeds[replica]`` (default ``replica``).  So ``EngineSession(topo,
config, replica=b)`` advanced to ``config.rounds`` reproduces replica
``b`` of ``run_experiment(..., engine="reference")`` — and therefore of
every engine that is bit-identical to it.

Dynamic sessions additionally accept live injections:
:meth:`EngineSession.inject` queues extra per-node deltas on top of the
configured arrival model for the *current* round.  When nothing is
queued the model's own deltas pass through unchanged, so a session that
never injects stays bit-identical to the fused engines.

Sessions drive one replica through Python-level rounds, so they refuse
the batch-level knobs that have no per-replica meaning here: churn,
latency/skew/fault injection, ``replica_params`` planes, streaming
record modes, batch arrival sampling and multiprocess execution plans.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import numpy as np

from ..core.dynamic import (
    ArrivalModel,
    DynamicRun,
    DynamicSimulator,
    arrival_stream,
    make_arrival_model,
)
from ..core.hybrid import PotentialPlateauSwitch
from ..core.process import LoadBalancingProcess
from ..core.records import DynamicRecordTable, RecordTable
from ..core.simulator import SimulationRun, Simulator
from ..core.state import LoadState
from ..exceptions import ConfigurationError, SimulationError
from ..io.checkpoint import load_checkpoint, save_checkpoint

from .base import (
    EngineConfig,
    make_switch_policy,
    reject_async_only,
    reject_batched_only,
    reject_network_only,
    reject_sharded_only,
)
from .reference import build_scheme

__all__ = ["EngineSession"]


class _StreamedArrivals(ArrivalModel):
    """Arrival model with a side-channel of session-injected deltas.

    Queued deltas are added on top of the base model's output for their
    round.  When nothing is queued for a round the base deltas are
    returned *unchanged* (same array object, no arithmetic), so a session
    that never injects produces bit-identical traces to the base model.
    """

    def __init__(self, base: ArrivalModel):
        self.base = base
        self.queued: Dict[int, np.ndarray] = {}

    def deltas(self, topo, round_index, rng):
        base = self.base.deltas(topo, round_index, rng)
        extra = self.queued.pop(int(round_index), None)
        if extra is None:
            return base
        return np.asarray(base, dtype=np.float64) + extra

    def batch_deltas(self, topo, round_index, rng, n_replicas):
        # Sessions drive single replicas through the stream path; delegate
        # for completeness so the wrapper is a full ArrivalModel.
        out = self.base.batch_deltas(topo, round_index, rng, n_replicas)
        extra = self.queued.pop(int(round_index), None)
        if extra is None:
            return out
        return np.asarray(out, dtype=np.float64) + extra[:, None]


def _config_digest(config: EngineConfig) -> str:
    """Stable fingerprint of a config (dataclass repr is deterministic)."""
    return hashlib.sha1(repr(config).encode()).hexdigest()


def _reject_session_config(config: EngineConfig) -> None:
    config.validate()
    reject_batched_only(config, "session")
    reject_sharded_only(config, "session")
    reject_async_only(config, "session")
    reject_network_only(config, "session")
    offending = []
    if config.churn is not None:
        offending.append(f"churn={config.churn!r}")
    if config.replica_params is not None:
        offending.append("replica_params")
    if config.precision != "float64":
        offending.append(f"precision={config.precision!r}")
    if offending:
        raise ConfigurationError(
            "engine sessions do not support " + ", ".join(offending)
            + " (single-replica incremental runs only)"
        )


def _session_arrival_model(config: EngineConfig, replica: int) -> ArrivalModel:
    """Replica ``replica``'s arrival model under the engine conventions."""
    spec = config.arrivals
    if isinstance(spec, (list, tuple)):
        if replica >= len(spec):
            raise ConfigurationError(
                f"replica {replica} is out of range for the "
                f"{len(spec)}-entry arrivals sequence"
            )
        return make_arrival_model(spec[replica])
    return make_arrival_model(spec)


def _arrival_key(config: EngineConfig, replica: int) -> int:
    if config.arrival_seeds is not None:
        keys = [int(k) for k in config.arrival_seeds]
        if replica >= len(keys):
            raise ConfigurationError(
                f"replica {replica} is out of range for the "
                f"{len(keys)}-entry arrival_seeds sequence"
            )
        return keys[replica]
    return int(replica)


class EngineSession:
    """One replica's incremental run as a long-lived, checkpointable object.

    Parameters
    ----------
    topo:
        The topology to run on.
    config:
        An :class:`~repro.engines.base.EngineConfig`; ``config.arrivals``
        selects dynamic mode (arrivals interleave with balancing rounds).
    replica:
        Which batch replica this session embodies — it draws the same
        rounding and arrival streams as replica ``replica`` of an engine
        run with the same config, so sessions slot into batch experiments
        bit for bit.

    Typical loop::

        session = EngineSession(topo, config)
        session.start(initial_load)
        while session.round_index < config.rounds:
            session.advance()
            for row in session.records():
                ...             # streams newly recorded rows as dicts
        result = session.finish()

    ``checkpoint(path)`` can be called between any two rounds; the
    :meth:`resume` classmethod rebuilds the session from the file and the
    same ``(topo, config)`` pair, continuing bit for bit.
    """

    def __init__(self, topo, config: EngineConfig, replica: int = 0):
        _reject_session_config(config)
        if replica < 0:
            raise ConfigurationError(f"replica must be >= 0, got {replica}")
        self.topo = topo
        self.config = config
        self.replica = int(replica)
        self.dynamic = config.arrivals is not None
        self._run = None
        self._finished = None
        self._emitted = 0
        self._arrivals: Optional[_StreamedArrivals] = None
        self._arrival_key: Optional[int] = None

        process = LoadBalancingProcess(
            build_scheme(topo, config),
            rounding=config.rounding,
            rng=np.random.default_rng(config.seed + self.replica),
        )
        if self.dynamic:
            self._arrivals = _StreamedArrivals(
                _session_arrival_model(config, self.replica)
            )
            self._arrival_key = _arrival_key(config, self.replica)
            self._sim = DynamicSimulator(
                process,
                self._arrivals,
                rng=arrival_stream(config.seed, self._arrival_key),
            )
        else:
            self._sim = Simulator(
                process,
                switch_policy=make_switch_policy(config.switch),
                record_every=config.record_every,
                keep_loads=config.keep_loads,
                targets=config.targets,
            )

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._run is not None

    @property
    def round_index(self) -> int:
        self._require_started()
        return int(self._run.state.round_index)

    @property
    def state(self) -> LoadState:
        self._require_started()
        return self._run.state

    def _require_started(self) -> None:
        if self._run is None:
            raise SimulationError("session not started; call start() first")

    def _require_live(self) -> None:
        self._require_started()
        if self._finished is not None:
            raise SimulationError("session already finished")

    # ------------------------------------------------------------------
    def start(self, initial_load) -> "EngineSession":
        """Initialise the run from ``initial_load``; returns ``self``.

        Static sessions record round 0 immediately (so the first
        :meth:`records` call streams it); dynamic sessions record one row
        per executed round, exactly like the dynamic core.
        """
        if self._run is not None:
            raise SimulationError("session already started")
        load = np.asarray(initial_load, dtype=np.float64)
        if load.shape != (self.topo.n,):
            raise ConfigurationError(
                f"initial load has shape {load.shape}, expected ({self.topo.n},)"
            )
        self._run = self._sim.start(load, rounds_hint=self.config.rounds)
        return self

    def inject(self, deltas) -> None:
        """Queue extra per-node deltas for the *current* round (dynamic only).

        The deltas are added on top of the configured arrival model's
        output when the upcoming round's arrivals are applied.  Raises
        once the round's arrivals have already been applied (the injection
        could no longer take effect this round).
        """
        self._require_live()
        if not self.dynamic:
            raise ConfigurationError(
                "inject() needs a dynamic session (config.arrivals was None)"
            )
        if self._run.injected:
            raise SimulationError(
                f"arrivals already applied for round {self._run.state.round_index}"
            )
        extra = np.asarray(deltas, dtype=np.float64)
        if extra.shape != (self.topo.n,):
            raise ConfigurationError(
                f"injected deltas have shape {extra.shape}, "
                f"expected ({self.topo.n},)"
            )
        if extra.size and not np.isfinite(extra).all():
            raise ConfigurationError("injected deltas must be finite")
        r = int(self._run.state.round_index)
        queued = self._arrivals.queued
        if r in queued:
            queued[r] = queued[r] + extra
        else:
            queued[r] = extra.copy()

    def advance(self, rounds: int = 1) -> int:
        """Execute ``rounds`` balancing rounds; returns the new round index."""
        self._require_live()
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        for _ in range(rounds):
            self._sim.advance(self._run)
        return int(self._run.state.round_index)

    def records(self) -> List[dict]:
        """Rows recorded since the previous :meth:`records` call, as dicts."""
        self._require_started()
        table = self._run.table
        rows = [table.row(i) for i in range(self._emitted, len(table))]
        self._emitted = len(table)
        return rows

    def finish(self):
        """Seal the run; returns the
        :class:`~repro.core.simulator.SimulationResult` (static) or
        :class:`~repro.core.dynamic.DynamicResult` (dynamic)."""
        self._require_started()
        if self._finished is None:
            self._finished = self._sim.finish(self._run)
        return self._finished

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> str:
        """Write the complete session state to ``path``; returns the path.

        The checkpoint pairs with the exact ``(topo, config)`` the session
        was built from — :meth:`resume` verifies the config fingerprint
        and refuses mismatches rather than silently diverging.
        """
        self._require_live()
        run = self._run
        state = {
            "mode": "dynamic" if self.dynamic else "static",
            "replica": self.replica,
            "config_digest": _config_digest(self.config),
            "n": int(self.topo.n),
            "load": run.state.load,
            "flows": run.state.flows,
            "round_index": int(run.state.round_index),
            "process_rng": self._sim.process.rng.bit_generator.state,
            "last_min_transient": float(run.last_min_transient),
            "last_traffic": float(run.last_traffic),
            "rows": [run.table.row(i) for i in range(len(run.table))],
            "emitted": self._emitted,
        }
        if self.dynamic:
            state["arrival_rng"] = self._sim.rng.bit_generator.state
            state["pending"] = [
                float(run.pending_arrived),
                float(run.pending_departed),
                float(run.pending_clamped),
            ]
            state["injected"] = bool(run.injected)
            state["queued"] = {
                str(r): extra for r, extra in self._arrivals.queued.items()
            }
        else:
            state["targets"] = run.targets
            state["switched_at"] = run.switched_at
            state["stopped_at"] = run.stopped_at
            if run.loads_history is not None:
                state["loads_history"] = run.loads_history
            policy = self._sim.switch_policy
            if isinstance(policy, PotentialPlateauSwitch):
                state["plateau_history"] = list(policy._history)
        return save_checkpoint(path, state)

    @classmethod
    def resume(cls, topo, config: EngineConfig, path: str) -> "EngineSession":
        """Rebuild a session from a checkpoint written by :meth:`checkpoint`.

        ``topo`` and ``config`` must be the pair the checkpointed session
        ran with; the resumed session then continues bit for bit.
        """
        state = load_checkpoint(path)
        mode = state.get("mode")
        expected = "dynamic" if config.arrivals is not None else "static"
        if mode != expected:
            raise ConfigurationError(
                f"checkpoint {path} holds a {mode} session but the config "
                f"describes a {expected} run"
            )
        if state.get("config_digest") != _config_digest(config):
            raise ConfigurationError(
                f"checkpoint {path} was written under a different config; "
                "resume with the exact config the session was built from"
            )
        if int(state.get("n", -1)) != topo.n:
            raise ConfigurationError(
                f"checkpoint {path} is for n={state.get('n')} nodes, "
                f"topology has n={topo.n}"
            )
        session = cls(topo, config, replica=int(state["replica"]))
        load_state = LoadState(
            load=np.asarray(state["load"], dtype=np.float64),
            flows=np.asarray(state["flows"], dtype=np.float64),
            round_index=int(state["round_index"]),
        )
        session._sim.process.rng.bit_generator.state = state["process_rng"]
        rows = state["rows"]
        if session.dynamic:
            session._sim.rng.bit_generator.state = state["arrival_rng"]
            table = DynamicRecordTable(max(config.rounds, 1) + 1)
            for row in rows:
                table.append(**row)
            run = DynamicRun(state=load_state, table=table)
            run.pending_arrived, run.pending_departed, run.pending_clamped = (
                float(v) for v in state["pending"]
            )
            run.injected = bool(state["injected"])
            session._arrivals.queued = {
                int(r): np.asarray(extra, dtype=np.float64)
                for r, extra in state.get("queued", {}).items()
            }
        else:
            capacity = max(config.rounds // config.record_every + 2, 2)
            table = RecordTable(capacity)
            for row in rows:
                table.append(**row)
            loads_history = state.get("loads_history")
            run = SimulationRun(
                state=load_state,
                targets=np.asarray(state["targets"], dtype=np.float64),
                table=table,
                loads_history=(
                    [np.asarray(v, dtype=np.float64) for v in loads_history]
                    if loads_history is not None
                    else ([] if config.keep_loads else None)
                ),
                switched_at=state["switched_at"],
                stopped_at=state["stopped_at"],
            )
            if run.switched_at is not None:
                # The checkpointed run had already swapped SOS for FOS.
                session._sim._swap_to_fos()
            policy = session._sim.switch_policy
            if isinstance(policy, PotentialPlateauSwitch):
                policy._history.extend(
                    float(v) for v in state.get("plateau_history", [])
                )
        run.last_min_transient = float(state["last_min_transient"])
        run.last_traffic = float(state["last_traffic"])
        session._run = run
        session._emitted = int(state["emitted"])
        return session
