"""Async message-passing adapter: :class:`AsyncNetwork` behind the engine
protocol.

A thin subclass of :class:`~repro.engines.network.NetworkEngine`: the
record/metrics path is shared (so a zero-latency async run produces a
byte-identical result structure), and only the per-replica network
construction differs — each replica gets an event-driven
:class:`~repro.network.async_engine.AsyncNetwork` whose per-link latency
and bandwidth come from the topology's stamped attributes or from the
``EngineConfig.latency_model`` spec.  ``step()`` advances the *global*
round count by one: every node has finished that round, faster nodes may
have run ahead.

Random latency specs (``"uniform:LO,HI"``, ``"exp:MEAN"``) draw one
per-edge latency realisation from a generator derived from
``config.seed`` — the same realisation for every replica, so an ensemble
samples the balancing randomness on one network, not one network per
replica.
"""

from __future__ import annotations

import numpy as np

from ..network.async_engine import AsyncNetwork

from ..exceptions import ConfigurationError

from .base import EngineConfig, parse_faults_spec, parse_latency_spec, register_engine
from .network import NetworkEngine

__all__ = ["AsyncNetworkEngine", "resolve_link_latency"]

#: Latency RNG stream id, disjoint from the per-node streams
#: ``default_rng([seed, i])`` and the fault stream the same way
#: :data:`repro.network.engine.FAULT_STREAM_KEY` is.
LATENCY_STREAM_KEY = int.from_bytes(b"latency", "big")


def resolve_link_latency(topo, config: EngineConfig):
    """Materialise ``config.latency_model`` as a per-edge latency array.

    ``None`` defers to the topology's stamped ``link_latency`` (returning
    ``None`` so the network falls back to it); a spec overrides it.
    Random specs draw from ``default_rng([config.seed, LATENCY_STREAM_KEY])``
    — replica-independent, so every replica sees the same network.
    """
    spec = parse_latency_spec(config.latency_model)
    if spec is None:
        return None
    if spec[0] == "fixed":
        return np.full(topo.m_edges, spec[1], dtype=np.float64)
    rng = np.random.default_rng([config.seed, LATENCY_STREAM_KEY])
    if spec[0] == "uniform":
        return rng.uniform(spec[1], spec[2], size=topo.m_edges)
    return rng.exponential(spec[1], size=topo.m_edges)  # ("exp", mean)


@register_engine
class AsyncNetworkEngine(NetworkEngine):
    """One event-driven :class:`AsyncNetwork` per replica.

    Zero latency everywhere (no stamped link attributes, no
    ``latency_model``) reproduces the synchronous :class:`NetworkEngine`
    trajectory bit for bit — the cross-engine equivalence suite runs this
    backend as its fifth member.
    """

    name = "async"

    def _reject(self, config: EngineConfig) -> None:
        # Accepts the async-only knobs (latency_model / max_skew) as well
        # as the fault models the synchronous network engine accepts.  The
        # latency_buckets quantisation policy belongs to the staleness
        # engine — the event queue schedules real-valued delays directly.
        if config.latency_buckets != "ceil":
            raise ConfigurationError(
                "the async engine does not support "
                f"latency_buckets={config.latency_buckets!r} "
                "(staleness engine only)"
            )

    def _make_net(self, topo, config, load, beta, switch_round, b):
        return AsyncNetwork(
            topo,
            load,
            scheme=config.scheme,
            beta=beta,
            rounding=config.rounding,
            speeds=config.speeds,
            seed=config.seed + b,
            faults=parse_faults_spec(config.faults),
            switch_to_fos_at=switch_round,
            link_latency=resolve_link_latency(topo, config),
            max_skew=config.max_skew,
        )
