"""Persistent shared-memory worker pool for the sharded engine.

The per-call sharded engine (:mod:`repro.engines.sharded`) pays a full
``ctx.Pool`` spawn, a pickled ``(Topology, EngineConfig, loads)`` payload
and a pickled :class:`~repro.engines.base.RecordBatch` return on every
call.  Sweeps and ensembles issue *many* calls on the *same* graph, so
all three costs are pure overhead after the first call.  This module
amortises them:

* **Persistent workers.**  :class:`ShardedWorkerPool` owns long-lived
  worker processes connected by pipes.  A call ships one small task
  message per shard; the processes (and their warm imports) survive
  across calls.
* **Per-worker caches.**  Each worker caches every
  :class:`~repro.graphs.topology.Topology` it has seen, keyed by
  :func:`topology_fingerprint`, and keeps a per-graph operator cache that
  :class:`~repro.engines.batched.BatchedVectorEngine` fills with the
  prepared CSR operators (difference/incidence matrices, the padded
  excess adjacency, the slot gather indices).  Repeated calls on the
  same graph skip both the topology pickle and the operator builds.
* **Zero-copy records.**  For the common record path (dense float64
  table records, no churn, no staleness knobs, no ``keep_loads``) the
  parent allocates the merged result arrays in
  ``multiprocessing.shared_memory`` blocks and each worker writes its
  record *columns* directly into its ``[:, lo:hi]`` slice.  The parent's
  "merge" is then just a set of numpy views over the blocks — no result
  pickling, no h-stack copy.  Ineligible configs transparently fall back
  to pickled per-shard batches over the pipe (still pooled, still
  cached — only the zero-copy return is skipped).

Bit-identity
------------
The pool reuses :meth:`ShardedEngine._shard_payloads` verbatim, so the
shard plan, the per-replica stream keys and the worker-side engines are
exactly those of the per-call sharded engine; workers write the same
column values the per-call merge would h-stack.  Pooled results are
therefore bit-identical to the per-call sharded engine (and through it
to the batched engine) for every rounding, static and dynamic.

Teardown
--------
Shared blocks are unlinked in a ``finally`` — a worker raising mid-call
(or dying outright) cannot leak them.  Worker errors surface as
:class:`~repro.exceptions.ConfigurationError` naming the failing shard's
replica range; a dead worker resets the pool so the next call starts
from fresh processes.

The process-wide default pool (:func:`default_pool`) is what
``EngineConfig.pool=True`` / ``simulate --pool`` route through; it is
created on first use and closed at interpreter exit.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import sys
from dataclasses import replace
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.topology import Topology

from .base import (
    EngineConfig,
    RecordBatch,
    as_load_batch,
    merge_record_batches,
    plan_shards,
    resolve_replica_params,
    resolve_workers,
)
from .batched import BatchedVectorEngine
from .sharded import ShardedEngine, _start_method, _wants_staleness
from .staleness import StalenessEngine

import multiprocessing

__all__ = ["ShardedWorkerPool", "default_pool", "topology_fingerprint"]


def topology_fingerprint(topo: Topology) -> str:
    """Content hash of a topology: structure plus the engine-visible
    annotations (spectral hints, per-link latency/bandwidth planes).

    Two topologies with equal fingerprints prepare to identical operators,
    so pool workers key their topology and operator caches on it.
    """
    h = hashlib.sha1()
    h.update(str(topo.n).encode())
    h.update(topo.edge_u.tobytes())
    h.update(topo.edge_v.tobytes())
    h.update(repr(topo.grid_shape).encode())
    h.update(repr(topo.cube_dim).encode())
    for attr in ("link_latency", "link_bandwidth"):
        val = getattr(topo, attr, None)
        if val is None:
            h.update(b"none")
        else:
            h.update(np.ascontiguousarray(val).tobytes())
    return h.hexdigest()


# ======================================================================
# worker side
# ======================================================================
def _release_to_views(shm: shared_memory.SharedMemory) -> None:
    """Hand the block's mapping over to the numpy views created on it.

    A numpy array built on ``shm.buf`` keeps the *mmap object* as its
    ``base``, but ``SharedMemory.__del__`` force-closes that mmap even
    while views are alive — a GC'd handle would turn every escaped view
    (final states, record columns inside ``SimulationResult``) into a
    segfault.  Detaching the mmap from the handle instead leaves it
    referenced only by the views, so the memory unmaps exactly when the
    last view dies.  Call only after ``unlink()`` on an already-unlinked
    block.
    """
    try:
        if shm._buf is not None:
            shm._buf.release()
        shm._buf = None
        shm._mmap = None
    except (AttributeError, BufferError):  # pragma: no cover - defensive
        pass


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-created block without claiming it.

    Python <= 3.12 registers every attach with the resource tracker, but
    the *parent* owns these blocks: its tracker already guarantees crash
    cleanup.  A worker-side claim is at best a duplicate and at worst a
    foreign tracker entry — a spawn worker's own tracker, or the private
    tracker a fork worker starts when the parent had none running at
    fork time, would "clean up" the parent's blocks at worker exit and
    warn about already-unlinked names.  Suppress the registration for
    the duration of the attach instead of unwinding it afterwards.
    """
    saved = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = saved


def _write_block(name: str, shape: Tuple[int, ...], dtype, writer) -> None:
    """Attach a block, hand a numpy view to ``writer``, detach cleanly."""
    shm = _attach_block(name)
    try:
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        writer(view)
        del view  # the mapped buffer must have no live views before close()
    finally:
        shm.close()


def _check_layout(cond: bool, what: str) -> None:
    if not cond:
        raise ConfigurationError(
            f"pool zero-copy layout mismatch ({what}); this is a bug in "
            "the parent's eligibility check, not in the workload"
        )


def _write_shared(
    batch: RecordBatch, spec: Dict[str, Any], lo: int, hi: int, write_grid: bool
) -> None:
    """Write one shard's record columns into the parent's shared blocks.

    The parent decided zero-copy eligibility before dispatch, so a layout
    mismatch here is a programming error — it raises loudly rather than
    silently falling back.
    """
    count, B = spec["count"], spec["B"]
    width = hi - lo
    if spec["dynamic"]:
        _check_layout(batch.dynamic_round_index is not None, "no dynamic grid")
        _check_layout(
            batch.dynamic_round_index.shape[0] == count, "dynamic grid length"
        )
        _check_layout(
            list(batch.dynamic_columns) == list(spec["fields"]),
            "dynamic column set",
        )
        if write_grid:
            _write_block(
                spec["round"], (count,), np.int64,
                lambda v: v.__setitem__(slice(None), batch.dynamic_round_index),
            )
        cols = batch.dynamic_columns
    else:
        _check_layout(batch.round_index is not None, "no static grid")
        _check_layout(batch.round_index.shape[0] == count, "record grid length")
        _check_layout(
            list(batch.columns) == list(spec["fields"]), "column set"
        )
        _check_layout(batch.loads_history is None, "loads_history present")
        if write_grid:
            _write_block(
                spec["round"], (count,), np.int64,
                lambda v: v.__setitem__(slice(None), batch.round_index),
            )
        _write_block(
            spec["scheme"], (count, B), np.uint8,
            lambda v: v.__setitem__((slice(None), slice(lo, hi)),
                                    batch.scheme_codes),
        )
        cols = batch.columns

    fields = spec["fields"]

    def _fill_cols(view: np.ndarray) -> None:
        for i, f in enumerate(fields):
            _check_layout(cols[f].shape == (count, width), f"column {f!r}")
            view[i, :, lo:hi] = cols[f]

    _write_block(spec["cols"], (len(fields), count, B), np.float64, _fill_cols)
    _check_layout(
        batch.final_loads.shape == (width, spec["n"])
        and batch.final_loads.dtype == np.float64,
        "final_loads",
    )
    _write_block(
        spec["final_loads"], (B, spec["n"]), np.float64,
        lambda v: v.__setitem__(slice(lo, hi), batch.final_loads),
    )
    _write_block(
        spec["final_flows"], (B, spec["m"]), np.float64,
        lambda v: v.__setitem__(slice(lo, hi), batch.final_flows),
    )
    _write_block(
        spec["switched"], (B,), np.int64,
        lambda v: v.__setitem__(slice(lo, hi), batch.switched_at),
    )


def _execute_task(
    task: Dict[str, Any],
    topo_cache: Dict[str, Topology],
    op_caches: Dict[str, Dict],
) -> Optional[RecordBatch]:
    """Run one shard task against the worker's warm caches.

    Pure function of ``(task, caches)`` so the worker body is testable
    in-process; returns the shard's :class:`RecordBatch` when the task
    has no shared result spec (pickle fallback) and ``None`` after a
    successful zero-copy write.
    """
    key = task["graph_key"]
    if task.get("topo") is not None:
        topo_cache[key] = task["topo"]
    try:
        topo = topo_cache[key]
    except KeyError:
        raise ConfigurationError(
            f"pool worker has no cached topology for key {key[:12]}... "
            "(parent/worker cache desync)"
        ) from None
    config: EngineConfig = task["config"]
    lo, hi = task["lo"], task["hi"]
    if _wants_staleness(config):
        engine: Any = StalenessEngine()
    else:
        engine = BatchedVectorEngine()
        # Per-graph operator cache: the handle construction fills it on
        # the first call and reuses the CSR operators afterwards.
        engine.operator_cache = op_caches.setdefault(key, {})
    loads_shm = _attach_block(task["loads_name"])
    try:
        plane = np.ndarray(
            task["loads_shape"], dtype=np.float64, buffer=loads_shm.buf
        )
        loads = np.array(plane[lo:hi], copy=True)
        del plane
    finally:
        loads_shm.close()
    if task["dynamic"]:
        batch = engine.run_dynamic_batch(topo, config, loads)
    else:
        batch = engine.run_batch(topo, config, loads)
    spec = task.get("shared")
    if spec is None:
        return batch
    _write_shared(batch, spec, lo, hi, task["write_grid"])
    return None


def _pool_worker(conn, package_root: str) -> None:
    """Worker main loop: receive tasks until the ``None`` sentinel.

    Runs in a child process.  ``package_root`` makes ``repro`` importable
    under spawn/forkserver starts (fork children inherit ``sys.path``).
    Replies are ``("ok", batch_or_None)`` or ``("error", exception)``.
    """
    if package_root not in sys.path:
        sys.path.insert(0, package_root)
    topo_cache: Dict[str, Topology] = {}
    op_caches: Dict[str, Dict] = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        try:
            reply = ("ok", _execute_task(task, topo_cache, op_caches))
        except Exception as exc:
            try:
                reply = ("error", exc)
                conn.send(reply)
            except Exception:
                # unpicklable exception: degrade to its repr
                conn.send(("error", ConfigurationError(repr(exc))))
            continue
        conn.send(reply)
    conn.close()


# ======================================================================
# parent side
# ======================================================================
class ShardedWorkerPool:
    """Long-lived worker processes running sharded engine calls.

    Drop-in execution backend for :class:`~repro.engines.sharded.
    ShardedEngine`: ``pool.run_batch(topo, config, loads)`` returns the
    same merged :class:`RecordBatch` (bit-identical) the per-call engine
    would, but the workers, their imports, the transferred topologies and
    the prepared CSR operators all persist across calls.  Use
    ``EngineConfig.pool=True`` (or ``simulate --pool``) to route through
    the process-wide :func:`default_pool`, or construct and pass an
    instance explicitly (``EngineConfig(pool=my_pool)``) to own the
    lifecycle — ``close()`` it when done, or use it as a context manager.
    """

    def __init__(self, workers: Any = "auto"):
        #: worker count — resolved once, like the sharded engine's spec
        #: (the per-call shard floor of >= 2 columns still caps the number
        #: of shards actually dispatched for small batches).
        self.n_workers = resolve_workers(workers, 1 << 30)
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: List[Any] = []
        #: per-worker set of topology fingerprints already shipped
        self._known: List[set] = []
        self._closed = False
        #: calls served since the last (re)spawn — exposed for tests and
        #: benchmarks to prove worker persistence.
        self.calls_served = 0

    # -- lifecycle -----------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._closed:
            raise ConfigurationError("this ShardedWorkerPool is closed")
        if self._procs and not all(p.is_alive() for p in self._procs):
            self._reset()
        if self._procs:
            return
        ctx = multiprocessing.get_context(_start_method())
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        for _ in range(self.n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_pool_worker,
                args=(child_conn, package_root),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._known.append(set())

    def _reset(self) -> None:
        """Tear the workers down (after a death) so the next call respawns."""
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=2)
        self._procs, self._conns, self._known = [], [], []

    def close(self) -> None:
        """Shut the workers down; the pool cannot be used afterwards."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs, self._conns, self._known = [], [], []

    def __enter__(self) -> "ShardedWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- zero-copy eligibility ----------------------------------------
    @staticmethod
    def _static_record_count(config: EngineConfig) -> int:
        """Rows of the static record grid: round 0, every ``record_every``
        rounds, plus the forced terminal record."""
        R, e = config.rounds, config.record_every
        if R <= 0:
            return 1
        return 1 + R // e + (1 if R % e else 0)

    def _zero_copy_ok(
        self,
        topo: Topology,
        config: EngineConfig,
        payloads: List,
        bounds: List[Tuple[int, int]],
        dynamic: bool,
    ) -> bool:
        """Whether every shard will produce the dense-table layout the
        shared blocks assume.  Must agree exactly with what the workers
        do — the decision replays the worker's own dispatch checks."""
        if (
            config.churn is not None
            or _wants_staleness(config)
            or config.record_mode != "table"
            or config.keep_loads
            or config.precision != "float64"
        ):
            return False
        if not dynamic:
            # A shard taking the closed-form fast path emits prebuilt or
            # differently-shaped records; replay the eligibility check on
            # each shard config (per-replica params slice per shard).
            probe = BatchedVectorEngine()
            for (_t, shard_config, _l, _d), (lo, hi) in zip(payloads, bounds):
                params = resolve_replica_params(
                    shard_config.replica_params, hi - lo
                )
                if probe._fast_path_mode(topo, shard_config, params) is not None:
                    return False
        return True

    # -- the call ------------------------------------------------------
    def run_batch(
        self,
        topo: Topology,
        config: EngineConfig,
        initial_loads,
        dynamic: bool = False,
    ) -> RecordBatch:
        """Run one sharded call on the persistent workers.

        Returns the merged :class:`RecordBatch` — zero-copy views over
        shared blocks when the config is eligible, a pickled-and-merged
        batch otherwise.  Bit-identical to
        ``ShardedEngine.run``/``run_dynamic`` either way.
        """
        loads = as_load_batch(initial_loads, topo.n)
        B = loads.shape[0]
        shard_cfg = replace(config, workers=self.n_workers, pool=None)
        payloads = ShardedEngine()._shard_payloads(topo, shard_cfg, loads, dynamic)
        bounds = plan_shards(B, len(payloads))
        self._ensure_workers()
        key = topology_fingerprint(topo)
        zero_copy = self._zero_copy_ok(topo, config, payloads, bounds, dynamic)

        from ..core.records import DYNAMIC_FLOAT_FIELDS, FLOAT_FIELDS

        fields = tuple(DYNAMIC_FLOAT_FIELDS if dynamic else FLOAT_FIELDS)
        count = (
            config.rounds if dynamic else self._static_record_count(config)
        )
        n, m = topo.n, topo.m_edges

        blocks: List[shared_memory.SharedMemory] = []

        def _alloc(shape: Tuple[int, ...], dtype) -> shared_memory.SharedMemory:
            nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            blocks.append(shm)
            return shm

        keep_blocks = False
        try:
            loads_shm = _alloc((B, n), np.float64)
            np.ndarray((B, n), dtype=np.float64, buffer=loads_shm.buf)[:] = loads
            spec = None
            if zero_copy:
                spec = {
                    "dynamic": dynamic,
                    "count": count,
                    "B": B,
                    "n": n,
                    "m": m,
                    "fields": fields,
                    "round": _alloc((count,), np.int64).name,
                    "cols": _alloc((len(fields), count, B), np.float64).name,
                    "final_loads": _alloc((B, n), np.float64).name,
                    "final_flows": _alloc((B, m), np.float64).name,
                    "switched": _alloc((B,), np.int64).name,
                }
                if not dynamic:
                    spec["scheme"] = _alloc((count, B), np.uint8).name

            # -- dispatch ------------------------------------------------
            tasked: List[int] = []
            for i, ((_t, shard_config, _l, _d), (lo, hi)) in enumerate(
                zip(payloads, bounds)
            ):
                task = {
                    "graph_key": key,
                    "topo": topo if key not in self._known[i] else None,
                    "config": shard_config,
                    "lo": lo,
                    "hi": hi,
                    "dynamic": dynamic,
                    "loads_name": loads_shm.name,
                    "loads_shape": (B, n),
                    "shared": spec,
                    "write_grid": i == 0,
                }
                try:
                    self._conns[i].send(task)
                except (BrokenPipeError, OSError) as exc:
                    self._reset()
                    raise ConfigurationError(
                        f"pool worker for replicas [{lo}:{hi}) died before "
                        "accepting its shard"
                    ) from exc
                tasked.append(i)

            # -- collect (drain every tasked worker before raising) ------
            replies: List[Tuple[str, Any]] = []
            for i in tasked:
                try:
                    replies.append(self._conns[i].recv())
                except (EOFError, OSError):
                    replies.append(("died", None))
            failures = [
                (i, status, payload)
                for i, (status, payload) in zip(tasked, replies)
                if status != "ok"
            ]
            if failures:
                i, status, payload = failures[0]
                lo, hi = bounds[i]
                if any(status == "died" for _i, status, _p in failures):
                    self._reset()
                if status == "died":
                    raise ConfigurationError(
                        f"pool worker for replicas [{lo}:{hi}) died mid-run; "
                        "the pool has been reset (shared blocks unlinked)"
                    )
                raise ConfigurationError(
                    f"pool worker for replicas [{lo}:{hi}) failed: {payload}"
                ) from payload
            for i in tasked:
                self._known[i].add(key)
            self.calls_served += 1

            # -- merge ---------------------------------------------------
            if not zero_copy:
                return merge_record_batches([p for _s, p in replies])

            def _view(name_key: str, shape, dtype) -> np.ndarray:
                shm = next(b for b in blocks if b.name == spec[name_key])
                return np.ndarray(shape, dtype=dtype, buffer=shm.buf)

            cols_plane = _view("cols", (len(fields), count, B), np.float64)
            col_views = {f: cols_plane[i] for i, f in enumerate(fields)}
            if dynamic:
                batch = RecordBatch(
                    dynamic_round_index=_view("round", (count,), np.int64),
                    dynamic_columns=col_views,
                    final_loads=_view("final_loads", (B, n), np.float64),
                    final_flows=_view("final_flows", (B, m), np.float64),
                    switched_at=_view("switched", (B,), np.int64),
                )
            else:
                batch = RecordBatch(
                    round_index=_view("round", (count,), np.int64),
                    scheme_codes=_view("scheme", (count, B), np.uint8),
                    columns=col_views,
                    final_loads=_view("final_loads", (B, n), np.float64),
                    final_flows=_view("final_flows", (B, m), np.float64),
                    switched_at=_view("switched", (B,), np.int64),
                )
            # Unlink now (the name is no longer needed) and hand each
            # mapping over to the views: the memory stays valid for as
            # long as any escaped view lives and unmaps with the last.
            keep_blocks = True
            for shm in blocks:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                _release_to_views(shm)
            return batch
        finally:
            # Satellite contract: a shard raising mid-call must not leak
            # the blocks — unlink unconditionally (workers are done or
            # dead by the time we get here; POSIX keeps mapped memory
            # alive for live views, unlink just drops the name).
            if not keep_blocks:
                for shm in blocks:
                    try:
                        shm.close()
                    except BufferError:  # pragma: no cover - live view
                        pass
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass


# ======================================================================
# process-wide default pool
# ======================================================================
_DEFAULT_POOL: Optional[ShardedWorkerPool] = None


def default_pool() -> ShardedWorkerPool:
    """The process-wide pool behind ``EngineConfig.pool=True``.

    Created on first use with ``workers="auto"`` and closed at
    interpreter exit.  Sweeps and ensembles that set ``pool=True`` on
    their configs therefore share one pool across all points without any
    plumbing.
    """
    global _DEFAULT_POOL
    if _DEFAULT_POOL is None or _DEFAULT_POOL._closed:
        _DEFAULT_POOL = ShardedWorkerPool()
        atexit.register(_DEFAULT_POOL.close)
    return _DEFAULT_POOL
