"""Multiprocess sharded engine: column shards of one replica batch.

After the closed-form fast paths of PR 3 the batched engine is bound by a
single core; the remaining multiplicative speedup for seed-averaged
ensembles is process parallelism.  :class:`ShardedEngine` splits a
``(B, n)`` replica batch into contiguous *column shards*, runs one
:class:`~repro.engines.batched.BatchedVectorEngine` per worker process,
and merges the per-shard record batches
(:func:`~repro.engines.base.merge_record_batches`) into the exact batch a
single-process run would have produced.

Bit-identity contract
---------------------
The merge is **bit-identical** to the single-process batched engine for
every rounding, static and dynamic, any worker count, because no random
stream and no float expression ever crosses a replica boundary:

* rounding randomness comes from per-replica spawned streams
  (:func:`~repro.engines.base.rounding_stream`), keyed by the replica's
  *global* batch index — the shard passes ``replica_keys=range(lo, hi)``
  so replica ``b`` draws the same stream in any shard;
* arrival randomness is already per-replica
  (:func:`~repro.core.dynamic.arrival_stream`); the shard pins
  ``arrival_seeds`` the same way.  ``arrival_sampling="batch"`` draws the
  whole batch from one shared stream and therefore cannot shard
  bit-identically — the engine rejects it;
* every kernel of the batched engine is column-independent (CSR matvecs,
  reductions, clamping, switching all act per replica column), so a
  shard's columns equal the same columns of the full-batch run.  One
  subtlety: numpy reduces a *single*-column plane through a different
  (contiguous pairwise) kernel than any wider plane, so shard plans keep
  at least two columns per shard whenever the batch has two — otherwise
  the fractional reductions (continuous ``identity`` runs, the dynamic
  potential, plateau switching) would only agree to accumulation
  accuracy.

Topology churn shards too: the parent compiles the deterministic
:class:`~repro.core.churn.ChurnPlan` exactly once (the random schedule
draw happens before any shard exists) and broadcasts the plan in every
shard config, so workers replay identical patches at identical rounds
and the merge stays bit-identical to the batched engine under churn.

Worker lifecycle
----------------
Workers are plain ``multiprocessing`` pool processes.  The payload per
shard is ``(Topology, EngineConfig, loads_shard, dynamic)`` — everything
pickles, so the engine is **spawn-safe**; the start method defaults to
``fork`` where available (no interpreter restart) and can be forced with
the ``REPRO_SHARDED_START`` environment variable (``spawn`` /
``forkserver`` / ``fork``).  A single-shard plan (one worker, or ``B <=
3`` — the >= 2-column shard floor caps the shard count at ``B // 2``)
runs inline in the parent — no process is spawned, but the exact same
shard/merge code path executes.

Per-call workers are the default.  Setting ``EngineConfig.pool``
(``True``/``"auto"`` for the process-wide default, or an explicit
:class:`~repro.engines.pool.ShardedWorkerPool`) routes the call through
a *persistent* pool instead: workers survive across calls, cache the
prepared operators per topology, and return their record columns through
shared memory — same shard plan, same merge, bit-identical results,
without re-paying process startup on every call.

The engine implements the fused :meth:`run` / :meth:`run_dynamic` surface
only; the ``prepare()``/``step()`` protocol would need one IPC round trip
per simulated round and is deliberately refused (use the batched engine
for step-level access — the traces are identical).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.churn import resolve_churn
from ..exceptions import ConfigurationError
from ..graphs.topology import Topology

from .base import (
    Engine,
    EngineConfig,
    RecordBatch,
    as_load_batch,
    merge_record_batches,
    plan_shards,
    register_engine,
    reject_async_only,
    reject_network_only,
    resolve_arrival_models,
    resolve_replica_params,
    resolve_workers,
)
from .batched import BatchedVectorEngine
from .staleness import StalenessEngine

__all__ = ["ShardedEngine"]


def _wants_staleness(config: EngineConfig) -> bool:
    """Route a shard to the staleness engine when the config asks for the
    bounded-staleness regime (latency buckets, skew gate, or faults) —
    its delayed planes slice by column exactly like the batched kernels,
    so the shard/merge contract carries over unchanged."""
    return (
        config.latency_model is not None
        or config.max_skew is not None
        or config.faults is not None
        or config.latency_buckets != "ceil"
    )

#: Fallback start method: ``fork`` avoids the per-worker interpreter
#: restart and re-import cost where the platform offers it.
_DEFAULT_START = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def _start_method() -> str:
    """The configured start method (``REPRO_SHARDED_START`` overrides)."""
    method = os.environ.get("REPRO_SHARDED_START", _DEFAULT_START)
    known = multiprocessing.get_all_start_methods()
    if method not in known:
        raise ConfigurationError(
            f"REPRO_SHARDED_START={method!r} is not available here; "
            f"known: {known}"
        )
    return method


def _init_worker(package_root: str) -> None:
    """Pool initializer: make ``repro`` importable in spawned children.

    Fork children inherit ``sys.path``; spawn/forkserver children only
    inherit the environment, so a parent that imported ``repro`` from a
    source checkout (``PYTHONPATH=src``) must hand the path over
    explicitly before the first task unpickles.
    """
    if package_root not in sys.path:
        sys.path.insert(0, package_root)


def _run_shard(payload: Tuple[Topology, EngineConfig, np.ndarray, bool]) -> RecordBatch:
    """Run one column shard through a fresh batched engine (worker side).

    Executed in a worker process for multi-shard plans and inline in the
    parent for single-shard plans — the code path is identical either way.
    The shard config already carries the global ``replica_keys`` /
    ``arrival_seeds``, so the returned :class:`RecordBatch` holds exactly
    the full-batch run's columns for this shard's replicas.
    """
    topo, config, loads, dynamic = payload
    engine = StalenessEngine() if _wants_staleness(config) else BatchedVectorEngine()
    if dynamic:
        return engine.run_dynamic_batch(topo, config, loads)
    return engine.run_batch(topo, config, loads)


@register_engine
class ShardedEngine(Engine):
    """Column shards of a replica batch across worker processes."""

    name = "sharded"

    # ------------------------------------------------------------------
    def _refuse_protocol(self, what: str):
        raise ConfigurationError(
            f"the sharded engine does not expose {what}; it runs whole "
            "batches through run()/run_dynamic() (per-round IPC would cost "
            "more than it parallelises — use the batched engine for "
            "step-level access, the traces are identical)"
        )

    def prepare(self, topo, config, initial_loads):
        self._refuse_protocol("prepare()")

    def step(self, handle):
        self._refuse_protocol("step()")

    def arrive(self, handle):
        self._refuse_protocol("arrive()")

    def metrics(self, handle):
        self._refuse_protocol("metrics()")

    # ------------------------------------------------------------------
    def _shard_payloads(
        self,
        topo: Topology,
        config: EngineConfig,
        loads: np.ndarray,
        dynamic: bool,
    ) -> List[Tuple[Topology, EngineConfig, np.ndarray, bool]]:
        """Validate the config and slice the batch into shard payloads."""
        config.validate()
        if not _wants_staleness(config):
            # Latency/skew/fault configs route to the staleness engine
            # worker-side, which accepts exactly these knobs; everything
            # else runs the batched engine and keeps its guards.
            reject_async_only(config, "sharded")
            reject_network_only(config, "sharded")
        # Churn shards bit-identically once every worker replays the *same*
        # compiled plan: the random schedule draw happens exactly once, here
        # in the parent (resolve_churn seeds its own stream), and the
        # resulting ChurnPlan is broadcast in the shard configs — workers
        # re-validate it via the ChurnPlan passthrough in parse_churn_spec
        # and apply identical patches at identical rounds.  The patch
        # machinery (handoffs, flow remap, operator rebuild) acts per
        # replica column, so the column-independence argument above holds
        # under churn too.  The heterogeneous-speeds guard (and the rest of
        # the churn compatibility matrix) lives in config.validate() and
        # still applies unchanged.
        churn_plan = resolve_churn(topo, config)
        if churn_plan is not None and _wants_staleness(config):
            # The staleness engine the latency/skew/fault knobs route to
            # rejects churn; refuse the combination here so the error names
            # the engine the caller actually asked for.
            raise ConfigurationError(
                "the sharded engine cannot combine churn with latency/"
                "skew/fault knobs (the bounded-staleness shard path does "
                "not support mutating topologies)"
            )
        if config.arrival_sampling == "batch":
            raise ConfigurationError(
                "the sharded engine does not support "
                "arrival_sampling='batch': the whole batch draws from one "
                "shared stream, which cannot split across workers "
                "bit-identically (use the batched engine, or stream "
                "sampling)"
            )
        B = loads.shape[0]
        replica_keys: Sequence[int] = (
            [int(k) for k in config.replica_keys]
            if config.replica_keys is not None
            else range(B)
        )
        if len(replica_keys) != B:
            raise ConfigurationError(
                f"{len(replica_keys)} replica_keys for {B} replicas"
            )
        params = resolve_replica_params(config.replica_params, B)
        arrival_seeds: Optional[Sequence[int]] = None
        arrival_models: Optional[Sequence] = None
        if config.arrivals is not None:
            arrival_models = resolve_arrival_models(config.arrivals, B)
            arrival_seeds = (
                [int(k) for k in config.arrival_seeds]
                if config.arrival_seeds is not None
                else range(B)
            )
            if len(arrival_seeds) != B:
                raise ConfigurationError(
                    f"{len(arrival_seeds)} arrival_seeds for {B} replicas"
                )
        # Shards keep >= 2 columns whenever the batch has >= 2: numpy sums a
        # single-column plane through its contiguous pairwise kernel, whose
        # *fractional* reductions differ at the ulp level from the strided
        # row-pairwise kernel every width >= 2 goes through — a width-1
        # shard of a wider batch would break bit-identity for the continuous
        # identity process and the fractional dynamic/plateau reductions.
        n_shards = max(1, min(resolve_workers(config.workers, B), B // 2 or 1))
        payloads = []
        for lo, hi in plan_shards(B, n_shards):
            shard_config = replace(
                config,
                workers=None,  # the worker-side batched engine runs alone
                pool=None,  # pooling is a parent-side routing decision
                churn=churn_plan,  # precompiled plan, identical per shard
                replica_keys=list(replica_keys[lo:hi]),
                arrival_seeds=(
                    list(arrival_seeds[lo:hi])
                    if arrival_seeds is not None
                    else None
                ),
                arrivals=(
                    list(arrival_models[lo:hi])
                    if arrival_models is not None
                    else None
                ),
                # The parameter planes shard with their columns: replica b
                # carries the same plane entries in any shard assignment,
                # so the merge stays bit-identical to the batched run.
                replica_params=(
                    params.shard(lo, hi) if params is not None else None
                ),
            )
            payloads.append((topo, shard_config, loads[lo:hi], dynamic))
        return payloads

    def _run_shards(
        self, payloads: List[Tuple[Topology, EngineConfig, np.ndarray, bool]]
    ) -> RecordBatch:
        """Execute the shard plan and merge the per-shard record batches."""
        if len(payloads) == 1:
            return merge_record_batches([_run_shard(payloads[0])])
        ctx = multiprocessing.get_context(_start_method())
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        with ctx.Pool(
            processes=len(payloads),
            initializer=_init_worker,
            initargs=(package_root,),
        ) as pool:
            batches = pool.map(_run_shard, payloads)
        return merge_record_batches(batches)

    def _resolve_pool(self, config: EngineConfig):
        """Map ``config.pool`` to a live pool, or ``None`` for per-call
        workers.  ``True``/``"auto"`` route to the process-wide default
        :class:`~repro.engines.pool.ShardedWorkerPool`; an explicit pool
        instance is used as-is (callers own its lifecycle)."""
        spec = config.pool
        if spec is None or spec is False:
            return None
        if spec is True or spec == "auto":
            from .pool import default_pool  # lazy: pool imports sharded

            return default_pool()
        return spec

    # ------------------------------------------------------------------
    def run(self, topo, config, initial_loads):
        """Shard the batch across workers; one ``SimulationResult`` per
        replica, bit-identical to the batched engine for any worker count.
        """
        if config.arrivals is not None:
            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        loads = as_load_batch(initial_loads, topo.n)
        pool = self._resolve_pool(config)
        if pool is not None:
            return pool.run_batch(topo, config, loads).results()
        payloads = self._shard_payloads(topo, config, loads, dynamic=False)
        return self._run_shards(payloads).results()

    def run_dynamic(self, topo, config, initial_loads):
        """Shard a dynamic batch across workers; one ``DynamicResult`` per
        replica, bit-identical to the batched engine (stream sampling).
        """
        if config.arrivals is None:
            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        loads = as_load_batch(initial_loads, topo.n)
        pool = self._resolve_pool(config)
        if pool is not None:
            return pool.run_batch(
                topo, config, loads, dynamic=True
            ).dynamic_results()
        payloads = self._shard_payloads(topo, config, loads, dynamic=True)
        return self._run_shards(payloads).dynamic_results()
