"""Reference engine: the classic simulator behind the engine protocol.

Each replica is an incremental :class:`~repro.core.simulator.Simulator` run
(:meth:`start` / :meth:`advance` / :meth:`finish`), so the engine's traces
are *the* reference semantics by construction — there is no second
implementation to keep in sync.  Replica ``b`` seeds its rounding generator
with ``default_rng(seed + b)``, so a one-replica run with seed ``s``
reproduces the classic ``Simulator.run`` with ``default_rng(s)`` exactly.

Dynamic workloads (``config.arrivals``) work the same way: each replica is
an incremental :class:`~repro.core.dynamic.DynamicSimulator` run whose
arrival stream is :func:`~repro.core.dynamic.arrival_stream`\\ ``(seed,
key_b)``, so engine replica ``b`` reproduces a standalone
``DynamicSimulator`` seeded with that stream bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.dynamic import DynamicRun, DynamicSimulator
from ..core.process import LoadBalancingProcess
from ..core.schemes import FirstOrderScheme, SecondOrderScheme
from ..core.simulator import SimulationRun, Simulator
from ..graphs.topology import Topology

from .base import (
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    StepBatch,
    as_load_batch,
    make_switch_policy,
    register_engine,
    resolve_arrival_models,
    resolve_arrival_rngs,
    reject_batched_only,
    reject_sharded_only,
)

__all__ = ["ReferenceEngine"]


def build_scheme(topo: Topology, config: EngineConfig):
    """The continuous scheme described by an engine config."""
    if config.scheme == "fos":
        return FirstOrderScheme(topo, speeds=config.speeds, alphas=config.alphas)
    return SecondOrderScheme(
        topo, beta=config.beta, speeds=config.speeds, alphas=config.alphas
    )


@dataclass
class _ReferenceHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[Tuple[Simulator, SimulationRun]]


@dataclass
class _DynamicReferenceHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[Tuple[DynamicSimulator, DynamicRun]]


@register_engine
class ReferenceEngine(Engine):
    """Per-replica loop over the incremental simulator core."""

    name = "reference"

    def prepare(self, topo, config, initial_loads):
        config.validate()
        reject_batched_only(config, 'reference')
        reject_sharded_only(config, 'reference')
        if config.precision != "float64":
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "the reference engine only supports precision='float64'"
            )
        loads = as_load_batch(initial_loads, topo.n)
        if config.arrivals is not None:
            return self._prepare_dynamic(topo, config, loads)
        replicas: List[Tuple[Simulator, SimulationRun]] = []
        for b, load in enumerate(loads):
            process = LoadBalancingProcess(
                build_scheme(topo, config),
                rounding=config.rounding,
                rng=np.random.default_rng(config.seed + b),
            )
            sim = Simulator(
                process,
                switch_policy=make_switch_policy(config.switch),
                record_every=config.record_every,
                keep_loads=config.keep_loads,
                targets=config.targets,
            )
            replicas.append((sim, sim.start(load, rounds_hint=config.rounds)))
        return _ReferenceHandle(topo=topo, config=config, replicas=replicas)

    def _prepare_dynamic(self, topo, config, loads) -> _DynamicReferenceHandle:
        models = resolve_arrival_models(config.arrivals, loads.shape[0])
        rngs = resolve_arrival_rngs(config, loads.shape[0])
        replicas: List[Tuple[DynamicSimulator, DynamicRun]] = []
        for b, load in enumerate(loads):
            process = LoadBalancingProcess(
                build_scheme(topo, config),
                rounding=config.rounding,
                rng=np.random.default_rng(config.seed + b),
            )
            dsim = DynamicSimulator(process, models[b], rng=rngs[b])
            replicas.append((dsim, dsim.start(load, rounds_hint=config.rounds)))
        return _DynamicReferenceHandle(topo=topo, config=config, replicas=replicas)

    def arrive(self, handle) -> ArrivalBatch:
        if not isinstance(handle, _DynamicReferenceHandle):
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        accounting = np.array(
            [dsim.inject(run) for dsim, run in handle.replicas]
        ).reshape(len(handle.replicas), 3)
        return ArrivalBatch(
            round_index=handle.replicas[0][1].state.round_index,
            arrived=accounting[:, 0],
            departed=accounting[:, 1],
            clamped=accounting[:, 2],
        )

    def step(self, handle) -> StepBatch:
        for sim, run in handle.replicas:
            sim.advance(run)
        runs = [run for _, run in handle.replicas]
        switched_round = runs[0].state.round_index
        dynamic = isinstance(handle, _DynamicReferenceHandle)
        return StepBatch(
            round_index=switched_round,
            loads=np.stack([r.state.load for r in runs]),
            flows=np.stack([r.state.flows for r in runs]),
            min_transient=np.array([r.last_min_transient for r in runs]),
            traffic=np.array([r.last_traffic for r in runs]),
            switched=np.zeros(len(runs), dtype=bool)
            if dynamic
            else np.array(
                [r.switched_at == switched_round for r in runs], dtype=bool
            ),
        )

    def metrics(self, handle) -> RecordBatch:
        if isinstance(handle, _DynamicReferenceHandle):
            return RecordBatch(
                prebuilt_dynamic=[
                    dsim.finish(run) for dsim, run in handle.replicas
                ]
            )
        return RecordBatch(
            prebuilt=[sim.finish(run) for sim, run in handle.replicas]
        )

    def run(self, topo, config, initial_loads):
        """Fused loop without per-round ``StepBatch`` materialisation."""
        if config.arrivals is not None:
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        handle = self.prepare(topo, config, initial_loads)
        for sim, run in handle.replicas:
            for _ in range(config.rounds):
                sim.advance(run)
        return self.metrics(handle).results()

    def run_dynamic(self, topo, config, initial_loads):
        """Fused dynamic loop (``advance`` injects arrivals internally)."""
        if config.arrivals is None:
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        handle = self.prepare(topo, config, initial_loads)
        for dsim, run in handle.replicas:
            for _ in range(config.rounds):
                dsim.advance(run)
        return self.metrics(handle).dynamic_results()
