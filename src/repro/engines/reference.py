"""Reference engine: the classic simulator behind the engine protocol.

Each replica is an incremental :class:`~repro.core.simulator.Simulator` run
(:meth:`start` / :meth:`advance` / :meth:`finish`), so the engine's traces
are *the* reference semantics by construction — there is no second
implementation to keep in sync.  Replica ``b`` seeds its rounding generator
with ``default_rng(seed + b)``, so a one-replica run with seed ``s``
reproduces the classic ``Simulator.run`` with ``default_rng(s)`` exactly.

Dynamic workloads (``config.arrivals``) work the same way: each replica is
an incremental :class:`~repro.core.dynamic.DynamicSimulator` run whose
arrival stream is :func:`~repro.core.dynamic.arrival_stream`\\ ``(seed,
key_b)``, so engine replica ``b`` reproduces a standalone
``DynamicSimulator`` seeded with that stream bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.alphas import resolve_alphas
from ..core.churn import (
    ChurnPlan,
    apply_handoffs,
    masked_dynamic_values,
    masked_static_values,
    remap_flows,
    resolve_churn,
)
from ..core.dynamic import (
    DynamicResult,
    DynamicRun,
    DynamicSimulator,
    ScaledArrivals,
)
from ..core.hybrid import FixedRoundSwitch
from ..core.process import LoadBalancingProcess
from ..core.records import DynamicRecordTable, RecordTable
from ..core.schemes import FirstOrderScheme, SecondOrderScheme
from ..core.simulator import SimulationResult, SimulationRun, Simulator
from ..core.state import LoadState, transient_loads
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology

from .base import (
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    ResolvedReplicaParams,
    StepBatch,
    apply_load_scales,
    as_load_batch,
    make_switch_policy,
    register_engine,
    resolve_arrival_models,
    resolve_arrival_rngs,
    resolve_replica_params,
    reject_async_only,
    reject_batched_only,
    reject_network_only,
    reject_sharded_only,
)

__all__ = ["ReferenceEngine"]


def build_scheme(
    topo: Topology,
    config: EngineConfig,
    beta: Optional[float] = None,
    alphas=None,
):
    """The continuous scheme described by an engine config.

    ``beta``/``alphas`` override the config-level values — this is how the
    per-replica backends unfold ``replica_params`` planes into one scheme
    per replica.
    """
    if alphas is None:
        alphas = config.alphas
    if config.scheme == "fos":
        return FirstOrderScheme(topo, speeds=config.speeds, alphas=alphas)
    return SecondOrderScheme(
        topo,
        beta=config.beta if beta is None else beta,
        speeds=config.speeds,
        alphas=alphas,
    )


def replica_scheme_kwargs(
    topo: Topology,
    config: EngineConfig,
    params: Optional[ResolvedReplicaParams],
    n_replicas: int,
) -> List[dict]:
    """One :func:`build_scheme` override dict per replica, from the planes.

    The per-replica alpha array is the float64 product
    ``base_alphas * alpha_scales[b]`` — elementwise exactly what the
    batched engine folds into its alpha plane, so the two backends stay
    bit-identical for deterministic roundings.  The base alphas resolve
    once for the whole batch, not once per replica.
    """
    if params is None:
        return [{} for _ in range(n_replicas)]
    base_alphas = None
    if params.alpha_scales is not None:
        speeds = validate_speeds(
            config.speeds if config.speeds is not None else uniform_speeds(topo.n),
            topo.n,
        )
        base_alphas = resolve_alphas(config.alphas, topo, speeds)
    out: List[dict] = []
    for b in range(n_replicas):
        kwargs: dict = {}
        if params.betas is not None:
            kwargs["beta"] = float(params.betas[b])
        if base_alphas is not None:
            kwargs["alphas"] = base_alphas * float(params.alpha_scales[b])
        out.append(kwargs)
    return out


def replica_switch_policy(
    config: EngineConfig, params: Optional[ResolvedReplicaParams], b: int
):
    """Replica ``b``'s switch policy: its own fixed round, or the global
    spec (``replica_params.switch_rounds`` and ``config.switch`` are
    mutually exclusive, so there is never a conflict to resolve)."""
    if params is not None and params.switch_rounds is not None:
        round_b = int(params.switch_rounds[b])
        return FixedRoundSwitch(round_b) if round_b >= 0 else None
    return make_switch_policy(config.switch)


def scale_arrival_model(
    model, params: Optional[ResolvedReplicaParams], b: int
):
    """Replica ``b``'s arrival model, wrapped when an arrival scale is set."""
    if params is None or params.arrival_scales is None:
        return model
    return ScaledArrivals(model, float(params.arrival_scales[b]))


@dataclass
class _ChurnReplica:
    """One replica of a churn run: its process is rebuilt per topology
    segment, its rounding generator persists across segments."""

    rng: np.random.Generator
    process: LoadBalancingProcess
    state: LoadState
    last_min_transient: float
    last_traffic: float
    table: object = None        # RecordTable (static) or DynamicRecordTable
    loads_history: Optional[List[np.ndarray]] = None
    arrival_rng: Optional[np.random.Generator] = None
    arrival_model: object = None
    pending: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    injected: bool = False


@dataclass
class _ChurnReferenceHandle:
    """Reference-engine churn run: the per-round ground-truth loop.

    ``topo`` is the *live* universe topology of the current segment;
    ``active``/``active_idx`` the current liveness mask.  A pending
    :class:`~repro.core.churn.ChurnPatch` for round ``r`` is applied at
    the start of round ``r`` — before that round's arrivals and step —
    by :meth:`ReferenceEngine._churn_patch`.
    """

    topo: Topology
    config: EngineConfig
    plan: ChurnPlan
    active: np.ndarray
    active_idx: np.ndarray
    round_index: int
    scheme_name: str
    replicas: List[_ChurnReplica]
    dynamic: bool
    patched_through: int = 0


@dataclass
class _ReferenceHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[Tuple[Simulator, SimulationRun]]


@dataclass
class _DynamicReferenceHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[Tuple[DynamicSimulator, DynamicRun]]


@register_engine
class ReferenceEngine(Engine):
    """Per-replica loop over the incremental simulator core."""

    name = "reference"

    def prepare(self, topo, config, initial_loads):
        config.validate()
        reject_batched_only(config, 'reference')
        reject_sharded_only(config, 'reference')
        reject_async_only(config, 'reference')
        reject_network_only(config, 'reference')
        if config.precision != "float64":
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "the reference engine only supports precision='float64'"
            )
        loads = as_load_batch(initial_loads, topo.n)
        params = resolve_replica_params(config.replica_params, loads.shape[0])
        loads = apply_load_scales(loads, params)
        plan = resolve_churn(topo, config)
        if plan is not None:
            return self._prepare_churn(topo, config, loads, plan)
        if config.arrivals is not None:
            return self._prepare_dynamic(topo, config, loads, params)
        scheme_kwargs = replica_scheme_kwargs(
            topo, config, params, loads.shape[0]
        )
        replicas: List[Tuple[Simulator, SimulationRun]] = []
        for b, load in enumerate(loads):
            process = LoadBalancingProcess(
                build_scheme(topo, config, **scheme_kwargs[b]),
                rounding=config.rounding,
                rng=np.random.default_rng(config.seed + b),
            )
            sim = Simulator(
                process,
                switch_policy=replica_switch_policy(config, params, b),
                record_every=config.record_every,
                keep_loads=config.keep_loads,
                targets=config.targets,
            )
            replicas.append((sim, sim.start(load, rounds_hint=config.rounds)))
        return _ReferenceHandle(topo=topo, config=config, replicas=replicas)

    def _prepare_dynamic(
        self, topo, config, loads, params=None
    ) -> _DynamicReferenceHandle:
        models = resolve_arrival_models(config.arrivals, loads.shape[0])
        rngs = resolve_arrival_rngs(config, loads.shape[0])
        scheme_kwargs = replica_scheme_kwargs(
            topo, config, params, loads.shape[0]
        )
        replicas: List[Tuple[DynamicSimulator, DynamicRun]] = []
        for b, load in enumerate(loads):
            process = LoadBalancingProcess(
                build_scheme(topo, config, **scheme_kwargs[b]),
                rounding=config.rounding,
                rng=np.random.default_rng(config.seed + b),
            )
            dsim = DynamicSimulator(
                process, scale_arrival_model(models[b], params, b), rng=rngs[b]
            )
            replicas.append((dsim, dsim.start(load, rounds_hint=config.rounds)))
        return _DynamicReferenceHandle(topo=topo, config=config, replicas=replicas)

    def _prepare_churn(self, topo, config, loads, plan) -> _ChurnReferenceHandle:
        dynamic = config.arrivals is not None
        n_b = loads.shape[0]
        models = resolve_arrival_models(config.arrivals, n_b) if dynamic else None
        arrival_rngs = resolve_arrival_rngs(config, n_b) if dynamic else None
        scheme_name = (
            "FirstOrderScheme" if config.scheme == "fos" else "SecondOrderScheme"
        )
        replicas: List[_ChurnReplica] = []
        for b in range(n_b):
            load = plan.expand_load(loads[b])
            rng = np.random.default_rng(config.seed + b)
            process = LoadBalancingProcess(
                build_scheme(plan.topo0, config),
                rounding=config.rounding,
                rng=rng,
            )
            state = process.initial_state(load)
            rep = _ChurnReplica(
                rng=rng,
                process=process,
                state=state,
                last_min_transient=float(load[plan.active0_idx].min()),
                last_traffic=0.0,
            )
            if dynamic:
                rep.table = DynamicRecordTable(max(config.rounds, 1) + 1)
                rep.arrival_rng = arrival_rngs[b]
                rep.arrival_model = models[b]
            else:
                rep.table = RecordTable(config.rounds // config.record_every + 2)
                rep.table.append(
                    0,
                    scheme_name,
                    min_transient=rep.last_min_transient,
                    round_traffic=0.0,
                    **masked_static_values(plan.topo0, load, plan.active0_idx),
                )
                if config.keep_loads:
                    rep.loads_history = [state.load.copy()]
            replicas.append(rep)
        return _ChurnReferenceHandle(
            topo=plan.topo0,
            config=config,
            plan=plan,
            active=plan.active0,
            active_idx=plan.active0_idx,
            round_index=0,
            scheme_name=scheme_name,
            replicas=replicas,
            dynamic=dynamic,
        )

    def _churn_patch(self, handle: _ChurnReferenceHandle) -> None:
        """Apply the pending topology patch for the upcoming round, once."""
        r = handle.round_index + 1
        if handle.patched_through >= r:
            return
        handle.patched_through = r
        patch = handle.plan.patch_at(r)
        if patch is None:
            return
        handle.topo = patch.topo
        handle.active = patch.active
        handle.active_idx = patch.active_idx
        for rep in handle.replicas:
            load = rep.state.load.copy()
            apply_handoffs(load, patch.handoffs)
            flows = remap_flows(rep.state.flows, patch.edge_map)
            rep.state = LoadState(
                load=load, flows=flows, round_index=rep.state.round_index
            )
            rep.process = LoadBalancingProcess(
                build_scheme(patch.topo, handle.config),
                rounding=handle.config.rounding,
                rng=rep.rng,
            )

    def _churn_inject(
        self, handle: _ChurnReferenceHandle, rep: _ChurnReplica
    ) -> None:
        """Inject one replica's arrivals, clamped to the live node set."""
        deltas = np.asarray(
            rep.arrival_model.deltas(
                handle.topo, rep.state.round_index, rep.arrival_rng
            ),
            dtype=np.float64,
        )
        deltas = deltas.copy() if deltas.base is not None else deltas
        deltas[~handle.active] = 0.0
        positive = np.maximum(deltas, 0.0)
        wanted = np.maximum(-deltas, 0.0)
        actual = np.minimum(wanted, np.maximum(rep.state.load, 0.0))
        rep.state = LoadState(
            load=rep.state.load + positive - actual,
            flows=rep.state.flows,
            round_index=rep.state.round_index,
        )
        rep.pending = (
            float(positive.sum()),
            float(actual.sum()),
            float((wanted - actual).sum()),
        )
        rep.injected = True

    def _churn_record(self, handle: _ChurnReferenceHandle) -> None:
        for rep in handle.replicas:
            rep.table.append(
                handle.round_index,
                handle.scheme_name,
                min_transient=rep.last_min_transient,
                round_traffic=rep.last_traffic,
                **masked_static_values(
                    handle.topo, rep.state.load, handle.active_idx
                ),
            )
            if rep.loads_history is not None:
                rep.loads_history.append(rep.state.load.copy())

    def _churn_arrive(self, handle: _ChurnReferenceHandle) -> ArrivalBatch:
        if not handle.dynamic:
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        self._churn_patch(handle)
        accounting = np.zeros((len(handle.replicas), 3))
        for i, rep in enumerate(handle.replicas):
            if not rep.injected:
                self._churn_inject(handle, rep)
            accounting[i] = rep.pending
        return ArrivalBatch(
            round_index=handle.round_index,
            arrived=accounting[:, 0],
            departed=accounting[:, 1],
            clamped=accounting[:, 2],
        )

    def _churn_step(self, handle: _ChurnReferenceHandle) -> StepBatch:
        self._churn_patch(handle)
        config = handle.config
        for rep in handle.replicas:
            if handle.dynamic and not rep.injected:
                self._churn_inject(handle, rep)
            before = rep.state.load
            rep.state, info = rep.process.step(rep.state)
            rep.last_traffic = float(np.abs(info.actual).sum())
            rep.last_min_transient = float(
                transient_loads(handle.topo, before, info.actual)[
                    handle.active_idx
                ].min()
            )
        handle.round_index += 1
        r = handle.round_index
        if handle.dynamic:
            for rep in handle.replicas:
                arrived, departed, clamped = rep.pending
                rep.table.append(
                    r,
                    arrived=arrived,
                    departed=departed,
                    clamped=clamped,
                    **masked_dynamic_values(
                        handle.topo, rep.state.load, handle.active_idx
                    ),
                )
                rep.pending = (0.0, 0.0, 0.0)
                rep.injected = False
        elif r % config.record_every == 0:
            self._churn_record(handle)
        reps = handle.replicas
        return StepBatch(
            round_index=r,
            loads=np.stack([rep.state.load for rep in reps]),
            flows=np.stack([rep.state.flows for rep in reps]),
            min_transient=np.array([rep.last_min_transient for rep in reps]),
            traffic=np.array([rep.last_traffic for rep in reps]),
            switched=np.zeros(len(reps), dtype=bool),
        )

    def _churn_metrics(self, handle: _ChurnReferenceHandle) -> RecordBatch:
        if handle.dynamic:
            return RecordBatch(
                prebuilt_dynamic=[
                    DynamicResult(table=rep.table, final_state=rep.state)
                    for rep in handle.replicas
                ]
            )
        last = handle.replicas[0].table.column("round_index")
        if len(last) == 0 or int(last[-1]) != handle.round_index:
            self._churn_record(handle)
        return RecordBatch(
            prebuilt=[
                SimulationResult(
                    table=rep.table,
                    final_state=rep.state,
                    switched_at=None,
                    loads_history=rep.loads_history,
                )
                for rep in handle.replicas
            ]
        )

    def arrive(self, handle) -> ArrivalBatch:
        if isinstance(handle, _ChurnReferenceHandle):
            return self._churn_arrive(handle)
        if not isinstance(handle, _DynamicReferenceHandle):
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        accounting = np.array(
            [dsim.inject(run) for dsim, run in handle.replicas]
        ).reshape(len(handle.replicas), 3)
        return ArrivalBatch(
            round_index=handle.replicas[0][1].state.round_index,
            arrived=accounting[:, 0],
            departed=accounting[:, 1],
            clamped=accounting[:, 2],
        )

    def step(self, handle) -> StepBatch:
        if isinstance(handle, _ChurnReferenceHandle):
            return self._churn_step(handle)
        for sim, run in handle.replicas:
            sim.advance(run)
        runs = [run for _, run in handle.replicas]
        switched_round = runs[0].state.round_index
        dynamic = isinstance(handle, _DynamicReferenceHandle)
        return StepBatch(
            round_index=switched_round,
            loads=np.stack([r.state.load for r in runs]),
            flows=np.stack([r.state.flows for r in runs]),
            min_transient=np.array([r.last_min_transient for r in runs]),
            traffic=np.array([r.last_traffic for r in runs]),
            switched=np.zeros(len(runs), dtype=bool)
            if dynamic
            else np.array(
                [r.switched_at == switched_round for r in runs], dtype=bool
            ),
        )

    def metrics(self, handle) -> RecordBatch:
        if isinstance(handle, _ChurnReferenceHandle):
            return self._churn_metrics(handle)
        if isinstance(handle, _DynamicReferenceHandle):
            return RecordBatch(
                prebuilt_dynamic=[
                    dsim.finish(run) for dsim, run in handle.replicas
                ]
            )
        return RecordBatch(
            prebuilt=[sim.finish(run) for sim, run in handle.replicas]
        )

    def run(self, topo, config, initial_loads):
        """Fused loop without per-round ``StepBatch`` materialisation."""
        if config.arrivals is not None:
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        handle = self.prepare(topo, config, initial_loads)
        if isinstance(handle, _ChurnReferenceHandle):
            for _ in range(config.rounds):
                self._churn_step(handle)
        else:
            for sim, run in handle.replicas:
                for _ in range(config.rounds):
                    sim.advance(run)
        return self.metrics(handle).results()

    def run_dynamic(self, topo, config, initial_loads):
        """Fused dynamic loop (``advance`` injects arrivals internally)."""
        if config.arrivals is None:
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        handle = self.prepare(topo, config, initial_loads)
        if isinstance(handle, _ChurnReferenceHandle):
            for _ in range(config.rounds):
                self._churn_step(handle)
        else:
            for dsim, run in handle.replicas:
                for _ in range(config.rounds):
                    dsim.advance(run)
        return self.metrics(handle).dynamic_results()
