"""Reference engine: the classic simulator behind the engine protocol.

Each replica is an incremental :class:`~repro.core.simulator.Simulator` run
(:meth:`start` / :meth:`advance` / :meth:`finish`), so the engine's traces
are *the* reference semantics by construction — there is no second
implementation to keep in sync.  Replica ``b`` seeds its rounding generator
with ``default_rng(seed + b)``, so a one-replica run with seed ``s``
reproduces the classic ``Simulator.run`` with ``default_rng(s)`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.process import LoadBalancingProcess
from ..core.schemes import FirstOrderScheme, SecondOrderScheme
from ..core.simulator import SimulationRun, Simulator
from ..graphs.topology import Topology

from .base import (
    Engine,
    EngineConfig,
    RecordBatch,
    StepBatch,
    as_load_batch,
    make_switch_policy,
    register_engine,
)

__all__ = ["ReferenceEngine"]


def build_scheme(topo: Topology, config: EngineConfig):
    """The continuous scheme described by an engine config."""
    if config.scheme == "fos":
        return FirstOrderScheme(topo, speeds=config.speeds, alphas=config.alphas)
    return SecondOrderScheme(
        topo, beta=config.beta, speeds=config.speeds, alphas=config.alphas
    )


@dataclass
class _ReferenceHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[Tuple[Simulator, SimulationRun]]


@register_engine
class ReferenceEngine(Engine):
    """Per-replica loop over the incremental simulator core."""

    name = "reference"

    def prepare(self, topo, config, initial_loads) -> _ReferenceHandle:
        config.validate()
        if config.precision != "float64":
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "the reference engine only supports precision='float64'"
            )
        loads = as_load_batch(initial_loads, topo.n)
        replicas: List[Tuple[Simulator, SimulationRun]] = []
        for b, load in enumerate(loads):
            process = LoadBalancingProcess(
                build_scheme(topo, config),
                rounding=config.rounding,
                rng=np.random.default_rng(config.seed + b),
            )
            sim = Simulator(
                process,
                switch_policy=make_switch_policy(config.switch),
                record_every=config.record_every,
                keep_loads=config.keep_loads,
                targets=config.targets,
            )
            replicas.append((sim, sim.start(load, rounds_hint=config.rounds)))
        return _ReferenceHandle(topo=topo, config=config, replicas=replicas)

    def step(self, handle: _ReferenceHandle) -> StepBatch:
        for sim, run in handle.replicas:
            sim.advance(run)
        runs = [run for _, run in handle.replicas]
        switched_round = runs[0].state.round_index
        return StepBatch(
            round_index=switched_round,
            loads=np.stack([r.state.load for r in runs]),
            flows=np.stack([r.state.flows for r in runs]),
            min_transient=np.array([r.last_min_transient for r in runs]),
            traffic=np.array([r.last_traffic for r in runs]),
            switched=np.array(
                [r.switched_at == switched_round for r in runs], dtype=bool
            ),
        )

    def metrics(self, handle: _ReferenceHandle) -> RecordBatch:
        return RecordBatch(
            prebuilt=[sim.finish(run) for sim, run in handle.replicas]
        )

    def run(self, topo, config, initial_loads):
        """Fused loop without per-round ``StepBatch`` materialisation."""
        handle = self.prepare(topo, config, initial_loads)
        for sim, run in handle.replicas:
            for _ in range(config.rounds):
                sim.advance(run)
        return self.metrics(handle).results()
