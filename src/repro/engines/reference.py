"""Reference engine: the classic simulator behind the engine protocol.

Each replica is an incremental :class:`~repro.core.simulator.Simulator` run
(:meth:`start` / :meth:`advance` / :meth:`finish`), so the engine's traces
are *the* reference semantics by construction — there is no second
implementation to keep in sync.  Replica ``b`` seeds its rounding generator
with ``default_rng(seed + b)``, so a one-replica run with seed ``s``
reproduces the classic ``Simulator.run`` with ``default_rng(s)`` exactly.

Dynamic workloads (``config.arrivals``) work the same way: each replica is
an incremental :class:`~repro.core.dynamic.DynamicSimulator` run whose
arrival stream is :func:`~repro.core.dynamic.arrival_stream`\\ ``(seed,
key_b)``, so engine replica ``b`` reproduces a standalone
``DynamicSimulator`` seeded with that stream bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.alphas import resolve_alphas
from ..core.dynamic import DynamicRun, DynamicSimulator, ScaledArrivals
from ..core.hybrid import FixedRoundSwitch
from ..core.process import LoadBalancingProcess
from ..core.schemes import FirstOrderScheme, SecondOrderScheme
from ..core.simulator import SimulationRun, Simulator
from ..graphs.speeds import uniform_speeds, validate_speeds
from ..graphs.topology import Topology

from .base import (
    ArrivalBatch,
    Engine,
    EngineConfig,
    RecordBatch,
    ResolvedReplicaParams,
    StepBatch,
    apply_load_scales,
    as_load_batch,
    make_switch_policy,
    register_engine,
    resolve_arrival_models,
    resolve_arrival_rngs,
    resolve_replica_params,
    reject_async_only,
    reject_batched_only,
    reject_network_only,
    reject_sharded_only,
)

__all__ = ["ReferenceEngine"]


def build_scheme(
    topo: Topology,
    config: EngineConfig,
    beta: Optional[float] = None,
    alphas=None,
):
    """The continuous scheme described by an engine config.

    ``beta``/``alphas`` override the config-level values — this is how the
    per-replica backends unfold ``replica_params`` planes into one scheme
    per replica.
    """
    if alphas is None:
        alphas = config.alphas
    if config.scheme == "fos":
        return FirstOrderScheme(topo, speeds=config.speeds, alphas=alphas)
    return SecondOrderScheme(
        topo,
        beta=config.beta if beta is None else beta,
        speeds=config.speeds,
        alphas=alphas,
    )


def replica_scheme_kwargs(
    topo: Topology,
    config: EngineConfig,
    params: Optional[ResolvedReplicaParams],
    n_replicas: int,
) -> List[dict]:
    """One :func:`build_scheme` override dict per replica, from the planes.

    The per-replica alpha array is the float64 product
    ``base_alphas * alpha_scales[b]`` — elementwise exactly what the
    batched engine folds into its alpha plane, so the two backends stay
    bit-identical for deterministic roundings.  The base alphas resolve
    once for the whole batch, not once per replica.
    """
    if params is None:
        return [{} for _ in range(n_replicas)]
    base_alphas = None
    if params.alpha_scales is not None:
        speeds = validate_speeds(
            config.speeds if config.speeds is not None else uniform_speeds(topo.n),
            topo.n,
        )
        base_alphas = resolve_alphas(config.alphas, topo, speeds)
    out: List[dict] = []
    for b in range(n_replicas):
        kwargs: dict = {}
        if params.betas is not None:
            kwargs["beta"] = float(params.betas[b])
        if base_alphas is not None:
            kwargs["alphas"] = base_alphas * float(params.alpha_scales[b])
        out.append(kwargs)
    return out


def replica_switch_policy(
    config: EngineConfig, params: Optional[ResolvedReplicaParams], b: int
):
    """Replica ``b``'s switch policy: its own fixed round, or the global
    spec (``replica_params.switch_rounds`` and ``config.switch`` are
    mutually exclusive, so there is never a conflict to resolve)."""
    if params is not None and params.switch_rounds is not None:
        round_b = int(params.switch_rounds[b])
        return FixedRoundSwitch(round_b) if round_b >= 0 else None
    return make_switch_policy(config.switch)


def scale_arrival_model(
    model, params: Optional[ResolvedReplicaParams], b: int
):
    """Replica ``b``'s arrival model, wrapped when an arrival scale is set."""
    if params is None or params.arrival_scales is None:
        return model
    return ScaledArrivals(model, float(params.arrival_scales[b]))


@dataclass
class _ReferenceHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[Tuple[Simulator, SimulationRun]]


@dataclass
class _DynamicReferenceHandle:
    topo: Topology
    config: EngineConfig
    replicas: List[Tuple[DynamicSimulator, DynamicRun]]


@register_engine
class ReferenceEngine(Engine):
    """Per-replica loop over the incremental simulator core."""

    name = "reference"

    def prepare(self, topo, config, initial_loads):
        config.validate()
        reject_batched_only(config, 'reference')
        reject_sharded_only(config, 'reference')
        reject_async_only(config, 'reference')
        reject_network_only(config, 'reference')
        if config.precision != "float64":
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "the reference engine only supports precision='float64'"
            )
        loads = as_load_batch(initial_loads, topo.n)
        params = resolve_replica_params(config.replica_params, loads.shape[0])
        loads = apply_load_scales(loads, params)
        if config.arrivals is not None:
            return self._prepare_dynamic(topo, config, loads, params)
        scheme_kwargs = replica_scheme_kwargs(
            topo, config, params, loads.shape[0]
        )
        replicas: List[Tuple[Simulator, SimulationRun]] = []
        for b, load in enumerate(loads):
            process = LoadBalancingProcess(
                build_scheme(topo, config, **scheme_kwargs[b]),
                rounding=config.rounding,
                rng=np.random.default_rng(config.seed + b),
            )
            sim = Simulator(
                process,
                switch_policy=replica_switch_policy(config, params, b),
                record_every=config.record_every,
                keep_loads=config.keep_loads,
                targets=config.targets,
            )
            replicas.append((sim, sim.start(load, rounds_hint=config.rounds)))
        return _ReferenceHandle(topo=topo, config=config, replicas=replicas)

    def _prepare_dynamic(
        self, topo, config, loads, params=None
    ) -> _DynamicReferenceHandle:
        models = resolve_arrival_models(config.arrivals, loads.shape[0])
        rngs = resolve_arrival_rngs(config, loads.shape[0])
        scheme_kwargs = replica_scheme_kwargs(
            topo, config, params, loads.shape[0]
        )
        replicas: List[Tuple[DynamicSimulator, DynamicRun]] = []
        for b, load in enumerate(loads):
            process = LoadBalancingProcess(
                build_scheme(topo, config, **scheme_kwargs[b]),
                rounding=config.rounding,
                rng=np.random.default_rng(config.seed + b),
            )
            dsim = DynamicSimulator(
                process, scale_arrival_model(models[b], params, b), rng=rngs[b]
            )
            replicas.append((dsim, dsim.start(load, rounds_hint=config.rounds)))
        return _DynamicReferenceHandle(topo=topo, config=config, replicas=replicas)

    def arrive(self, handle) -> ArrivalBatch:
        if not isinstance(handle, _DynamicReferenceHandle):
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "arrive() needs a dynamic run (config.arrivals was None)"
            )
        accounting = np.array(
            [dsim.inject(run) for dsim, run in handle.replicas]
        ).reshape(len(handle.replicas), 3)
        return ArrivalBatch(
            round_index=handle.replicas[0][1].state.round_index,
            arrived=accounting[:, 0],
            departed=accounting[:, 1],
            clamped=accounting[:, 2],
        )

    def step(self, handle) -> StepBatch:
        for sim, run in handle.replicas:
            sim.advance(run)
        runs = [run for _, run in handle.replicas]
        switched_round = runs[0].state.round_index
        dynamic = isinstance(handle, _DynamicReferenceHandle)
        return StepBatch(
            round_index=switched_round,
            loads=np.stack([r.state.load for r in runs]),
            flows=np.stack([r.state.flows for r in runs]),
            min_transient=np.array([r.last_min_transient for r in runs]),
            traffic=np.array([r.last_traffic for r in runs]),
            switched=np.zeros(len(runs), dtype=bool)
            if dynamic
            else np.array(
                [r.switched_at == switched_round for r in runs], dtype=bool
            ),
        )

    def metrics(self, handle) -> RecordBatch:
        if isinstance(handle, _DynamicReferenceHandle):
            return RecordBatch(
                prebuilt_dynamic=[
                    dsim.finish(run) for dsim, run in handle.replicas
                ]
            )
        return RecordBatch(
            prebuilt=[sim.finish(run) for sim, run in handle.replicas]
        )

    def run(self, topo, config, initial_loads):
        """Fused loop without per-round ``StepBatch`` materialisation."""
        if config.arrivals is not None:
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "config has arrival models; dynamic workloads run through "
                "run_dynamic()"
            )
        handle = self.prepare(topo, config, initial_loads)
        for sim, run in handle.replicas:
            for _ in range(config.rounds):
                sim.advance(run)
        return self.metrics(handle).results()

    def run_dynamic(self, topo, config, initial_loads):
        """Fused dynamic loop (``advance`` injects arrivals internally)."""
        if config.arrivals is None:
            from ..exceptions import ConfigurationError

            raise ConfigurationError(
                "run_dynamic() needs arrival models (set config.arrivals)"
            )
        handle = self.prepare(topo, config, initial_loads)
        for dsim, run in handle.replicas:
            for _ in range(config.rounds):
                dsim.advance(run)
        return self.metrics(handle).dynamic_results()
